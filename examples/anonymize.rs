//! The §2 anonymization example: replace every URI in subject position by
//! a blank node, using the *same* blank node for every occurrence of the
//! same URI — expressible with global existentials in TriQ but not with
//! SPARQL's CONSTRUCT, whose blank nodes are local to each match.
//!
//! Run with: `cargo run --example anonymize`

use triq::prelude::*;

fn main() -> Result<(), TriqError> {
    let engine = Engine::new();
    let session = engine.load_turtle(
        "alice knows bob .\n\
         alice likes pizza .\n\
         bob knows alice .",
    )?;
    println!("Input graph:\n{}", to_turtle(session.graph().unwrap()));

    // The paper's three anonymization rules (§2), prepared through the
    // facade: translation, classification and stratification happen once.
    let anonymize = engine.prepare(Datalog(
        "triple(?X, ?Y, ?Z) -> subj(?X).\n\
         subj(?X) -> exists ?Y bn(?X, ?Y).\n\
         triple(?X, ?Y, ?Z), bn(?X, ?U) -> output(?U, ?Y, ?Z).",
        "output",
    ))?;
    println!(
        "The anonymization program is TriQ-Lite 1.0 (warded: {}).",
        anonymize.classification().warded
    );

    // `output` holds triples whose subjects are labeled nulls, so they are
    // not constant answer tuples; inspect the chase instance behind the
    // streaming iterator directly.
    let answers = anonymize.execute_iter(&session)?;
    println!("\nAnonymized graph (subjects replaced by shared blank nodes):");
    let mut lines: Vec<String> = answers
        .outcome()
        .instance
        .atoms_of(intern("output"))
        .map(|a| format!("  {} {} {} .", a.terms[0], a.terms[1], a.terms[2]))
        .collect();
    lines.sort();
    for l in &lines {
        println!("{l}");
    }

    // SPARQL's CONSTRUCT, by contrast, must mint a FRESH blank node per
    // match — `alice`'s two triples get different blanks:
    let construct = parse_construct("CONSTRUCT { _:B ?P ?O } WHERE { ?S ?P ?O }")?;
    println!("\nCONSTRUCT with a local blank node (fresh per match):");
    print!(
        "{}",
        to_turtle(&construct.evaluate(session.graph().unwrap()))
    );
    println!(
        "\nNote how the rule-based version uses ONE blank node for alice's \
         two triples, while CONSTRUCT cannot (its blank is per-match) — \
         the linkage between alice's triples is lost."
    );
    Ok(())
}
