//! The §2/§5 ontology scenarios: querying under the OWL 2 QL core
//! direct-semantics entailment regime.
//!
//! * G3: restriction axioms make every coauthor an author of *something*,
//!   so the regime finds Alfred Aho where plain SPARQL does not.
//! * G4: `owl:sameAs` as a user rule library.
//! * The animal/eats example of §5.2–§5.3: the active-domain restriction
//!   and the J·K^All semantics that lifts it.
//!
//! Run with: `cargo run --example ontology_authors`

use triq::engine::{materialize_same_as, Semantics, SparqlEngine};
use triq::prelude::*;

fn main() -> Result<(), TriqError> {
    // --- G3: restriction reasoning --------------------------------------
    let g3 = parse_turtle(
        "dbUllman is_author_of \"The Complete Book\" .\n\
         dbUllman name \"Jeffrey Ullman\" .\n\
         dbAho is_coauthor_of dbUllman .\n\
         dbAho name \"Alfred Aho\" .\n\
         r1 rdf:type owl:Restriction .\n\
         r2 rdf:type owl:Restriction .\n\
         r1 owl:onProperty is_coauthor_of .\n\
         r2 owl:onProperty is_author_of .\n\
         r1 owl:someValuesFrom owl:Thing .\n\
         r2 owl:someValuesFrom owl:Thing .\n\
         r1 rdfs:subClassOf r2 .",
    )?;
    let engine = SparqlEngine::new(g3);
    let plain_pattern = parse_pattern("{ ?Y is_author_of ?Z . ?Y name ?X }")?;
    println!("G3, plain SPARQL (no reasoning):");
    for n in engine.bindings_of(&plain_pattern, Semantics::Plain, "X")? {
        println!("  {n}");
    }
    // Under J.K^All the natural blank-node query finds Aho: the regime
    // invents the publication he must have authored.
    let natural = parse_pattern("{ ?Y is_author_of _:B . ?Y name ?X }")?;
    println!("G3, entailment regime without active-domain restriction:");
    for n in engine.bindings_of(&natural, Semantics::RegimeAll, "X")? {
        println!("  {n}");
    }

    // --- G4: owl:sameAs --------------------------------------------------
    let g4 = parse_turtle(
        "dbUllman is_author_of \"The Complete Book\" .\n\
         dbUllman owl:sameAs yagoUllman .\n\
         yagoUllman name \"Jeffrey Ullman\" .",
    )?;
    let engine = SparqlEngine::new(materialize_same_as(&g4)?);
    println!("G4 with the owl:sameAs rule library:");
    for n in engine.bindings_of(&plain_pattern, Semantics::Plain, "X")? {
        println!("  {n}");
    }

    // --- §5.2: dogs eat something ----------------------------------------
    let mut animals = Ontology::new();
    animals.add(Axiom::ClassAssertion(
        BasicClass::Named(intern("animal")),
        intern("dog"),
    ));
    animals.add(Axiom::SubClassOf(
        BasicClass::Named(intern("animal")),
        BasicClass::Some(BasicProperty::Named(intern("eats"))),
    ));
    // §5.3: herbivores — everything eaten is plant material.
    animals.add(Axiom::SubClassOf(
        BasicClass::Some(BasicProperty::Inverse(intern("eats"))),
        BasicClass::Named(intern("plant_material")),
    ));
    let graph = ontology_to_graph(&animals);
    let engine = SparqlEngine::new(graph);

    let eats_pattern = parse_pattern("{ ?X eats _:B }")?;
    let u = engine.bindings_of(&eats_pattern, Semantics::RegimeU, "X")?;
    println!("\nWho eats something (active-domain semantics)? {u:?} (empty: the witness is a null)");
    let all = engine.bindings_of(&eats_pattern, Semantics::RegimeAll, "X")?;
    println!("Who eats something (J.K^All)? {all:?}");

    // §5.3's query Q: animals eating some plant material — provable only
    // through the ontology, without a concrete witness.
    let q = parse_pattern("{ ?X eats _:B . _:B rdf:type plant_material }")?;
    let all = engine.bindings_of(&q, Semantics::RegimeAll, "X")?;
    println!("Who eats plant material (J.K^All)? {all:?}");
    Ok(())
}
