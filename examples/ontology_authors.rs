//! The §2/§5 ontology scenarios: querying under the OWL 2 QL core
//! direct-semantics entailment regime, on the facade.
//!
//! * G3: restriction axioms make every coauthor an author of *something*,
//!   so the regime finds Alfred Aho where plain SPARQL does not.
//! * G4: `owl:sameAs` as an engine-level rule library.
//! * The animal/eats example of §5.2–§5.3: the active-domain restriction
//!   and the J·K^All semantics that lifts it.
//!
//! One pattern is prepared once per semantics and reused across sessions.
//!
//! Run with: `cargo run --example ontology_authors`

use triq::engine::{materialize_same_as, same_as_regime_library};
use triq::prelude::*;

fn main() -> Result<(), TriqError> {
    let engine = Engine::new();
    let author_pattern = parse_pattern("{ ?Y is_author_of ?Z . ?Y name ?X }")?;
    // The same pattern, prepared once per semantics.
    let authors_plain = engine.prepare((&author_pattern, Semantics::Plain))?;
    let natural = engine.prepare((
        parse_pattern("{ ?Y is_author_of _:B . ?Y name ?X }")?,
        Semantics::RegimeAll,
    ))?;

    // --- G3: restriction reasoning --------------------------------------
    let g3 = engine.load_turtle(
        "dbUllman is_author_of \"The Complete Book\" .\n\
         dbUllman name \"Jeffrey Ullman\" .\n\
         dbAho is_coauthor_of dbUllman .\n\
         dbAho name \"Alfred Aho\" .\n\
         r1 rdf:type owl:Restriction .\n\
         r2 rdf:type owl:Restriction .\n\
         r1 owl:onProperty is_coauthor_of .\n\
         r2 owl:onProperty is_author_of .\n\
         r1 owl:someValuesFrom owl:Thing .\n\
         r2 owl:someValuesFrom owl:Thing .\n\
         r1 rdfs:subClassOf r2 .",
    )?;
    println!("G3, plain SPARQL (no reasoning):");
    for n in authors_plain.bindings_of(&g3, "X")? {
        println!("  {n}");
    }
    // Under J.K^All the natural blank-node query finds Aho: the regime
    // invents the publication he must have authored.
    println!("G3, entailment regime without active-domain restriction:");
    for n in natural.bindings_of(&g3, "X")? {
        println!("  {n}");
    }

    // --- G4: owl:sameAs --------------------------------------------------
    let g4 = parse_turtle(
        "dbUllman is_author_of \"The Complete Book\" .\n\
         dbUllman owl:sameAs yagoUllman .\n\
         yagoUllman name \"Jeffrey Ullman\" .",
    )?;
    // Plain semantics: materialize the closure into the graph up front.
    let materialized = engine.load_graph(materialize_same_as(&g4)?);
    println!("G4 with the owl:sameAs closure materialized:");
    for n in authors_plain.bindings_of(&materialized, "X")? {
        println!("  {n}");
    }
    // Regime semantics: attach the §2 library to the engine instead; it is
    // unioned into every program at prepare time.
    let lib_engine = Engine::builder()
        .library(same_as_regime_library())
        .default_semantics(Semantics::RegimeU)
        .build();
    let authors_regime = lib_engine.prepare(&author_pattern)?;
    println!("G4 with the owl:sameAs rule library under J.K^U:");
    for n in authors_regime.bindings_of(&lib_engine.load_graph(g4), "X")? {
        println!("  {n}");
    }

    // --- §5.2: dogs eat something ----------------------------------------
    let mut animals = Ontology::new();
    animals.add(Axiom::ClassAssertion(
        BasicClass::Named(intern("animal")),
        intern("dog"),
    ));
    animals.add(Axiom::SubClassOf(
        BasicClass::Named(intern("animal")),
        BasicClass::Some(BasicProperty::Named(intern("eats"))),
    ));
    // §5.3: herbivores — everything eaten is plant material.
    animals.add(Axiom::SubClassOf(
        BasicClass::Some(BasicProperty::Inverse(intern("eats"))),
        BasicClass::Named(intern("plant_material")),
    ));
    let zoo = engine.load_graph(ontology_to_graph(&animals));

    let eats_pattern = parse_pattern("{ ?X eats _:B }")?;
    let eats_u = engine.prepare((&eats_pattern, Semantics::RegimeU))?;
    let eats_all = engine.prepare((&eats_pattern, Semantics::RegimeAll))?;
    let u = eats_u.bindings_of(&zoo, "X")?;
    println!(
        "\nWho eats something (active-domain semantics)? {u:?} (empty: the witness is a null)"
    );
    let all = eats_all.bindings_of(&zoo, "X")?;
    println!("Who eats something (J.K^All)? {all:?}");

    // §5.3's query Q: animals eating some plant material — provable only
    // through the ontology, without a concrete witness.
    let q = engine.prepare((
        parse_pattern("{ ?X eats _:B . _:B rdf:type plant_material }")?,
        Semantics::RegimeAll,
    ))?;
    let all = q.bindings_of(&zoo, "X")?;
    println!("Who eats plant material (J.K^All)? {all:?}");
    Ok(())
}
