//! The transport-services scenario closing §2 of the paper: which pairs of
//! cities are connected by chains of transport services? The query needs
//! simultaneous navigation in two directions (service chains of arbitrary
//! length, and `partOf` chains of arbitrary length up to
//! `transportService`), which SPARQL 1.1 property paths cannot express —
//! but four recursive Datalog rules can.
//!
//! Run with: `cargo run --example transport_network`

use triq::prelude::*;
use triq::rdf::{transport_graph, TransportSpec};

fn main() -> Result<(), TriqError> {
    // The Oxford–London–Madrid–Valladolid graph from the paper's figure.
    let mut graph = parse_turtle(
        "TheAirline partOf transportService .\n\
         BritishAirways partOf transportService .\n\
         Renfe partOf transportService .\n\
         A311 partOf TheAirline .\n\
         BA201 partOf BritishAirways .\n\
         R502 partOf Renfe .\n\
         Oxford A311 London .\n\
         London BA201 Madrid .\n\
         Madrid R502 Valladolid .",
    )?;
    // A deeper partOf chain, as the paper notes can happen: TheAirline is
    // also a bus service, which is itself a transport service.
    graph.insert_strs("A311", "alsoPartOf", "busService");

    let rules = parse_program(
        "# collect all transport services (partOf chains of any length)\n\
         triple(?X, partOf, transportService) -> ts(?X).\n\
         triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).\n\
         # connected city pairs (service chains of any length)\n\
         ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).\n\
         ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).\n\
         conn(?X, ?Y) -> query(?X, ?Y).",
    )?;
    let query = TriqLiteQuery::new(rules, "query")?;
    let answers = query.evaluate_on_graph(&graph)?;
    println!("Connected city pairs (paper figure):");
    for t in answers.tuples() {
        println!("  {} => {}", t[0], t[1]);
    }
    assert!(answers.contains(&["Oxford", "Valladolid"]));

    // Scale it up with the synthetic generator: 60 cities, 7 operators,
    // partOf chains of depth 3.
    let big = transport_graph(TransportSpec {
        cities: 60,
        operators: 7,
        part_of_depth: 3,
    });
    let answers = query.evaluate_on_graph(&big)?;
    println!(
        "\nSynthetic network: {} triples, {} connected pairs \
         (expected {} for a line of 60 cities).",
        big.len(),
        answers.len(),
        59 * 60 / 2,
    );
    Ok(())
}
