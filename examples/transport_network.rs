//! The transport-services scenario closing §2 of the paper: which pairs of
//! cities are connected by chains of transport services? The query needs
//! simultaneous navigation in two directions (service chains of arbitrary
//! length, and `partOf` chains of arbitrary length up to
//! `transportService`), which SPARQL 1.1 property paths cannot express —
//! but four recursive Datalog rules can.
//!
//! The rules are prepared **once** and executed against two sessions: the
//! paper's figure and a 60-city synthetic network — the prepare-once /
//! execute-many lifecycle the facade exists for.
//!
//! Run with: `cargo run --example transport_network`

use triq::prelude::*;
use triq::rdf::{transport_graph, TransportSpec};

fn main() -> Result<(), TriqError> {
    let engine = Engine::new();
    let connected = engine.prepare(Datalog(
        "# collect all transport services (partOf chains of any length)\n\
         triple(?X, partOf, transportService) -> ts(?X).\n\
         triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).\n\
         # connected city pairs (service chains of any length)\n\
         ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).\n\
         ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).\n\
         conn(?X, ?Y) -> query(?X, ?Y).",
        "query",
    ))?;
    assert!(connected.classification().is_triq_lite_1_0());

    // The Oxford–London–Madrid–Valladolid graph from the paper's figure.
    let mut session = engine.load_turtle(
        "TheAirline partOf transportService .\n\
         BritishAirways partOf transportService .\n\
         Renfe partOf transportService .\n\
         A311 partOf TheAirline .\n\
         BA201 partOf BritishAirways .\n\
         R502 partOf Renfe .\n\
         Oxford A311 London .\n\
         London BA201 Madrid .\n\
         Madrid R502 Valladolid .",
    )?;
    // A deeper partOf chain, as the paper notes can happen: TheAirline is
    // also a bus service, which is itself a transport service.
    session.insert_triple("A311", "alsoPartOf", "busService");

    let answers = connected.execute(&session)?;
    println!("Connected city pairs (paper figure):");
    for t in answers.tuples() {
        println!("  {} => {}", t[0], t[1]);
    }
    assert!(answers.contains(&["Oxford", "Valladolid"]));

    // Scale it up with the synthetic generator: 60 cities, 7 operators,
    // partOf chains of depth 3 — same prepared plan, new session.
    let big = engine.load_graph(transport_graph(TransportSpec {
        cities: 60,
        operators: 7,
        part_of_depth: 3,
    }));
    // Stream the answers: no BTreeSet materialization for the big result.
    let pairs = connected.execute_iter(&big)?.count();
    println!(
        "\nSynthetic network: {} triples, {} connected pairs \
         (expected {} for a line of 60 cities).",
        big.graph().unwrap().len(),
        pairs,
        59 * 60 / 2,
    );

    let stats = engine.stats();
    println!(
        "\nOne prepared query, {} executions, {} chase runs.",
        stats.executions, stats.chase_runs
    );
    Ok(())
}
