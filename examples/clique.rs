//! Example 4.3 of the paper: deciding k-clique existence with a *fixed*
//! TriQ 1.0 program — a query whose evaluation is inherently ExpTime-hard
//! in data complexity (Theorem 4.4), cross-checked against a direct
//! backtracking solver.
//!
//! The clique program is prepared **once**; per-k runs clone the compiled
//! plan with a deeper chase budget and swap the session (the encoded
//! database) — no re-translation, no re-stratification.
//!
//! Run with: `cargo run --release --example clique`

use triq::datalog::builders::{clique_database, clique_query, has_clique_direct};
use triq::prelude::*;

fn per_k_config(k: usize) -> ChaseConfig {
    ChaseConfig {
        max_null_depth: (k + 2) as u32,
        max_atoms: 50_000_000,
        ..ChaseConfig::default()
    }
}

fn main() -> Result<(), TriqError> {
    let query = clique_query();
    println!(
        "The Example 4.3 program has {} rules; it is TriQ 1.0 (weakly \
         frontier-guarded) but deliberately NOT TriQ-Lite 1.0:",
        query.program.rules.len()
    );
    // TriqQuery validates membership in TriQ 1.0 (Definition 4.2) before
    // the engine accepts it.
    let triq_query = TriqQuery::new(query.program.clone(), "yes")?;
    let c = triq_query.classification();
    println!(
        "  weakly-frontier-guarded: {}, warded: {}, grounded negation: {}",
        c.weakly_frontier_guarded, c.warded, c.grounded_negation
    );
    let engine = Engine::new();
    let prepared = engine.prepare(triq_query)?;

    // A wheel graph: hub connected to a 5-cycle. Triangles everywhere, no
    // 4-clique.
    let n = 6;
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
    for i in 1..n {
        let j = if i == n - 1 { 1 } else { i + 1 };
        edges.push((i, j));
    }
    println!("\nWheel graph W5: {n} nodes, {} edges", edges.len());

    for k in 2..=4 {
        let session = engine.load_database(clique_database(n, &edges, k));
        // Deeper cliques need a deeper null budget; the compiled rules are
        // shared by the clone, only the config differs.
        let per_k = prepared.clone().with_config(per_k_config(k));
        let answers = per_k.execute(&session)?;
        let triq_says = !answers.is_empty();
        let direct_says = has_clique_direct(n, &edges, k);
        println!("  {k}-clique: TriQ says {triq_says}, direct solver says {direct_says}");
        assert_eq!(triq_says, direct_says);
    }

    // Show the ExpTime shape: the mapping tree has n^k leaves.
    println!("\nChase sizes (the n^k mapping tree of Example 4.3):");
    for k in 1..=4 {
        let session = engine.load_database(clique_database(n, &edges, k));
        let per_k = prepared.clone().with_config(per_k_config(k));
        let iter = per_k.execute_iter(&session)?;
        let stats = iter.outcome().stats;
        println!(
            "  k = {k}: {} atoms derived, {} nulls invented",
            stats.derived, stats.nulls
        );
    }
    Ok(())
}
