//! Quickstart: load an RDF graph, query it with SPARQL, with a TriQ-Lite
//! 1.0 rule program, and produce a new graph with CONSTRUCT — the opening
//! examples of §2 of the paper.
//!
//! Run with: `cargo run --example quickstart`

use triq::prelude::*;

fn main() -> Result<(), TriqError> {
    // The graph G2 of §2.
    let graph = parse_turtle(
        "dbUllman is_author_of \"The Complete Book\" .\n\
         dbUllman name \"Jeffrey Ullman\" .\n\
         dbAho is_coauthor_of dbUllman .\n\
         dbAho name \"Alfred Aho\" .",
    )?;
    println!("Loaded {} triples.", graph.len());

    // --- SPARQL query (1): the authors' names ---------------------------
    let select = parse_select("SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }")?;
    println!("\nSPARQL query (1) — authors:");
    for name in select.bindings_of(&graph, "X") {
        println!("  {name}");
    }

    // --- The same query as a rule program, query (2) of the paper -------
    let rules = parse_program(
        "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).",
    )?;
    let rule_query = TriqLiteQuery::new(rules, "query")?;
    let answers = rule_query.evaluate_on_graph(&graph)?;
    println!("\nTriQ-Lite 1.0 rule (2) — authors:");
    for tuple in answers.tuples() {
        println!("  {}", tuple[0]);
    }

    // --- CONSTRUCT query (3): produce a new RDF graph -------------------
    let construct = parse_construct(
        "CONSTRUCT { ?X name_author ?Z } WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
    )?;
    let derived = construct.evaluate(&graph);
    println!("\nCONSTRUCT output graph:");
    print!("{}", to_turtle(&derived));

    // --- Rule (3): the same CONSTRUCT as a plain rule --------------------
    let rules = parse_program(
        "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> \
            result(?X, name_author, ?Z).",
    )?;
    let q = TriqLiteQuery::new(rules, "result")?;
    let answers = q.evaluate_on_graph(&graph)?;
    println!("\nRule (3) output triples:");
    for t in answers.tuples() {
        println!("  ({}, {}, {})", t[0], t[1], t[2]);
    }

    // --- Query (4): invent a shared publication per coauthor pair -------
    let rules = parse_program(
        "triple(?X, is_coauthor_of, ?Y) -> exists ?Z \
            authored(?X, ?Z), authored(?Y, ?Z).\n\
         authored(?X, ?Z), authored(?Y, ?Z), ?X != ?Y -> collaborated(?X, ?Y).",
    )?;
    let q = TriqLiteQuery::new(rules, "collaborated")?;
    let answers = q.evaluate_on_graph(&graph)?;
    println!("\nExistential rule (4) — collaborations via an invented publication:");
    for t in answers.tuples() {
        println!("  {} collaborated with {}", t[0], t[1]);
    }
    Ok(())
}
