//! Quickstart: the opening examples of §2 of the paper on the
//! `Engine`/`Session`/`PreparedQuery` facade — load an RDF graph into a
//! session, prepare queries once (SPARQL and TriQ-Lite 1.0 rules), execute
//! them repeatedly, and produce a new graph with CONSTRUCT.
//!
//! Run with: `cargo run --example quickstart`

use triq::prelude::*;

fn main() -> Result<(), TriqError> {
    let engine = Engine::new();

    // The graph G2 of §2, bridged through τ_db once at load time.
    let session = engine.load_turtle(
        "dbUllman is_author_of \"The Complete Book\" .\n\
         dbUllman name \"Jeffrey Ullman\" .\n\
         dbAho is_coauthor_of dbUllman .\n\
         dbAho name \"Alfred Aho\" .",
    )?;
    println!("Loaded {} triples.", session.graph().unwrap().len());

    // --- SPARQL query (1): the authors' names ---------------------------
    // Prepared once: parsing, §5 translation and stratification happen
    // here, not per execution.
    let authors = engine.prepare(Sparql(
        "SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
    ))?;
    println!("\nSPARQL query (1) — authors:");
    for name in authors.bindings_of(&session, "X")? {
        println!("  {name}");
    }

    // --- The same query as a rule program, query (2) of the paper -------
    let rule_query = engine.prepare(Datalog(
        "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).",
        "query",
    ))?;
    println!("\nTriQ-Lite 1.0 rule (2) — authors:");
    for tuple in rule_query.execute_iter(&session)? {
        println!("  {}", tuple[0]);
    }

    // A prepared query is not tied to one dataset: the same plan runs
    // against any session without re-preparation.
    let other = engine.load_turtle(
        "dbKnuth is_author_of \"TAOCP\" .\n\
         dbKnuth name \"Donald Knuth\" .",
    )?;
    println!("\nThe same prepared rule on a second session:");
    for tuple in rule_query.execute_iter(&other)? {
        println!("  {}", tuple[0]);
    }

    // --- CONSTRUCT query (3): produce a new RDF graph -------------------
    let construct = parse_construct(
        "CONSTRUCT { ?X name_author ?Z } WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
    )?;
    let derived = construct.evaluate(session.graph().unwrap());
    println!("\nCONSTRUCT output graph:");
    print!("{}", to_turtle(&derived));

    // --- Rule (3): the same CONSTRUCT as a plain rule --------------------
    let rule3 = engine.prepare(Datalog(
        "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> \
            result(?X, name_author, ?Z).",
        "result",
    ))?;
    println!("\nRule (3) output triples:");
    for t in rule3.execute_iter(&session)? {
        println!("  ({}, {}, {})", t[0], t[1], t[2]);
    }

    // --- Query (4): invent a shared publication per coauthor pair -------
    let collaborated = engine.prepare(Datalog(
        "triple(?X, is_coauthor_of, ?Y) -> exists ?Z \
            authored(?X, ?Z), authored(?Y, ?Z).\n\
         authored(?X, ?Z), authored(?Y, ?Z), ?X != ?Y -> collaborated(?X, ?Y).",
        "collaborated",
    ))?;
    // Membership in TriQ-Lite 1.0 (Definition 6.1) is checkable on the
    // prepared plan.
    assert!(collaborated.classification().is_triq_lite_1_0());
    println!("\nExistential rule (4) — collaborations via an invented publication:");
    for t in collaborated.execute_iter(&session)? {
        println!("  {} collaborated with {}", t[0], t[1]);
    }

    // The session cached each chase outcome; repeated executions are free.
    let stats = engine.stats();
    println!(
        "\nEngine stats: {} prepared, {} executions, {} chase runs, {} cache hits.",
        stats.prepared_queries, stats.executions, stats.chase_runs, stats.cache_hits
    );
    Ok(())
}
