//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by plain
//! `std::time::Instant` sampling that prints the median time per
//! iteration. No statistics, plots or baselines; good enough for
//! relative comparisons in an offline environment.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: batch many routine calls per setup.
    SmallInput,
    /// Large inputs: one routine call per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    result_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            result_ns: f64::NAN,
        }
    }

    /// Times `routine`, recording the median over the sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        // Warm-up.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(f64::total_cmp);
        self.result_ns = times[times.len() / 2];
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            times.push(start.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(f64::total_cmp);
        self.result_ns = times[times.len() / 2];
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark-name filter, like real criterion's: the first CLI
/// argument that is not a flag is a substring filter (`cargo bench
/// --bench e6_chase_scaling -- star_join` runs only matching benches).
fn name_filter() -> Option<&'static str> {
    static FILTER: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

/// Whether a benchmark name passes the CLI name filter. Exposed so bench
/// files can gate their own side work (setup, hand-timed ratio reports)
/// on exactly the same rule `bench_function` applies.
pub fn matches_filter(name: &str) -> bool {
    name_filter().is_none_or(|f| name.contains(f))
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if !matches_filter(name) {
        return;
    }
    let mut b = Bencher::new(samples);
    let wall = Instant::now();
    f(&mut b);
    println!(
        "{name:<50} {:>12}/iter   ({} samples, {:.2?} total)",
        human(b.result_ns),
        samples,
        wall.elapsed()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Overrides the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }

    /// Sets the target measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Prevents the optimizer from discarding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_sane_median() {
        let mut c = Criterion::default();
        c.sample_size(10);
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
