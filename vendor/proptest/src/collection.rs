//! `prop::collection` — vector strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// The result of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let n = self.size.start + rng.below(span);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
