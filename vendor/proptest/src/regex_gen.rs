//! Generator for the regex *subset* the workspace's string strategies
//! use: literal characters, character classes `[a-z0-9_]`, the escape
//! `\PC` (any non-control character) and `{m,n}` repetition. Anything
//! outside the subset panics loudly so new patterns surface immediately
//! instead of silently generating wrong data.

use crate::TestRng;

/// Printable pool for `\PC`: ASCII printables plus a few multi-byte
/// characters so parsers meet non-ASCII input.
const PRINTABLE_EXTRA: &[char] = &['é', 'λ', '→', '中', 'Ω', '∃', '¬', '⊥'];

#[derive(Debug)]
enum Item {
    /// A fixed character.
    Literal(char),
    /// A character class: concrete alternatives.
    Class(Vec<(char, char)>),
    /// `\PC` — any non-control character.
    Printable,
}

struct Parsed {
    item: Item,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Parsed> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => {
                let mut ranges: Vec<(char, char)> = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = chars.next() else {
                        panic!("unterminated character class in regex strategy {pattern:?}");
                    };
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            ranges.push((lo, hi));
                        }
                        c => {
                            if let Some(p) = prev.replace(c) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                assert!(
                    !ranges.is_empty(),
                    "empty character class in regex strategy {pattern:?}"
                );
                Item::Class(ranges)
            }
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => Item::Printable,
                    other => panic!(
                        "unsupported escape \\P{other:?} in regex strategy {pattern:?} \
                         (only \\PC is implemented)"
                    ),
                },
                Some('n') => Item::Literal('\n'),
                Some('t') => Item::Literal('\t'),
                Some(
                    c @ ('\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '?' | '*' | '+' | '|'
                    | '^' | '$'),
                ) => Item::Literal(c),
                other => panic!("unsupported escape \\{other:?} in regex strategy {pattern:?}"),
            },
            '.' | '(' | ')' | '|' | '?' | '*' | '+' | '^' | '$' => panic!(
                "regex construct {c:?} is outside the vendored subset \
                 (pattern {pattern:?}); extend vendor/proptest/src/regex_gen.rs"
            ),
            c => Item::Literal(c),
        };
        // Optional {m,n} / {n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut digits = String::new();
            let mut min: Option<u32> = None;
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(',') => {
                        min = Some(digits.parse().expect("bad repetition bound"));
                        digits.clear();
                    }
                    Some(d) if d.is_ascii_digit() => digits.push(d),
                    other => panic!("bad repetition {other:?} in regex strategy {pattern:?}"),
                }
            }
            let hi: u32 = digits.parse().expect("bad repetition bound");
            (min.unwrap_or(hi), hi)
        } else {
            (1, 1)
        };
        assert!(
            min <= max,
            "inverted repetition in regex strategy {pattern:?}"
        );
        out.push(Parsed { item, min, max });
    }
    out
}

fn sample_item(item: &Item, rng: &mut TestRng) -> char {
    match item {
        Item::Literal(c) => *c,
        Item::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            char::from_u32(lo as u32 + (rng.bits() % span as u64) as u32)
                .expect("character class range produced an invalid scalar")
        }
        Item::Printable => {
            // Mostly ASCII printables, occasionally a multi-byte char.
            if rng.below(10) == 0 {
                PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len())]
            } else {
                char::from_u32(0x20 + (rng.bits() % 0x5f) as u32).unwrap()
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let items = parse(pattern);
    let mut out = String::new();
    for p in &items {
        let count = p.min + (rng.bits() % (p.max - p.min + 1) as u64) as u32;
        for _ in 0..count {
            out.push(sample_item(&p.item, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("regex_gen", 0)
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn prefixed_name_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,4}:[a-zA-Z][a-zA-Z0-9_]{0,6}", &mut r);
            let (pre, rest) = s.split_once(':').expect("missing colon");
            assert!((1..=4).contains(&pre.len()));
            assert!(rest.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn printable_pattern_excludes_controls() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("\\PC{0,160}", &mut r);
            assert!(s.chars().count() <= 160);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }
}
