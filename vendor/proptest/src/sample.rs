//! `prop::sample` — choosing among concrete values.

use crate::{Strategy, TestRng};

/// A strategy drawing uniformly from `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(
        !options.is_empty(),
        "sample::select needs at least one option"
    );
    Select { options }
}

/// The result of [`select`].
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}
