//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the slice of proptest the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`TestCaseError`] from the generated closure,
//! * [`Strategy`] with `prop_map`, string strategies from a *subset* of
//!   proptest's regex syntax (char classes, `\PC`, `{m,n}` repetition),
//!   integer ranges, [`Just`], tuples, [`prop_oneof!`],
//!   `prop::collection::vec` and `prop::sample::select`.
//!
//! There is **no shrinking**: a failing case panics with its case index
//! and the generator is deterministic per case, so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

pub mod collection;
mod regex_gen;
pub mod sample;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The error type `prop_assert!` produces inside a test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

/// The per-case random source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic generator for case number `case` of a test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // Mix the test name in so sibling tests see different streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 1)),
        }
    }

    /// Uniform draw from an exclusive range.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// 64 fresh random bits.
    pub fn bits(&mut self) -> u64 {
        self.inner.gen()
    }
}

/// A value generator. Unlike upstream proptest there is no intermediate
/// value tree: strategies produce final values directly (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// String strategies: a `&str` is interpreted as a regex (subset — see
/// the `regex_gen` module) generating matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integer ranges are strategies over their element type.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.bits() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// `any::<T>()`: a uniform draw over the whole domain of `T`.
pub fn any<T: ArbitraryPrim>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Marker returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Primitive types supported by [`any`].
pub trait ArbitraryPrim {
    /// A uniform draw.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.bits() as $t
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

impl<T: ArbitraryPrim> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of a common value type — the result
/// of [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec::Vec::from([
                $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
            ]);
        $crate::Union::new(__options)
    }};
}

/// Discards the current case when its precondition fails. Without a
/// rejection budget (upstream tracks one), a discarded case simply counts
/// as passing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Assertion that fails the current case without panicking mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Equality assertion, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Inequality assertion, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// The test-definition macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases; the body is
/// wrapped in a closure returning `Result<(), TestCaseError>` so
/// `prop_assert!` and early `return Ok(())` work as in upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u8..8) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 8);
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![
            "[a-z]{1,4}",
            Just("fixed".to_string()),
        ].prop_map(|s| format!("<{s}>"))) {
            prop_assert!(s.starts_with('<') && s.ends_with('>'));
            let inner = &s[1..s.len() - 1];
            prop_assert!(inner == "fixed" || (1..=4).contains(&inner.len()));
        }

        #[test]
        fn vec_and_select_compose(v in prop::collection::vec(
            prop::sample::select(vec!["a", "b", "c"]),
            0..5,
        )) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|s| ["a", "b", "c"].contains(s)));
        }

        #[test]
        fn early_return_ok_is_supported(n in 0u32..10) {
            if n > 3 {
                return Ok(());
            }
            prop_assert!(n <= 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 5);
        let mut b = crate::TestRng::for_case("t", 5);
        let s = "[a-z0-9]{8,8}";
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
