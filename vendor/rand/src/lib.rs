//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over exclusive
//! integer ranges, [`Rng::gen_bool`] and [`Rng::gen`] — with a
//! deterministic splitmix64 generator. It makes no attempt to reproduce
//! the upstream value streams; callers only rely on seeded determinism
//! within one build of this crate.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an exclusive range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `lo..hi` (requires `lo < hi`).
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard {
    /// A uniform draw over the whole domain of the type.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for usize {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`]: `a..b` and `a..=b`.
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + InclusiveUpper> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.inclusive_upper())
    }
}

/// Helper converting an inclusive upper bound to an exclusive one.
pub trait InclusiveUpper: Copy {
    /// `self + 1`, panicking on overflow.
    fn inclusive_upper(self) -> Self;
}

macro_rules! impl_inclusive_upper {
    ($($t:ty),*) => {$(
        impl InclusiveUpper for $t {
            fn inclusive_upper(self) -> Self {
                self.checked_add(1).expect("gen_range(..=MAX) unsupported")
            }
        }
    )*};
}
impl_inclusive_upper!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p` ∈ [0, 1].
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::standard(self) < p
    }

    /// A uniform draw over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point without perturbing other seeds.
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..25usize);
            assert!((3..25).contains(&x));
            let y = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
