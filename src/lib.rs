//! Workspace facade: the root package hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`). The
//! library surface simply re-exports the [`triq`] crate.
//!
//! See `docs/ARCHITECTURE.md` for the crate layering, the `TermId`
//! interning boundary and the chase data flow.

pub use triq::*;

/// The README's code blocks, compiled and run as doctests — the
/// doc-freshness guard: if the quickstart snippets stop building,
/// `cargo test` (and CI) fail.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
