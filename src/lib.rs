//! Workspace facade: the root package hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`). The
//! library surface simply re-exports the [`triq`] crate.

pub use triq::*;
