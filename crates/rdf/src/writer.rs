//! Turtle-lite serialization (inverse of [`crate::parse_turtle`]).

use crate::Graph;

fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s.chars().any(|c| c.is_whitespace() || c == '"' || c == '.')
        || s == "a"
        || s.starts_with('<')
        || s.starts_with('@')
        || s.starts_with('#')
}

fn write_term(out: &mut String, s: &str) {
    if needs_quoting(s) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                other => out.push(other),
            }
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Serializes a graph to Turtle-lite text, one triple per line, in
/// insertion order.
pub fn to_turtle(graph: &Graph) -> String {
    let mut out = String::with_capacity(graph.len() * 32);
    for t in graph.iter() {
        write_term(&mut out, t.s.as_str());
        out.push(' ');
        write_term(&mut out, t.p.as_str());
        out.push(' ');
        write_term(&mut out, t.o.as_str());
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_turtle;

    #[test]
    fn round_trip() {
        let src = "dbUllman is_author_of \"The Complete Book\" .\n\
                   dbAho is_coauthor_of dbUllman .\n\
                   x rdf:type owl:Class .";
        let g = parse_turtle(src).unwrap();
        let g2 = parse_turtle(&to_turtle(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn quotes_the_keyword_a_in_subject_and_object() {
        let mut g = Graph::new();
        g.insert_strs("a", "p", "a");
        let text = to_turtle(&g);
        assert_eq!(text, "\"a\" p \"a\" .\n");
        assert_eq!(parse_turtle(&text).unwrap(), g);
    }

    #[test]
    fn escapes_specials() {
        let mut g = Graph::new();
        g.insert_strs("s", "p", "multi\nline \"x\"");
        let g2 = parse_turtle(&to_turtle(&g)).unwrap();
        assert_eq!(g, g2);
    }
}
