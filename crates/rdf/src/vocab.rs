//! Well-known vocabulary URIs used throughout the paper (§2, §5.2).
//!
//! The paper writes prefixed names (`rdf:type`, `owl:Class`, ...); we keep
//! exactly those spellings as the interned constants, which makes programs
//! and test fixtures read like the paper.

use triq_common::{intern, Symbol};

/// `rdf:type`.
pub fn rdf_type() -> Symbol {
    intern("rdf:type")
}

/// `rdfs:subClassOf`.
pub fn rdfs_sub_class_of() -> Symbol {
    intern("rdfs:subClassOf")
}

/// `rdfs:subPropertyOf`.
pub fn rdfs_sub_property_of() -> Symbol {
    intern("rdfs:subPropertyOf")
}

/// `owl:Class`.
pub fn owl_class() -> Symbol {
    intern("owl:Class")
}

/// `owl:ObjectProperty`.
pub fn owl_object_property() -> Symbol {
    intern("owl:ObjectProperty")
}

/// `owl:Restriction`.
pub fn owl_restriction() -> Symbol {
    intern("owl:Restriction")
}

/// `owl:onProperty`.
pub fn owl_on_property() -> Symbol {
    intern("owl:onProperty")
}

/// `owl:someValuesFrom` — the paper's §5.2 program spells this
/// `owl:someValueFrom`; we follow the W3C spelling and accept both on parse.
pub fn owl_some_values_from() -> Symbol {
    intern("owl:someValuesFrom")
}

/// `owl:Thing`.
pub fn owl_thing() -> Symbol {
    intern("owl:Thing")
}

/// `owl:inverseOf`.
pub fn owl_inverse_of() -> Symbol {
    intern("owl:inverseOf")
}

/// `owl:disjointWith`.
pub fn owl_disjoint_with() -> Symbol {
    intern("owl:disjointWith")
}

/// `owl:propertyDisjointWith`.
pub fn owl_property_disjoint_with() -> Symbol {
    intern("owl:propertyDisjointWith")
}

/// `owl:sameAs`.
pub fn owl_same_as() -> Symbol {
    intern("owl:sameAs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_is_stable() {
        assert_eq!(rdf_type(), rdf_type());
        assert_eq!(rdf_type().as_str(), "rdf:type");
        assert_eq!(owl_some_values_from().as_str(), "owl:someValuesFrom");
    }
}
