//! The RDF graph store.

use std::collections::{HashMap, HashSet};
use std::fmt;
use triq_common::{intern, Symbol};

/// An RDF triple (s, p, o) ∈ U × U × U (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject.
    pub s: Symbol,
    /// Predicate.
    pub p: Symbol,
    /// Object.
    pub o: Symbol,
}

impl Triple {
    /// Builds a triple from three already-interned symbols.
    pub fn new(s: Symbol, p: Symbol, o: Symbol) -> Self {
        Triple { s, p, o }
    }

    /// Interns three strings into a triple.
    pub fn from_strs(s: &str, p: &str, o: &str) -> Self {
        Triple::new(intern(s), intern(p), intern(o))
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.p, self.o)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// A finite set of RDF triples with subject/predicate/object indexes.
///
/// Insertion keeps a deterministic order (`triples` preserves first-insert
/// order) so query results and serializations are reproducible; membership
/// and pattern matching go through hash indexes.
#[derive(Default, Clone)]
pub struct Graph {
    triples: Vec<Triple>,
    set: HashSet<Triple>,
    by_s: HashMap<Symbol, Vec<u32>>,
    by_p: HashMap<Symbol, Vec<u32>>,
    by_o: HashMap<Symbol, Vec<u32>>,
    /// Times the position indexes were rebuilt from scratch (each rebuild
    /// is O(|G|)). Diagnostic: batched removals must pay one rebuild per
    /// batch, not one per triple.
    reindexes: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Builds a graph from an iterator of triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.set.insert(t) {
            return false;
        }
        let idx = self.triples.len() as u32;
        self.triples.push(t);
        self.by_s.entry(t.s).or_default().push(idx);
        self.by_p.entry(t.p).or_default().push(idx);
        self.by_o.entry(t.o).or_default().push(idx);
        true
    }

    /// Inserts a triple built from three strings.
    pub fn insert_strs(&mut self, s: &str, p: &str, o: &str) -> bool {
        self.insert(Triple::from_strs(s, p, o))
    }

    /// Removes a triple; returns `true` if it was present. Removal keeps
    /// the insertion-order determinism of iteration; the position
    /// indexes are rebuilt, so this is O(|G|) — fine for interactive
    /// single-triple mutation. **Batch deletions must go through
    /// [`Graph::remove_all`]**, which pays the reindex once per batch
    /// instead of once per triple (a large `-fact` batch through repeated
    /// `remove` calls is quadratic).
    pub fn remove(&mut self, t: &Triple) -> bool {
        self.remove_all(std::iter::once(*t)) == 1
    }

    /// Removes a batch of triples in one pass, returning how many were
    /// present. Insertion-order determinism of iteration is preserved and
    /// the position indexes are rebuilt exactly **once**, so a batch of
    /// `k` removals costs O(|G| + k), not O(k·|G|).
    pub fn remove_all<I: IntoIterator<Item = Triple>>(&mut self, iter: I) -> usize {
        let mut removed = 0usize;
        for t in iter {
            if self.set.remove(&t) {
                removed += 1;
            }
        }
        if removed == 0 {
            return 0;
        }
        // One retain + one reindex pass for the whole batch.
        let set = &self.set;
        self.triples.retain(|t| set.contains(t));
        self.reindex();
        removed
    }

    /// Rebuilds the subject/predicate/object indexes from the triple list.
    fn reindex(&mut self) {
        self.by_s.clear();
        self.by_p.clear();
        self.by_o.clear();
        for (i, t) in self.triples.iter().enumerate() {
            self.by_s.entry(t.s).or_default().push(i as u32);
            self.by_p.entry(t.p).or_default().push(i as u32);
            self.by_o.entry(t.o).or_default().push(i as u32);
        }
        self.reindexes += 1;
    }

    /// How many times the position indexes have been rebuilt (each
    /// rebuild is O(|G|)). A diagnostic for pinning the batching
    /// behaviour of [`Graph::remove_all`] in tests.
    pub fn reindex_count(&self) -> usize {
        self.reindexes
    }

    /// Removes a triple built from three strings.
    pub fn remove_strs(&mut self, s: &str, p: &str, o: &str) -> bool {
        self.remove(&Triple::from_strs(s, p, o))
    }

    /// Membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.set.contains(t)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True iff the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> + '_ {
        self.triples.iter()
    }

    /// All constants mentioned anywhere in the graph (the active domain).
    pub fn active_domain(&self) -> HashSet<Symbol> {
        let mut dom = HashSet::with_capacity(self.triples.len());
        for t in &self.triples {
            dom.insert(t.s);
            dom.insert(t.p);
            dom.insert(t.o);
        }
        dom
    }

    /// Matches a triple pattern where `None` components are wildcards.
    ///
    /// Chooses the most selective available index, then filters.
    pub fn matching(&self, s: Option<Symbol>, p: Option<Symbol>, o: Option<Symbol>) -> Vec<Triple> {
        let candidates: &[u32] = match (s, p, o) {
            (Some(s), _, _) => self.by_s.get(&s).map(Vec::as_slice).unwrap_or(&[]),
            (None, _, Some(o)) => self.by_o.get(&o).map(Vec::as_slice).unwrap_or(&[]),
            (None, Some(p), None) => self.by_p.get(&p).map(Vec::as_slice).unwrap_or(&[]),
            (None, None, None) => {
                return self.triples.clone();
            }
        };
        candidates
            .iter()
            .map(|&i| self.triples[i as usize])
            .filter(|t| {
                s.is_none_or(|x| t.s == x)
                    && p.is_none_or(|x| t.p == x)
                    && o.is_none_or(|x| t.o == x)
            })
            .collect()
    }

    /// Set-union with another graph.
    pub fn extend_from(&mut self, other: &Graph) {
        for t in other.iter() {
            self.insert(*t);
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.triples.iter()).finish()
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph::from_triples(iter)
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.set == other.set
    }
}

impl Eq for Graph {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_strs("dbUllman", "is_author_of", "The Complete Book");
        g.insert_strs("dbUllman", "name", "Jeffrey Ullman");
        g.insert_strs("dbAho", "is_coauthor_of", "dbUllman");
        g.insert_strs("dbAho", "name", "Alfred Aho");
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = sample();
        assert_eq!(g.len(), 4);
        assert!(!g.insert_strs("dbAho", "name", "Alfred Aho"));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn remove_unlinks_and_reindexes() {
        let mut g = sample();
        assert!(g.remove_strs("dbUllman", "name", "Jeffrey Ullman"));
        assert!(!g.remove_strs("dbUllman", "name", "Jeffrey Ullman"));
        assert_eq!(g.len(), 3);
        assert!(!g.contains(&Triple::from_strs("dbUllman", "name", "Jeffrey Ullman")));
        // Indexes reflect the removal; insertion order is preserved.
        assert_eq!(g.matching(Some(intern("dbUllman")), None, None).len(), 1);
        assert_eq!(g.matching(None, Some(intern("name")), None).len(), 1);
        let order: Vec<&Triple> = g.iter().collect();
        assert_eq!(order[0].p, intern("is_author_of"));
        // Re-insertion works and appends at the end.
        assert!(g.insert_strs("dbUllman", "name", "Jeffrey Ullman"));
        assert_eq!(g.len(), 4);
        assert_eq!(g.matching(None, Some(intern("name")), None).len(), 2);
    }

    #[test]
    fn batch_removal_reindexes_once() {
        let mut g = Graph::new();
        for i in 0..1000 {
            g.insert_strs(&format!("s{i}"), "p", &format!("o{i}"));
        }
        assert_eq!(g.reindex_count(), 0, "inserts never reindex");
        // One batch of 500 removals: exactly one reindex pass.
        let batch: Vec<Triple> = (0..500)
            .map(|i| Triple::from_strs(&format!("s{i}"), "p", &format!("o{i}")))
            .collect();
        assert_eq!(g.remove_all(batch), 500);
        assert_eq!(g.reindex_count(), 1, "one reindex per batch");
        assert_eq!(g.len(), 500);
        // The indexes are consistent after the batched rebuild.
        assert_eq!(g.matching(None, Some(intern("p")), None).len(), 500);
        assert!(g.matching(Some(intern("s0")), None, None).is_empty());
        assert_eq!(g.matching(Some(intern("s750")), None, None).len(), 1);
        // Removing absent triples is free — no reindex at all.
        assert_eq!(
            g.remove_all((0..100).map(|i| Triple::from_strs(&format!("s{i}"), "p", "nope"))),
            0
        );
        assert_eq!(g.reindex_count(), 1);
        // Single removes still work (and pay one reindex each).
        assert!(g.remove_strs("s600", "p", "o600"));
        assert_eq!(g.reindex_count(), 2);
    }

    #[test]
    fn matching_with_indexes() {
        let g = sample();
        assert_eq!(g.matching(Some(intern("dbUllman")), None, None).len(), 2);
        assert_eq!(g.matching(None, Some(intern("name")), None).len(), 2);
        assert_eq!(
            g.matching(None, None, Some(intern("dbUllman"))),
            vec![Triple::from_strs("dbAho", "is_coauthor_of", "dbUllman")]
        );
        assert_eq!(
            g.matching(Some(intern("dbAho")), Some(intern("name")), None)
                .len(),
            1
        );
        assert_eq!(g.matching(None, None, None).len(), 4);
        assert!(g.matching(Some(intern("nobody")), None, None).is_empty());
    }

    #[test]
    fn active_domain_collects_all_positions() {
        let g = sample();
        let dom = g.active_domain();
        assert!(dom.contains(&intern("dbAho")));
        assert!(dom.contains(&intern("name")));
        assert!(dom.contains(&intern("The Complete Book")));
        assert_eq!(dom.len(), 8);
    }

    #[test]
    fn graph_equality_ignores_order() {
        let g1 = sample();
        let mut g2 = Graph::new();
        g2.insert_strs("dbAho", "name", "Alfred Aho");
        g2.insert_strs("dbAho", "is_coauthor_of", "dbUllman");
        g2.insert_strs("dbUllman", "name", "Jeffrey Ullman");
        g2.insert_strs("dbUllman", "is_author_of", "The Complete Book");
        assert_eq!(g1, g2);
    }
}
