//! RDF substrate: triples, an indexed graph store, a Turtle-lite
//! parser/writer and synthetic workload generators.
//!
//! Per §3.1 of the paper, an *RDF triple* is an element of U × U × U and an
//! *RDF graph* is a finite set of RDF triples (blank nodes and literals are
//! folded into U; see footnote 5 of the paper). [`Graph`] is the concrete
//! store used by the SPARQL evaluator and by the `triple(·,·,·)` database
//! bridge into the Datalog engine (the paper's τ_db, §5.1).

mod bulk;
mod generator;
mod graph;
mod parser;
pub mod vocab;
mod writer;

pub use bulk::parse_turtle_parallel;
pub use generator::{
    chain_ontology_graph, random_graph, transport_graph, university_graph, TransportSpec,
    UniversitySpec,
};
pub use graph::{Graph, Triple};
pub use parser::parse_turtle;
pub use writer::to_turtle;

pub use triq_common::{intern, Symbol};
