//! Parallel bulk parsing for Turtle-lite input.
//!
//! [`parse_turtle_parallel`] splits the input at *statement boundaries*
//! found by a single conservative byte scan, parses the chunks on scoped
//! worker threads with the ordinary [`parse_turtle`] (the global interner
//! is thread-safe), and merges the per-chunk graphs in chunk order — so
//! the result is the *same graph in the same insertion order* as a serial
//! parse. Anything the scanner is not sure about (a prefix declaration
//! after the first triple, a quote or `<` glued mid-word, an unterminated
//! literal/IRI) falls back to the serial parser, as does any chunk parse
//! error — errors are always the serial parser's canonical messages.
//!
//! Same no-external-deps discipline as the morsel chase:
//! `std::thread::scope` only.

use crate::{parse_turtle, Graph};
use triq_common::Result;

/// Inputs below this size are parsed serially — thread spawn + rescan
/// overhead beats any parallel win on small fixtures.
const MIN_PARALLEL_BYTES: usize = 64 * 1024;

/// The byte scanner's view of the lexer's context.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    /// Outside any literal/IRI/comment; `at_token_start` tracked aside.
    Normal,
    /// Inside `"…"` (entered only at token start, like the lexer).
    Literal,
    /// Inside `<…>` (entered only at token start, like the lexer).
    Iri,
    /// Inside a `#` line comment.
    Comment,
}

struct Scan {
    /// Byte offset where the prefix prologue (leading `@prefix` block,
    /// with interleaved comments/whitespace) ends.
    prologue_end: usize,
    /// Byte offsets just past each statement-terminating `.` after the
    /// prologue. Always ends with `input.len()` when non-empty.
    boundaries: Vec<usize>,
}

/// One conservative pass over the bytes. Returns `None` whenever the
/// input does something the scanner cannot mirror against the real lexer
/// with certainty — the caller then parses serially.
fn scan(input: &str) -> Option<Scan> {
    let bytes = input.as_bytes();
    let mut state = State::Normal;
    // Whether the next non-trivia byte starts a new token (start of
    // input, or preceded by whitespace / an end-of-statement dot).
    let mut at_token_start = true;
    // Offset of the first non-trivia byte of the current statement, and
    // whether that byte was '@' (a prefix declaration).
    let mut stmt_started = false;
    let mut stmt_is_prefix = false;
    let mut saw_triple = false;
    let mut escaped = false;
    let mut prologue_end = 0usize;
    let mut boundaries = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match state {
            State::Comment => {
                if b == b'\n' {
                    state = State::Normal;
                    at_token_start = true;
                }
            }
            State::Literal => {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    state = State::Normal;
                    at_token_start = false;
                }
            }
            State::Iri => {
                if b == b'>' {
                    state = State::Normal;
                    at_token_start = false;
                }
            }
            State::Normal => match b {
                b' ' | b'\t' | b'\r' | b'\n' => at_token_start = true,
                b'#' if at_token_start => state = State::Comment,
                b'"' | b'<' if !at_token_start => {
                    // The lexer would treat this as a word character; our
                    // literal/IRI tracking would diverge. Bail out.
                    return None;
                }
                b'"' => {
                    state = State::Literal;
                    if !stmt_started {
                        stmt_started = true;
                        stmt_is_prefix = false;
                    }
                    at_token_start = false;
                }
                b'<' => {
                    state = State::Iri;
                    if !stmt_started {
                        stmt_started = true;
                        stmt_is_prefix = false;
                    }
                    at_token_start = false;
                }
                b'.' if bytes
                    .get(i + 1)
                    .is_none_or(|&n| matches!(n, b' ' | b'\t' | b'\r' | b'\n')) =>
                {
                    // Statement terminator: a '.' at end of input or
                    // followed by whitespace (the lexer splits a trailing
                    // '.' off a bare word, so mid-word position is fine).
                    if stmt_is_prefix {
                        if saw_triple {
                            // Chunk-local prefix scope would differ from
                            // the serial parse; let serial handle it.
                            return None;
                        }
                        prologue_end = i + 1;
                    } else if stmt_started {
                        saw_triple = true;
                        boundaries.push(i + 1);
                    }
                    stmt_started = false;
                    at_token_start = true;
                }
                _ => {
                    if !stmt_started {
                        stmt_started = true;
                        stmt_is_prefix = b == b'@';
                    }
                    at_token_start = false;
                }
            },
        }
    }
    if state == State::Literal || state == State::Iri || stmt_started {
        // Unterminated literal/IRI or trailing garbage: serial parse
        // produces the canonical error.
        return None;
    }
    if let Some(last) = boundaries.last_mut() {
        // Extend the final chunk over any trailing trivia.
        *last = input.len();
    }
    Some(Scan {
        prologue_end,
        boundaries,
    })
}

/// Parses Turtle-lite text into a [`Graph`] using up to `threads` worker
/// threads, yielding the same graph (same triples, same insertion order)
/// as [`parse_turtle`] and identical errors on malformed input.
pub fn parse_turtle_parallel(input: &str, threads: usize) -> Result<Graph> {
    if threads <= 1 || input.len() < MIN_PARALLEL_BYTES {
        return parse_turtle(input);
    }
    let Some(scan) = scan(input) else {
        return parse_turtle(input);
    };
    if scan.boundaries.len() < 2 {
        return parse_turtle(input);
    }
    let prologue = &input[..scan.prologue_end];
    // Cut the statement list into ~equal-byte chunks, one per worker.
    let body_start = scan.prologue_end;
    let chunks = threads.min(scan.boundaries.len());
    let total = input.len() - body_start;
    let target = total.div_ceil(chunks);
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(chunks);
    let mut start = body_start;
    for &end in &scan.boundaries {
        if end - start >= target || end == input.len() {
            spans.push((start, end));
            start = end;
        }
    }
    if spans.len() < 2 {
        return parse_turtle(input);
    }
    let parsed: Vec<Result<Graph>> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .iter()
            .map(|&(a, b)| {
                s.spawn(move || {
                    if prologue.is_empty() {
                        parse_turtle(&input[a..b])
                    } else {
                        parse_turtle(&format!("{prologue}\n{}", &input[a..b]))
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = Graph::new();
    for result in parsed {
        match result {
            // Merge in chunk order = serial insertion order.
            Ok(g) => merged.extend_from(&g),
            // A chunk failed where the scan thought it was clean; the
            // serial parser owns the canonical error message.
            Err(_) => return parse_turtle(input),
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_turtle;

    /// Big enough to clear MIN_PARALLEL_BYTES with room to spare.
    fn big_input(prefixed: bool) -> String {
        let mut s = String::new();
        if prefixed {
            s.push_str("@prefix ex: <http://example.org/> .\n");
        }
        for i in 0..6000 {
            if prefixed {
                s.push_str(&format!("ex:n{i} ex:edge ex:n{} .\n", i + 1));
            } else {
                s.push_str(&format!("n{i} edge \"label {i}. dot\" .\n"));
            }
        }
        s
    }

    fn assert_same_as_serial(input: &str, threads: usize) {
        let serial = parse_turtle(input).unwrap();
        let parallel = parse_turtle_parallel(input, threads).unwrap();
        assert_eq!(parallel.len(), serial.len());
        // Same triples in the same insertion order.
        assert_eq!(to_turtle(&parallel), to_turtle(&serial));
    }

    #[test]
    fn matches_serial_with_prefixes() {
        assert_same_as_serial(&big_input(true), 4);
    }

    #[test]
    fn matches_serial_with_literals_containing_dots() {
        assert_same_as_serial(&big_input(false), 4);
    }

    #[test]
    fn matches_serial_with_comments_and_glued_dots() {
        let mut s = String::from("# header comment with a dot. here\n");
        for i in 0..6000 {
            s.push_str(&format!("s{i} p o{i}. # trailing. comment\n"));
        }
        assert_same_as_serial(&s, 3);
    }

    #[test]
    fn small_inputs_parse_serially() {
        let g = parse_turtle_parallel("s p o .", 8).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn late_prefix_falls_back_to_serial() {
        let mut s = big_input(false);
        s.push_str("@prefix ex: <http://example.org/> .\nex:a ex:p ex:b .\n");
        assert_same_as_serial(&s, 4);
    }

    #[test]
    fn errors_match_serial() {
        let mut s = big_input(true);
        s.push_str("dangling terms without a dot");
        let serial = parse_turtle(&s).unwrap_err();
        let parallel = parse_turtle_parallel(&s, 4).unwrap_err();
        assert_eq!(format!("{serial}"), format!("{parallel}"));

        let mut torn = big_input(true);
        torn.truncate(torn.len() / 2 + 7); // mid-statement cut
        let serial = parse_turtle(&torn);
        let parallel = parse_turtle_parallel(&torn, 4);
        assert_eq!(serial.is_err(), parallel.is_err());
        if let (Err(a), Err(b)) = (serial, parallel) {
            assert_eq!(format!("{a}"), format!("{b}"));
        }
    }

    #[test]
    fn iris_with_dots_and_spaces() {
        let mut s = String::from("@prefix ex: <http://ex.org/a. b/> .\n");
        for i in 0..6000 {
            s.push_str(&format!(
                "<http://ex.org/s.{i}> ex:p <http://ex.org/o. {i}> .\n"
            ));
        }
        assert_same_as_serial(&s, 4);
    }
}
