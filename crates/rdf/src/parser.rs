//! A Turtle-lite parser.
//!
//! Supports the subset needed by the paper's examples and our fixtures:
//!
//! * `@prefix pre: <iri> .` declarations,
//! * triples `s p o .`, where each component is `<iri>`, `pre:name`,
//!   a bare word (kept verbatim, as the paper writes `dbUllman`),
//!   a quoted string literal, or `a` (sugar for `rdf:type` in predicate
//!   position),
//! * `#` line comments.
//!
//! Blank node labels (`_:b`) are accepted and kept verbatim as constants —
//! the paper folds blank nodes occurring in *graphs* into U (footnote 5).

use crate::{Graph, Triple};
use triq_common::{intern, Result, Symbol, TriqError};

fn err(message: impl Into<String>) -> TriqError {
    TriqError::Parse {
        what: "turtle",
        message: message.into(),
    }
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Word(String),
    Iri(String),
    Literal(String),
    Dot,
    PrefixDecl,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if trimmed.starts_with('#') {
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                return;
            }
        }
    }

    fn next(&mut self) -> Result<Option<Token>> {
        self.skip_trivia();
        let rest = self.rest();
        let Some(c) = rest.chars().next() else {
            return Ok(None);
        };
        match c {
            '.' => {
                self.pos += 1;
                Ok(Some(Token::Dot))
            }
            '<' => {
                let end = rest.find('>').ok_or_else(|| err("unterminated IRI"))?;
                let iri = rest[1..end].to_owned();
                self.pos += end + 1;
                Ok(Some(Token::Iri(iri)))
            }
            '"' => {
                let mut out = String::new();
                let mut chars = rest.char_indices().skip(1);
                loop {
                    let Some((i, ch)) = chars.next() else {
                        return Err(err("unterminated string literal"));
                    };
                    match ch {
                        '"' => {
                            self.pos += i + 1;
                            return Ok(Some(Token::Literal(out)));
                        }
                        '\\' => {
                            let Some((_, esc)) = chars.next() else {
                                return Err(err("dangling escape in literal"));
                            };
                            out.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                        }
                        other => out.push(other),
                    }
                }
            }
            '@' => {
                if rest.starts_with("@prefix") {
                    self.pos += "@prefix".len();
                    Ok(Some(Token::PrefixDecl))
                } else {
                    Err(err(format!("unknown directive at {:?}", truncate(rest))))
                }
            }
            _ => {
                let end = rest
                    .find(|ch: char| ch.is_whitespace())
                    .unwrap_or(rest.len());
                // A bare word ends at whitespace; a trailing '.' glued to the
                // word (e.g. `o.`) is split off unless it is part of the word
                // interior (IRIs like `ex.org` stay intact).
                let mut word = &rest[..end];
                if word.len() > 1 && word.ends_with('.') {
                    word = &word[..word.len() - 1];
                }
                if word.is_empty() {
                    return Err(err(format!("unexpected character {c:?}")));
                }
                self.pos += word.len();
                Ok(Some(Token::Word(word.to_owned())))
            }
        }
    }
}

fn truncate(s: &str) -> &str {
    let mut end = s.len().min(24);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Parses Turtle-lite text into a [`Graph`].
pub fn parse_turtle(input: &str) -> Result<Graph> {
    let mut lexer = Lexer::new(input);
    let mut graph = Graph::new();
    let mut prefixes: Vec<(String, String)> = Vec::new();
    let mut pending: Vec<Symbol> = Vec::new();
    let mut position_in_triple = 0usize;

    let resolve = |prefixes: &[(String, String)], tok: Token| -> Result<Symbol> {
        match tok {
            Token::Iri(iri) => Ok(intern(&iri)),
            Token::Literal(l) => Ok(intern(&l)),
            Token::Word(w) => {
                if let Some(colon) = w.find(':') {
                    let (pre, local) = w.split_at(colon);
                    let local = &local[1..];
                    for (p, expansion) in prefixes.iter().rev() {
                        if p == pre {
                            return Ok(intern(&format!("{expansion}{local}")));
                        }
                    }
                }
                Ok(intern(&w))
            }
            other => Err(err(format!("expected a term, found {other:?}"))),
        }
    };

    while let Some(tok) = lexer.next()? {
        match tok {
            Token::PrefixDecl => {
                let name = match lexer.next()? {
                    Some(Token::Word(w)) => w
                        .strip_suffix(':')
                        .map(str::to_owned)
                        .ok_or_else(|| err("prefix name must end with ':'"))?,
                    other => return Err(err(format!("expected prefix name, found {other:?}"))),
                };
                let iri = match lexer.next()? {
                    Some(Token::Iri(iri)) => iri,
                    other => return Err(err(format!("expected prefix IRI, found {other:?}"))),
                };
                match lexer.next()? {
                    Some(Token::Dot) => {}
                    other => return Err(err(format!("expected '.', found {other:?}"))),
                }
                prefixes.push((name, iri));
            }
            Token::Dot => {
                if pending.len() != 3 {
                    return Err(err(format!(
                        "triple has {} component(s), expected 3",
                        pending.len()
                    )));
                }
                graph.insert(Triple::new(pending[0], pending[1], pending[2]));
                pending.clear();
                position_in_triple = 0;
            }
            term => {
                // `a` is rdf:type sugar, but only in predicate position.
                let sym = if position_in_triple == 1 && term == Token::Word("a".into()) {
                    crate::vocab::rdf_type()
                } else {
                    resolve(&prefixes, term)?
                };
                pending.push(sym);
                position_in_triple += 1;
                if pending.len() > 3 {
                    return Err(err("more than 3 terms before '.'"));
                }
            }
        }
    }
    if !pending.is_empty() {
        return Err(err("dangling terms at end of input (missing '.')"));
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_words() {
        let g = parse_turtle(
            "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman name \"Jeffrey Ullman\" .",
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&Triple::from_strs(
            "dbUllman",
            "is_author_of",
            "The Complete Book"
        )));
    }

    #[test]
    fn parses_prefixes_and_iris() {
        let g = parse_turtle(
            "@prefix ex: <http://example.org/> .\n\
             ex:a ex:p <http://example.org/b> .",
        )
        .unwrap();
        assert!(g.contains(&Triple::from_strs(
            "http://example.org/a",
            "http://example.org/p",
            "http://example.org/b"
        )));
    }

    #[test]
    fn a_is_rdf_type_sugar_only_in_predicate_position() {
        let g = parse_turtle("a a b .").unwrap();
        assert!(g.contains(&Triple::from_strs("a", "rdf:type", "b")));
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse_turtle("# a comment\n\ns p o . # trailing\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn string_escapes() {
        let g = parse_turtle(r#"s p "line\nbreak \"quoted\"" ."#).unwrap();
        assert!(g.contains(&Triple::from_strs("s", "p", "line\nbreak \"quoted\"")));
    }

    #[test]
    fn error_on_malformed() {
        assert!(parse_turtle("s p .").is_err());
        assert!(parse_turtle("s p o q .").is_err());
        assert!(parse_turtle("s p o").is_err());
        assert!(parse_turtle("s p <unterminated .").is_err());
        assert!(parse_turtle("@prefix missing <x> .").is_err());
    }

    #[test]
    fn colon_names_without_declared_prefix_kept_verbatim() {
        let g = parse_turtle("x rdf:type owl:Class .").unwrap();
        assert!(g.contains(&Triple::from_strs("x", "rdf:type", "owl:Class")));
    }
}
