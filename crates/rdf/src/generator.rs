//! Synthetic workload generators.
//!
//! The paper has no published datasets (it is a theory paper), so every
//! experiment in EXPERIMENTS.md runs on graphs produced here. Each generator
//! is deterministic given its seed/parameters.

use crate::vocab;
use crate::{Graph, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triq_common::intern;

/// An Erdős–Rényi-style random labeled graph: `n` nodes, `m` edges drawn
/// uniformly with replacement, each labeled with one of `labels`.
pub fn random_graph(n: usize, m: usize, labels: &[&str], seed: u64) -> Graph {
    assert!(n > 0 && !labels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes: Vec<_> = (0..n).map(|i| intern(&format!("node{i}"))).collect();
    let labels: Vec<_> = labels.iter().map(|l| intern(l)).collect();
    let mut g = Graph::new();
    for _ in 0..m {
        let s = nodes[rng.gen_range(0..n)];
        let o = nodes[rng.gen_range(0..n)];
        let p = labels[rng.gen_range(0..labels.len())];
        g.insert(Triple::new(s, p, o));
    }
    g
}

/// Parameters for [`transport_graph`], the §2 transport-services scenario.
#[derive(Clone, Copy, Debug)]
pub struct TransportSpec {
    /// Number of cities (laid out on a line; service i connects city i to
    /// i+1, wrapping per operator).
    pub cities: usize,
    /// Number of transport operators (airlines / rail companies).
    pub operators: usize,
    /// Length of the `partOf` chain from an operator up to
    /// `transportService` (the paper's point is that this chain can be of
    /// arbitrary length).
    pub part_of_depth: usize,
}

impl Default for TransportSpec {
    fn default() -> Self {
        TransportSpec {
            cities: 4,
            operators: 3,
            part_of_depth: 1,
        }
    }
}

/// Generates the transport-services RDF graph of §2: cities connected by
/// concrete services, each service `partOf` an operator, each operator
/// reaching `transportService` through a `partOf` chain of the requested
/// depth.
///
/// With the default spec this reproduces the Oxford–London–Madrid–Valladolid
/// figure (modulo naming): service `service{i}` takes `city{i}` to
/// `city{i+1}` and belongs to `operator{i % operators}`.
pub fn transport_graph(spec: TransportSpec) -> Graph {
    let part_of = intern("partOf");
    let ts = intern("transportService");
    let mut g = Graph::new();
    for op in 0..spec.operators {
        // operator -> intermediate_1 -> ... -> transportService
        let mut current = intern(&format!("operator{op}"));
        for d in 0..spec.part_of_depth {
            let next = if d + 1 == spec.part_of_depth {
                ts
            } else {
                intern(&format!("operator{op}_tier{}", d + 1))
            };
            g.insert(Triple::new(current, part_of, next));
            current = next;
        }
        if spec.part_of_depth == 0 {
            g.insert(Triple::new(current, part_of, ts));
        }
    }
    for i in 0..spec.cities.saturating_sub(1) {
        let service = intern(&format!("service{i}"));
        let operator = intern(&format!("operator{}", i % spec.operators.max(1)));
        g.insert(Triple::new(service, part_of, operator));
        g.insert(Triple::new(
            intern(&format!("city{i}")),
            service,
            intern(&format!("city{}", i + 1)),
        ));
    }
    g
}

/// Parameters for [`university_graph`], a LUBM-lite workload.
#[derive(Clone, Copy, Debug)]
pub struct UniversitySpec {
    /// Number of departments.
    pub departments: usize,
    /// Professors per department.
    pub professors_per_dept: usize,
    /// Students per department.
    pub students_per_dept: usize,
    /// RNG seed for advisor/teaching assignments.
    pub seed: u64,
}

impl Default for UniversitySpec {
    fn default() -> Self {
        UniversitySpec {
            departments: 2,
            professors_per_dept: 3,
            students_per_dept: 10,
            seed: 7,
        }
    }
}

/// Generates a small university knowledge graph *including* its OWL 2 QL
/// core ontology triples (subclass/subproperty/restriction axioms in the
/// Table 1 RDF encoding), suitable for the §5 entailment-regime
/// experiments. The ontology part states, among others:
///
/// * `professor ⊑ faculty ⊑ person`, `student ⊑ person`,
/// * `advises ⊑ worksWith` and `∃advises ⊑ professor` (via restrictions),
/// * every professor teaches something (`professor ⊑ ∃teaches`).
pub fn university_graph(spec: UniversitySpec) -> Graph {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let rdf_type = vocab::rdf_type();
    let sub_class = vocab::rdfs_sub_class_of();
    let sub_prop = vocab::rdfs_sub_property_of();
    let mut g = Graph::new();

    // --- ontology (TBox), Table 1 encoding ---------------------------------
    for (a, b) in [
        ("professor", "faculty"),
        ("faculty", "person"),
        ("student", "person"),
    ] {
        g.insert(Triple::new(intern(a), sub_class, intern(b)));
    }
    g.insert(Triple::new(
        intern("advises"),
        sub_prop,
        intern("worksWith"),
    ));
    // ∃teaches and ∃advises as restrictions (the paper's §5.2 encoding).
    for prop in ["teaches", "advises"] {
        let r = intern(&format!("exists_{prop}"));
        g.insert(Triple::new(r, rdf_type, vocab::owl_restriction()));
        g.insert(Triple::new(r, vocab::owl_on_property(), intern(prop)));
        g.insert(Triple::new(
            r,
            vocab::owl_some_values_from(),
            vocab::owl_thing(),
        ));
    }
    // professor ⊑ ∃teaches ; ∃advises ⊑ professor
    g.insert(Triple::new(
        intern("professor"),
        sub_class,
        intern("exists_teaches"),
    ));
    g.insert(Triple::new(
        intern("exists_advises"),
        sub_class,
        intern("professor"),
    ));

    // --- data (ABox) --------------------------------------------------------
    for d in 0..spec.departments {
        for p in 0..spec.professors_per_dept {
            let prof = intern(&format!("prof_{d}_{p}"));
            g.insert(Triple::new(prof, rdf_type, intern("professor")));
            g.insert(Triple::new(
                prof,
                intern("memberOf"),
                intern(&format!("dept{d}")),
            ));
        }
        for s in 0..spec.students_per_dept {
            let student = intern(&format!("student_{d}_{s}"));
            g.insert(Triple::new(student, rdf_type, intern("student")));
            g.insert(Triple::new(
                student,
                intern("memberOf"),
                intern(&format!("dept{d}")),
            ));
            // Most students have a declared advisor; some only via inference.
            if rng.gen_bool(0.8) {
                let p = rng.gen_range(0..spec.professors_per_dept);
                g.insert(Triple::new(
                    intern(&format!("prof_{d}_{p}")),
                    intern("advises"),
                    student,
                ));
            }
        }
    }
    g
}

/// The ontology family (O_n, G_n) from the proof of Lemma 6.5 (UGCP):
///
/// ```text
/// ClassAssertion(a0, c), SubClassOf(a0, ∃p), SubClassOf(∃p⁻, a1),
/// SubClassOf(a1, a2), ..., SubClassOf(a_{n-1}, a_n)
/// ```
///
/// encoded as RDF triples per Table 1 / §5.2.
pub fn chain_ontology_graph(n: usize) -> Graph {
    assert!(n > 0);
    let rdf_type = vocab::rdf_type();
    let sub_class = vocab::rdfs_sub_class_of();
    let mut g = Graph::new();
    // ClassAssertion(a0, c)
    g.insert(Triple::new(intern("c"), rdf_type, intern("a0")));
    // ∃p and ∃p⁻ as restrictions.
    for (name, prop) in [("exists_p", "p"), ("exists_p_inv", "p_inv")] {
        let r = intern(name);
        g.insert(Triple::new(r, rdf_type, vocab::owl_restriction()));
        g.insert(Triple::new(r, vocab::owl_on_property(), intern(prop)));
        g.insert(Triple::new(
            r,
            vocab::owl_some_values_from(),
            vocab::owl_thing(),
        ));
    }
    g.insert(Triple::new(
        intern("p"),
        vocab::owl_inverse_of(),
        intern("p_inv"),
    ));
    g.insert(Triple::new(
        intern("p_inv"),
        vocab::owl_inverse_of(),
        intern("p"),
    ));
    // SubClassOf(a0, ∃p), SubClassOf(∃p⁻, a1)
    g.insert(Triple::new(intern("a0"), sub_class, intern("exists_p")));
    g.insert(Triple::new(intern("exists_p_inv"), sub_class, intern("a1")));
    // SubClassOf(a_i, a_{i+1})
    for i in 1..n {
        g.insert(Triple::new(
            intern(&format!("a{i}")),
            sub_class,
            intern(&format!("a{}", i + 1)),
        ));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        let g1 = random_graph(10, 30, &["e", "f"], 42);
        let g2 = random_graph(10, 30, &["e", "f"], 42);
        assert_eq!(g1, g2);
        assert!(g1.len() <= 30 && !g1.is_empty());
    }

    #[test]
    fn transport_default_matches_paper_figure_shape() {
        let g = transport_graph(TransportSpec::default());
        // 3 services connecting 4 cities, 3 operators each partOf
        // transportService directly (depth 1).
        assert!(g.contains(&Triple::from_strs("city0", "service0", "city1")));
        assert!(g.contains(&Triple::from_strs("service0", "partOf", "operator0")));
        assert!(g.contains(&Triple::from_strs(
            "operator0",
            "partOf",
            "transportService"
        )));
    }

    #[test]
    fn transport_deep_chain() {
        let g = transport_graph(TransportSpec {
            cities: 3,
            operators: 1,
            part_of_depth: 3,
        });
        assert!(g.contains(&Triple::from_strs("operator0", "partOf", "operator0_tier1")));
        assert!(g.contains(&Triple::from_strs(
            "operator0_tier2",
            "partOf",
            "transportService"
        )));
    }

    #[test]
    fn university_contains_ontology_and_data() {
        let g = university_graph(UniversitySpec::default());
        assert!(g.contains(&Triple::from_strs(
            "professor",
            "rdfs:subClassOf",
            "faculty"
        )));
        assert!(g.contains(&Triple::from_strs("prof_0_0", "rdf:type", "professor")));
        assert!(!g.matching(None, Some(intern("advises")), None).is_empty());
    }

    #[test]
    fn chain_ontology_has_n_plus_fixed_triples() {
        let g5 = chain_ontology_graph(5);
        let g6 = chain_ontology_graph(6);
        assert_eq!(g6.len(), g5.len() + 1);
        assert!(g5.contains(&Triple::from_strs("a4", "rdfs:subClassOf", "a5")));
    }
}
