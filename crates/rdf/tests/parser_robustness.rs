//! Fuzz-style robustness for the Turtle-lite parser.

use proptest::prelude::*;
use triq_rdf::parse_turtle;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn turtle_parser_never_panics(input in "\\PC{0,160}") {
        let _ = parse_turtle(&input);
    }

    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "@prefix", "ex:", "<http://x>", ".", "a", "s", "p", "o",
            "\"literal\"", "#comment", "\n", "_:b",
        ]),
        0..12,
    )) {
        let input = tokens.join(" ");
        let _ = parse_turtle(&input);
    }
}
