//! Property tests: Turtle-lite serialization round-trips arbitrary graphs,
//! and pattern matching agrees with a naive scan.

use proptest::prelude::*;
use triq_rdf::{parse_turtle, to_turtle, Graph, Triple};

/// Term strings: bare words, prefixed names and nasty literals.
fn term_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}",
        "[a-z]{1,4}:[a-zA-Z][a-zA-Z0-9_]{0,6}",
        // Literals with spaces, quotes, escapes, keywords.
        Just("a".to_string()),
        Just("multi word literal".to_string()),
        Just("quote \" inside".to_string()),
        Just("line\nbreak".to_string()),
        Just("dot.inside".to_string()),
        Just("@weird".to_string()),
    ]
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    prop::collection::vec((term_strategy(), term_strategy(), term_strategy()), 0..20).prop_map(
        |triples| {
            triples
                .into_iter()
                .map(|(s, p, o)| Triple::from_strs(&s, &p, &o))
                .collect()
        },
    )
}

proptest! {
    #[test]
    fn turtle_round_trip(graph in graph_strategy()) {
        let text = to_turtle(&graph);
        let parsed = parse_turtle(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- text ---\n{text}"));
        prop_assert_eq!(parsed, graph);
    }

    #[test]
    fn matching_agrees_with_scan(graph in graph_strategy(), which in 0u8..8) {
        let Some(probe) = graph.iter().next().copied() else { return Ok(()); };
        let s = (which & 1 != 0).then_some(probe.s);
        let p = (which & 2 != 0).then_some(probe.p);
        let o = (which & 4 != 0).then_some(probe.o);
        let mut indexed = graph.matching(s, p, o);
        let mut scanned: Vec<Triple> = graph
            .iter()
            .copied()
            .filter(|t| {
                s.is_none_or(|x| t.s == x)
                    && p.is_none_or(|x| t.p == x)
                    && o.is_none_or(|x| t.o == x)
            })
            .collect();
        indexed.sort();
        scanned.sort();
        prop_assert_eq!(indexed, scanned);
    }
}
