//! Mutation batches for incremental maintenance.
//!
//! A [`Delta`] describes a change to the *extensional* data (database
//! facts / RDF triples bridged through `τ_db`) as two fact lists. It is
//! deliberately defined here in `triq-common` — below the rule and store
//! layers — so the facade (`triq::Session`), the incremental subsystem
//! (`triq_datalog::incremental`) and tooling (`triq-cli update`) all
//! speak the same type without depending on each other.

use crate::{intern, Symbol};
use std::fmt;

/// A ground fact over constants only: `pred(args…)`. This is the unit of
/// extensional change — labeled nulls and variables never appear in a
/// delta (they exist only inside materialized instances).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Fact {
    /// The predicate.
    pub pred: Symbol,
    /// The constant argument tuple.
    pub args: Vec<Symbol>,
}

impl Fact {
    /// Builds a fact from already-interned symbols.
    pub fn new(pred: Symbol, args: Vec<Symbol>) -> Fact {
        Fact { pred, args }
    }

    /// Interns strings into a fact.
    pub fn from_strs(pred: &str, args: &[&str]) -> Fact {
        Fact {
            pred: intern(pred),
            args: args.iter().map(|a| intern(a)).collect(),
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// A batch of extensional insertions and deletions, applied atomically by
/// the incremental maintenance machinery.
///
/// Facts listed in `deletes` are removed **before** `inserts` are added,
/// so a fact appearing in both lists ends up present. Inserting a fact
/// that is already stored and deleting one that is absent are both
/// no-ops — a delta describes the *target* change, not a transition that
/// must be exactly realizable.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Delta {
    /// Facts to add.
    pub inserts: Vec<Fact>,
    /// Facts to remove.
    pub deletes: Vec<Fact>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Queues an insertion (builder style).
    pub fn insert(mut self, pred: &str, args: &[&str]) -> Delta {
        self.add_insert(Fact::from_strs(pred, args));
        self
    }

    /// Queues a deletion (builder style).
    pub fn delete(mut self, pred: &str, args: &[&str]) -> Delta {
        self.add_delete(Fact::from_strs(pred, args));
        self
    }

    /// Queues an insertion.
    pub fn add_insert(&mut self, fact: Fact) {
        self.inserts.push(fact);
    }

    /// Queues a deletion.
    pub fn add_delete(&mut self, fact: Fact) {
        self.deletes.push(fact);
    }

    /// True iff the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let d = Delta::new()
            .insert("e", &["a", "b"])
            .delete("e", &["b", "c"]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.inserts[0].to_string(), "e(a, b)");
        assert_eq!(d.deletes[0], Fact::from_strs("e", &["b", "c"]));
        assert!(Delta::new().is_empty());
    }
}
