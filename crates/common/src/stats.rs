//! Per-relation statistics for cost-based join planning.
//!
//! The chase's join planner orders a rule's body atoms by *estimated*
//! intermediate-result size, which needs three numbers per stored column:
//! how many rows there are, roughly how many **distinct** values the
//! column holds (the divisor that turns "rows" into "rows per binding"),
//! and the value range (a bound constant outside `[min, max]` cannot
//! match at all). The types here are deliberately dependency-free and
//! *insert-monotone*: the relation store updates them in O(1) on every
//! fresh insert and never on lookup, so keeping statistics costs the hot
//! write path two array writes and a hash.
//!
//! Distinct counts use a small HyperLogLog sketch ([`DistinctSketch`],
//! 256 one-byte registers): exact behaviour on tiny columns via the
//! standard linear-counting small-range correction, and a relative error
//! around 6–7 % at any larger cardinality — adversarial skew (the same
//! value inserted a million times) cannot inflate the estimate, because
//! the sketch observes each distinct hash, not each insert.

/// Number of HyperLogLog registers (must be a power of two). 256 gives
/// `1.04 / sqrt(256)` ≈ 6.5 % standard error in 256 bytes per column.
const REGISTERS: usize = 256;
/// log2(REGISTERS): the number of hash bits consumed by register choice.
const REG_BITS: u32 = 8;

/// SplitMix64: a statistically strong, dependency-free 64-bit mixer.
/// The sketch needs well-dispersed bits from small integer keys
/// (interned ids); this is the standard choice.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A HyperLogLog cardinality sketch over `u64` keys.
///
/// `insert` is O(1) and idempotent per distinct key; `estimate` applies
/// the standard bias correction plus the linear-counting small-range
/// correction, so small columns (the common case for rule constants)
/// are counted near-exactly.
#[derive(Clone)]
pub struct DistinctSketch {
    registers: [u8; REGISTERS],
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch {
            registers: [0; REGISTERS],
        }
    }
}

impl std::fmt::Debug for DistinctSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistinctSketch")
            .field("estimate", &self.estimate())
            .finish()
    }
}

impl DistinctSketch {
    /// An empty sketch (estimate 0).
    pub fn new() -> Self {
        DistinctSketch::default()
    }

    /// Observes one key. Duplicate keys never change the estimate.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let h = mix64(key);
        let reg = (h & (REGISTERS as u64 - 1)) as usize;
        // Rank of the remaining bits: position of the first set bit,
        // counted from 1. A zero remainder ranks at the full width.
        let rest = h >> REG_BITS;
        let rank = (rest.trailing_zeros() + 1).min(64 - REG_BITS + 1) as u8;
        if rank > self.registers[reg] {
            self.registers[reg] = rank;
        }
    }

    /// The estimated number of distinct keys observed.
    pub fn estimate(&self) -> u64 {
        let m = REGISTERS as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / f64::from(1u32 << u32::from(r.min(31)));
            if r == 0 {
                zeros += 1;
            }
        }
        // alpha_256 from the HLL paper's alpha_m formula (m >= 128).
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        let est = if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting on empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        est.round() as u64
    }
}

/// Insert-monotone statistics of one stored column.
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    sketch: DistinctSketch,
    /// Smallest raw key observed (`None` while the column is empty).
    min: Option<u32>,
    /// Largest raw key observed.
    max: Option<u32>,
}

impl ColumnStats {
    /// Observes a freshly inserted value (its raw interned id).
    #[inline]
    pub fn observe(&mut self, raw: u32) {
        self.sketch.insert(u64::from(raw));
        self.min = Some(self.min.map_or(raw, |m| m.min(raw)));
        self.max = Some(self.max.map_or(raw, |m| m.max(raw)));
    }

    /// Estimated distinct values ever inserted (tombstones are not
    /// subtracted — the stats are planning hints, not live counts).
    pub fn distinct(&self) -> u64 {
        self.sketch.estimate()
    }

    /// True iff `raw` lies outside every value ever inserted here — a
    /// probe for it can be costed at zero.
    #[inline]
    pub fn excludes(&self, raw: u32) -> bool {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => raw < lo || raw > hi,
            _ => true, // nothing inserted: everything is excluded
        }
    }

    /// The observed `[min, max]` raw-key range, if any value was inserted.
    pub fn range(&self) -> Option<(u32, u32)> {
        Some((self.min?, self.max?))
    }
}

/// Statistics of one relation: insert count plus per-column stats.
///
/// `rows` counts *insertions*; the live row count (which deletions
/// shrink) belongs to the store itself. The planner uses live counts for
/// cardinality and these per-column stats for selectivity.
#[derive(Clone, Debug, Default)]
pub struct RelationStats {
    /// Rows ever inserted (never decremented).
    pub rows: u64,
    /// Per-column statistics, index-aligned with the stored columns.
    pub cols: Vec<ColumnStats>,
}

impl RelationStats {
    /// Stats for a relation of the given arity, all columns empty.
    pub fn new(arity: usize) -> Self {
        RelationStats {
            rows: 0,
            cols: vec![ColumnStats::default(); arity],
        }
    }

    /// Observes one freshly inserted row (raw interned ids, column order).
    #[inline]
    pub fn observe_row(&mut self, raw: impl Iterator<Item = u32>) {
        self.rows += 1;
        for (col, key) in self.cols.iter_mut().zip(raw) {
            col.observe(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_of(n: u64, dup: u64) -> u64 {
        let mut s = DistinctSketch::new();
        for i in 0..n {
            for _ in 0..dup {
                s.insert(i);
            }
        }
        s.estimate()
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        for n in [0u64, 1, 2, 5, 17, 60] {
            let est = estimate_of(n, 1);
            assert!(
                est.abs_diff(n) <= 1 + n / 20,
                "estimate {est} for {n} distinct"
            );
        }
    }

    #[test]
    fn estimates_stay_within_bound_across_scales() {
        // 1.04/sqrt(256) ≈ 6.5 % standard error; assert a 3-sigma-ish
        // 20 % bound at every scale.
        for n in [100u64, 1_000, 10_000, 100_000] {
            let est = estimate_of(n, 1);
            let err = est.abs_diff(n) as f64 / n as f64;
            assert!(err < 0.20, "estimate {est} for {n} distinct ({err:.3})");
        }
    }

    #[test]
    fn adversarial_skew_does_not_inflate_the_estimate() {
        // The same 50 keys hammered 10_000 times each must still read
        // as ~50 distinct — duplicate inserts are invisible to HLL.
        let est = estimate_of(50, 10_000);
        assert!(est.abs_diff(50) <= 5, "skewed estimate {est} for 50");
        // And a hot-key-plus-long-tail mix (zipf-ish) is just its
        // distinct count.
        let mut s = DistinctSketch::new();
        for _ in 0..1_000_000 {
            s.insert(7);
        }
        for i in 0..500u64 {
            s.insert(1_000 + i);
        }
        let est = s.estimate();
        let err = est.abs_diff(501) as f64 / 501.0;
        assert!(err < 0.20, "skewed estimate {est} for 501 ({err:.3})");
    }

    #[test]
    fn column_stats_track_range_and_distinct() {
        let mut c = ColumnStats::default();
        assert!(c.excludes(3));
        for raw in [10u32, 20, 15, 10, 10] {
            c.observe(raw);
        }
        assert_eq!(c.range(), Some((10, 20)));
        assert!(c.excludes(9));
        assert!(c.excludes(21));
        assert!(!c.excludes(15));
        assert!(c.distinct() >= 2 && c.distinct() <= 4, "{}", c.distinct());
    }

    #[test]
    fn relation_stats_observe_rows_columnwise() {
        let mut r = RelationStats::new(2);
        r.observe_row([1u32, 100].into_iter());
        r.observe_row([2u32, 100].into_iter());
        r.observe_row([3u32, 100].into_iter());
        assert_eq!(r.rows, 3);
        assert!(r.cols[0].distinct() >= 2);
        assert_eq!(r.cols[1].distinct(), 1);
        assert_eq!(r.cols[1].range(), Some((100, 100)));
    }
}
