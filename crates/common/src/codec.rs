//! Compact deterministic binary codec for the durability subsystem.
//!
//! Snapshots and WAL records are byte streams built from a tiny set of
//! primitives — LEB128 varints, fixed little-endian words, length-prefixed
//! byte strings and raw `u32` slices (the columnar store's `Vec<TermId>`
//! columns serialize nearly verbatim). The encoding is *deterministic*:
//! the same logical state always produces the same bytes, which is what
//! lets recovery tests assert byte-identical answers and lets CRCs detect
//! torn or bit-flipped records.
//!
//! Interner independence: interned [`Symbol`] ids are stable only for the
//! life of one process, so a snapshot carries the interner's string table
//! and every on-disk symbol is an index *into that table*. On decode a
//! [`SymbolRemap`] re-interns the table in order and translates old ids to
//! the live process's ids (the identity map when the process interner was
//! restored from the same snapshot lineage). Labeled nulls are
//! instance-local and pass through unchanged.
//!
//! WAL payloads ([`encode_delta`]) are fully self-contained — facts are
//! written as strings — so a log record can be replayed into any process
//! without a side table.

use crate::{intern, Delta, Fact, NullId, Result, Symbol, TermId, TriqError};

/// Tag bit separating nulls from constants (mirrors `TermId`'s packing).
const NULL_BIT: u32 = 1 << 31;

/// Builds the canonical corrupt-stream error.
fn corrupt(what: &str) -> TriqError {
    TriqError::Persist(format!("corrupt stream: {what}"))
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — dependency-free, table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum guarding WAL records and
/// snapshot bodies against torn writes and bit flips.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Append-only byte-stream builder; the write half of the codec.
#[derive(Default, Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a fixed-width little-endian `u32`.
    pub fn u32_fixed(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a fixed-width little-endian `u64`.
    pub fn u64_fixed(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends raw bytes verbatim (no length prefix) — for splicing an
    /// already-encoded section into an outer stream.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed byte string.
    pub fn blob(&mut self, bytes: &[u8]) {
        self.varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }

    /// Writes a length-prefixed slice of raw `u32` words (little-endian).
    ///
    /// This is the bulk path: a columnar `Vec<TermId>` column is one call.
    pub fn u32_slice(&mut self, words: impl ExactSizeIterator<Item = u32>) {
        self.varint(words.len() as u64);
        self.buf.reserve(words.len() * 4);
        for w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Bounds-checked reader over an encoded byte stream; every method returns
/// `E-PERSIST` on truncation or malformed data instead of panicking, so a
/// corrupt snapshot is a recoverable error, never a crash.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff the whole stream has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt("unexpected end of stream"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn u32_fixed(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn u64_fixed(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(corrupt("varint overflow"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a varint, checked to fit `usize` and be at most `cap` (a
    /// sanity bound against absurd length prefixes in corrupt streams).
    pub fn len_capped(&mut self, cap: usize) -> Result<usize> {
        let v = self.varint()?;
        if v > cap as u64 {
            return Err(corrupt("length prefix exceeds stream bounds"));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn blob(&mut self) -> Result<&'a [u8]> {
        let n = self.len_capped(self.remaining())?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.blob()?).map_err(|_| corrupt("invalid UTF-8"))
    }

    /// Reads a length-prefixed slice of raw `u32` words.
    pub fn u32_slice(&mut self) -> Result<Vec<u32>> {
        let n = self.len_capped(self.remaining() / 4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Interner table + symbol remapping
// ---------------------------------------------------------------------------

/// Writes the process interner's full string table (id order), the
/// side table every snapshot symbol indexes into.
pub fn encode_interner(enc: &mut Encoder) {
    let strings = crate::interner::interned_strings();
    enc.varint(strings.len() as u64);
    for s in strings {
        enc.str(s);
    }
}

/// Translation from snapshot-time symbol ids to live process ids.
///
/// Built by re-interning the snapshot's string table in order; when the
/// live interner happens to assign the same ids (e.g. a fresh process
/// restoring its first snapshot), translation is a bounds check only.
#[derive(Debug)]
pub struct SymbolRemap {
    map: Vec<Symbol>,
    identity: bool,
}

impl SymbolRemap {
    /// Reads a string table written by [`encode_interner`] and interns
    /// every entry, recording old-id → live-id.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<SymbolRemap> {
        let n = dec.len_capped(dec.remaining())?;
        let mut map = Vec::with_capacity(n);
        let mut identity = true;
        for old in 0..n {
            let sym = intern(dec.str()?);
            identity &= sym.index() as usize == old;
            map.push(sym);
        }
        Ok(SymbolRemap { map, identity })
    }

    /// True iff every snapshot id maps to itself in the live interner.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Number of snapshot-time symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff the snapshot interner was empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Translates a snapshot-time symbol id.
    pub fn symbol(&self, old: u32) -> Result<Symbol> {
        self.map
            .get(old as usize)
            .copied()
            .ok_or_else(|| corrupt("symbol id out of table bounds"))
    }

    /// Translates a snapshot-time packed [`TermId`]: constants are
    /// remapped through the table, labeled nulls pass through verbatim.
    pub fn term(&self, raw: u32) -> Result<TermId> {
        if raw & NULL_BIT != 0 {
            Ok(TermId::from_null(NullId(raw & !NULL_BIT)))
        } else {
            Ok(TermId::from_const(self.symbol(raw)?))
        }
    }
}

// ---------------------------------------------------------------------------
// Delta (WAL payload) — string-based, self-contained
// ---------------------------------------------------------------------------

fn encode_fact(enc: &mut Encoder, fact: &Fact) {
    enc.str(fact.pred.as_str());
    enc.varint(fact.args.len() as u64);
    for a in &fact.args {
        enc.str(a.as_str());
    }
}

fn decode_fact(dec: &mut Decoder<'_>) -> Result<Fact> {
    let pred = intern(dec.str()?);
    let arity = dec.len_capped(dec.remaining())?;
    let mut args = Vec::with_capacity(arity);
    for _ in 0..arity {
        args.push(intern(dec.str()?));
    }
    Ok(Fact::new(pred, args))
}

/// Writes a [`Delta`] as a self-contained record payload (facts as
/// strings, independent of any interner state).
pub fn encode_delta(enc: &mut Encoder, delta: &Delta) {
    enc.varint(delta.deletes.len() as u64);
    for f in &delta.deletes {
        encode_fact(enc, f);
    }
    enc.varint(delta.inserts.len() as u64);
    for f in &delta.inserts {
        encode_fact(enc, f);
    }
}

/// Reads a [`Delta`] written by [`encode_delta`].
pub fn decode_delta(dec: &mut Decoder<'_>) -> Result<Delta> {
    let mut delta = Delta::new();
    let deletes = dec.len_capped(dec.remaining())?;
    for _ in 0..deletes {
        delta.add_delete(decode_fact(dec)?);
    }
    let inserts = dec.len_capped(dec.remaining())?;
    for _ in 0..inserts {
        delta.add_insert(decode_fact(dec)?);
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u32_fixed(0xDEAD_BEEF);
        enc.u64_fixed(u64::MAX);
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            enc.varint(v);
        }
        enc.str("héllo");
        enc.blob(&[1, 2, 3]);
        enc.u32_slice([5u32, 0, NULL_BIT | 3].into_iter());

        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32_fixed().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64_fixed().unwrap(), u64::MAX);
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(dec.varint().unwrap(), v);
        }
        assert_eq!(dec.str().unwrap(), "héllo");
        assert_eq!(dec.blob().unwrap(), &[1, 2, 3]);
        assert_eq!(dec.u32_slice().unwrap(), vec![5, 0, NULL_BIT | 3]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut enc = Encoder::new();
        enc.str("a longer string than the stream will hold");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..bytes.len() - 5]);
        let err = dec.str().unwrap_err();
        assert_eq!(err.code(), "E-PERSIST");
    }

    #[test]
    fn absurd_length_prefixes_are_rejected() {
        let mut enc = Encoder::new();
        enc.varint(u64::MAX - 1);
        let bytes = enc.into_bytes();
        assert_eq!(Decoder::new(&bytes).blob().unwrap_err().code(), "E-PERSIST");
        // A varint that never terminates within 64 bits.
        let overlong = [0xFFu8; 11];
        assert_eq!(
            Decoder::new(&overlong).varint().unwrap_err().code(),
            "E-PERSIST"
        );
    }

    #[test]
    fn interner_table_round_trips_through_remap() {
        let a = intern("codec-remap-a");
        let b = intern("codec-remap-b");
        let mut enc = Encoder::new();
        encode_interner(&mut enc);
        let bytes = enc.into_bytes();
        let remap = SymbolRemap::decode(&mut Decoder::new(&bytes)).unwrap();
        // Re-interning into the same process interner is the identity.
        assert!(remap.is_identity());
        assert_eq!(remap.symbol(a.index()).unwrap(), a);
        assert_eq!(remap.symbol(b.index()).unwrap(), b);
        assert_eq!(
            remap.term(TermId::from_const(a).raw()).unwrap(),
            TermId::from_const(a)
        );
        let null = TermId::from_null(NullId(42));
        assert_eq!(remap.term(null.raw()).unwrap(), null);
        assert!(remap.symbol(remap.len() as u32).is_err());
    }

    #[test]
    fn delta_round_trips_as_strings() {
        let delta = Delta::new()
            .insert("e", &["a", "b"])
            .insert("node", &["x"])
            .delete("e", &["b", "c"]);
        let mut enc = Encoder::new();
        encode_delta(&mut enc, &delta);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(decode_delta(&mut dec).unwrap(), delta);
        assert!(dec.is_exhausted());
    }
}
