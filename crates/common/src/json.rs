//! A minimal JSON writer.
//!
//! The serving layer (`triq-server`) speaks JSON on the wire, and this
//! workspace is deliberately dependency-free (every external crate is a
//! vendored stand-in), so the answer/stats serializers are built on this
//! tiny value type instead of `serde`. It lives in `triq-common` — below
//! every other crate — so the server, the CLI and tests all share one
//! escaping implementation.
//!
//! Only *writing* is provided. The wire protocol (`docs/PROTOCOL.md`)
//! was shaped so requests arrive as plain text (query source, `+fact` /
//! `-fact` lines) and only responses are JSON; nothing in the workspace
//! needs a JSON parser.
//!
//! ```
//! use triq_common::json::Json;
//!
//! let j = Json::obj([
//!     ("rows", Json::arr([Json::arr([Json::str("a"), Json::str("b")])])),
//!     ("top", Json::Bool(false)),
//!     ("count", Json::U64(1)),
//! ]);
//! assert_eq!(j.to_string(), r#"{"rows":[["a","b"]],"top":false,"count":1}"#);
//! ```

use std::fmt;

/// A JSON value, rendered compactly (no whitespace) by [`fmt::Display`].
///
/// Object member order is preserved as given — serializations are
/// deterministic and stable for tests and wire clients.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (engine counters, row counts, versions).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience over `Json::Str(s.into())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

/// Writes `s` with JSON string escaping (quotes included).
pub fn write_json_str(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::Str(s) => write_json_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_str(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        let j = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_structures_render_compact_and_ordered() {
        let j = Json::obj([
            ("b", Json::U64(2)),
            (
                "a",
                Json::arr([Json::Null, Json::Bool(true), Json::I64(-1)]),
            ),
        ]);
        assert_eq!(j.to_string(), r#"{"b":2,"a":[null,true,-1]}"#);
        assert_eq!(Json::arr([]).to_string(), "[]");
        assert_eq!(Json::obj::<String>([]).to_string(), "{}");
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(Json::str("⊤ λ").to_string(), "\"⊤ λ\"");
    }
}
