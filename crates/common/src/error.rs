//! Workspace-wide error type with stable, programmatically matchable
//! error codes.

use std::fmt;

/// Errors raised across the TriQ workspace.
///
/// Every variant carries a stable [code](TriqError::code) (`E-…`) that API
/// users can match on without parsing display strings; codes are part of
/// the public contract and never change meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriqError {
    /// `E-PARSE`: a parser rejected its input (`what` identifies the
    /// parser).
    Parse {
        /// Which parser rejected the input (`"datalog"`, `"sparql"`, …).
        what: &'static str,
        /// The parser's diagnostic.
        message: String,
    },
    /// `E-INVALID-PROGRAM`: a program failed a static well-formedness
    /// check (arity mismatch, unsafe rule, ...).
    InvalidProgram(String),
    /// `E-STRATIFY`: the program is not stratified — negation occurs in a
    /// recursive cycle (§3.2).
    Unstratifiable(String),
    /// `E-OUTPUT-IN-BODY`: the query output predicate occurs in a rule
    /// body, which §3.2 forbids.
    OutputInBody(String),
    /// `E-LANG-MEMBERSHIP`: a program failed a language-membership check
    /// (e.g. a query handed to the TriQ-Lite 1.0 engine is not warded).
    NotInLanguage {
        /// The language whose membership check failed.
        language: &'static str,
        /// Why the program is outside the language.
        reason: String,
    },
    /// `E-RESOURCE`: the chase exceeded its configured step / depth
    /// budget.
    ResourceExhausted(String),
    /// `E-PERSIST`: the durability layer failed — an I/O error on the
    /// WAL or snapshot store, or a corrupt/truncated encoded stream.
    Persist(String),
    /// `E-OTHER`: anything else.
    Other(String),
}

impl TriqError {
    /// The stable error code of this error.
    ///
    /// Codes are `E-`-prefixed SCREAMING-KEBAB identifiers; match on them
    /// for programmatic failure handling:
    ///
    /// ```
    /// use triq_common::TriqError;
    /// let e = TriqError::Unstratifiable("negative cycle".into());
    /// assert_eq!(e.code(), "E-STRATIFY");
    /// ```
    pub fn code(&self) -> &'static str {
        match self {
            TriqError::Parse { .. } => "E-PARSE",
            TriqError::InvalidProgram(_) => "E-INVALID-PROGRAM",
            TriqError::Unstratifiable(_) => "E-STRATIFY",
            TriqError::OutputInBody(_) => "E-OUTPUT-IN-BODY",
            TriqError::NotInLanguage { .. } => "E-LANG-MEMBERSHIP",
            TriqError::ResourceExhausted(_) => "E-RESOURCE",
            TriqError::Persist(_) => "E-PERSIST",
            TriqError::Other(_) => "E-OTHER",
        }
    }
}

impl fmt::Display for TriqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            TriqError::Parse { what, message } => write!(f, "{what} parse error: {message}"),
            TriqError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            TriqError::Unstratifiable(m) => write!(f, "program is not stratified: {m}"),
            TriqError::OutputInBody(m) => write!(f, "output predicate in rule body: {m}"),
            TriqError::NotInLanguage { language, reason } => {
                write!(f, "query is not in {language}: {reason}")
            }
            TriqError::ResourceExhausted(m) => write!(f, "resource budget exhausted: {m}"),
            TriqError::Persist(m) => write!(f, "persistence failure: {m}"),
            TriqError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for TriqError {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, TriqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TriqError::Parse {
            what: "datalog",
            message: "unexpected token".into(),
        };
        assert_eq!(
            e.to_string(),
            "[E-PARSE] datalog parse error: unexpected token"
        );
        let e = TriqError::NotInLanguage {
            language: "TriQ-Lite 1.0",
            reason: "rule 3 is not warded".into(),
        };
        assert!(e.to_string().contains("TriQ-Lite 1.0"));
        assert!(e.to_string().contains("E-LANG-MEMBERSHIP"));
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            TriqError::Parse {
                what: "x",
                message: String::new(),
            },
            TriqError::InvalidProgram(String::new()),
            TriqError::Unstratifiable(String::new()),
            TriqError::OutputInBody(String::new()),
            TriqError::NotInLanguage {
                language: "x",
                reason: String::new(),
            },
            TriqError::ResourceExhausted(String::new()),
            TriqError::Persist(String::new()),
            TriqError::Other(String::new()),
        ];
        let codes: Vec<&str> = errors.iter().map(TriqError::code).collect();
        assert_eq!(
            codes,
            vec![
                "E-PARSE",
                "E-INVALID-PROGRAM",
                "E-STRATIFY",
                "E-OUTPUT-IN-BODY",
                "E-LANG-MEMBERSHIP",
                "E-RESOURCE",
                "E-PERSIST",
                "E-OTHER",
            ]
        );
        let unique: std::collections::BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(unique.len(), codes.len());
    }
}
