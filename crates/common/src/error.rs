//! Workspace-wide error type.

use std::fmt;

/// Errors raised across the TriQ workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriqError {
    /// A parser rejected its input (`what` identifies the parser).
    Parse { what: &'static str, message: String },
    /// A program failed a static well-formedness check (arity mismatch,
    /// unsafe rule, unstratifiable negation, ...).
    InvalidProgram(String),
    /// A program failed a language-membership check (e.g. a query handed to
    /// the TriQ-Lite 1.0 engine is not warded).
    NotInLanguage { language: &'static str, reason: String },
    /// The chase exceeded its configured step / depth budget.
    ResourceExhausted(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for TriqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriqError::Parse { what, message } => write!(f, "{what} parse error: {message}"),
            TriqError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            TriqError::NotInLanguage { language, reason } => {
                write!(f, "query is not in {language}: {reason}")
            }
            TriqError::ResourceExhausted(m) => write!(f, "resource budget exhausted: {m}"),
            TriqError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for TriqError {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, TriqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TriqError::Parse {
            what: "datalog",
            message: "unexpected token".into(),
        };
        assert_eq!(e.to_string(), "datalog parse error: unexpected token");
        let e = TriqError::NotInLanguage {
            language: "TriQ-Lite 1.0",
            reason: "rule 3 is not warded".into(),
        };
        assert!(e.to_string().contains("TriQ-Lite 1.0"));
    }
}
