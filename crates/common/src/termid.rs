//! `TermId` — a single `u32` id space over all *ground* terms.
//!
//! The chase stores instances as fixed-arity rows of ids, so the storage
//! layer needs one integer that covers both halves of the paper's ground
//! vocabulary: constants/literals from **U** (already interned as
//! [`Symbol`]) and labeled nulls from **B** ([`NullId`]). `TermId` packs
//! the kind into the top bit:
//!
//! * bit 31 clear — a constant; the low 31 bits are the [`Symbol`] index,
//! * bit 31 set — a labeled null; the low 31 bits are the [`NullId`].
//!
//! Variables have no `TermId`: they exist only in rule patterns, never in
//! stored rows. Encoding is a bit-op, not a lookup, so converting between
//! [`Term`] and `TermId` allocates nothing — the property the relation
//! store's borrowed-key probes rely on.

use crate::{NullId, Symbol, Term};
use std::fmt;

/// Tag bit separating nulls from constants.
const NULL_BIT: u32 = 1 << 31;

/// A ground term (constant or labeled null) as a single `u32`.
///
/// Ordering and hashing are on the packed representation: all constants
/// sort before all nulls, each kind in id order. Two `TermId`s are equal
/// iff they denote the same term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// The id of a constant. Panics if the symbol index reaches the tag
    /// bit (2³¹ interned strings) — a hard assert, because silently
    /// aliasing a constant to a null would corrupt query answers.
    #[inline]
    pub fn from_const(sym: Symbol) -> TermId {
        assert!(sym.index() & NULL_BIT == 0, "TermId symbol space exhausted");
        TermId(sym.index())
    }

    /// The id of a labeled null. Panics if the null id reaches the tag
    /// bit (2³¹ nulls in one instance).
    #[inline]
    pub fn from_null(null: NullId) -> TermId {
        assert!(null.0 & NULL_BIT == 0, "TermId null space exhausted");
        TermId(null.0 | NULL_BIT)
    }

    /// Encodes a ground term; `None` for variables.
    #[inline]
    pub fn from_term(term: Term) -> Option<TermId> {
        match term {
            Term::Const(s) => Some(TermId::from_const(s)),
            Term::Null(n) => Some(TermId::from_null(n)),
            Term::Var(_) => None,
        }
    }

    /// Decodes back into a [`Term`] (always a constant or null).
    #[inline]
    pub fn to_term(self) -> Term {
        if self.0 & NULL_BIT == 0 {
            Term::Const(Symbol(self.0))
        } else {
            Term::Null(NullId(self.0 & !NULL_BIT))
        }
    }

    /// True iff this id denotes a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 & NULL_BIT == 0
    }

    /// The constant inside, if any.
    #[inline]
    pub fn as_const(self) -> Option<Symbol> {
        self.is_const().then_some(Symbol(self.0))
    }

    /// The null inside, if any.
    #[inline]
    pub fn as_null(self) -> Option<NullId> {
        (!self.is_const()).then_some(NullId(self.0 & !NULL_BIT))
    }

    /// The packed representation (stable for the process lifetime).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<Symbol> for TermId {
    fn from(s: Symbol) -> TermId {
        TermId::from_const(s)
    }
}

impl From<NullId> for TermId {
    fn from(n: NullId) -> TermId {
        TermId::from_null(n)
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_term(), f)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_term(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern;

    #[test]
    fn round_trips() {
        let c = Term::constant("abc");
        let n = Term::Null(NullId(7));
        assert_eq!(TermId::from_term(c).unwrap().to_term(), c);
        assert_eq!(TermId::from_term(n).unwrap().to_term(), n);
        assert_eq!(TermId::from_term(Term::Var(crate::VarId::new("X"))), None);
    }

    #[test]
    fn kinds_are_disjoint() {
        let c = TermId::from_const(intern("x"));
        let n = TermId::from_null(NullId(intern("x").index()));
        assert_ne!(c, n);
        assert!(c.is_const() && !n.is_const());
        assert_eq!(c.as_const(), Some(intern("x")));
        assert_eq!(n.as_null(), Some(NullId(intern("x").index())));
    }

    #[test]
    fn display_matches_term() {
        assert_eq!(TermId::from_const(intern("hello")).to_string(), "hello");
        assert_eq!(TermId::from_null(NullId(3)).to_string(), "_:n3");
    }
}
