//! Shared term model for the TriQ workspace.
//!
//! The paper (§3) assumes pairwise-disjoint infinite countable sets:
//! **U** (URIs / constants), **B** (blank nodes / labeled nulls) and
//! **V** (variables, written with a leading `?`). This crate provides the
//! concrete realization used by every other crate:
//!
//! * [`Symbol`] — an interned constant from **U** (also used for literals,
//!   which the paper folds into URIs; see footnote 5 of the paper),
//! * [`NullId`] — a labeled null from **B**,
//! * [`VarId`] — a variable from **V**,
//! * [`Term`] — the disjoint union of the above,
//! * [`TermId`] — a packed `u32` over the *ground* terms (constants,
//!   literals and nulls), the row element of the columnar relation store.
//!
//! Interning is global and append-only: a [`Symbol`] is a stable `u32` valid
//! for the lifetime of the process, and resolving a symbol to its string is
//! lock-free after interning (strings are leaked into a `&'static str`
//! arena). This makes terms `Copy`, 8 bytes, hashable without touching
//! string data — the representation recommended by the performance guide
//! for database engines.

#![warn(missing_docs)]

pub mod codec;
pub mod deadline;
mod delta;
mod error;
mod interner;
pub mod json;
pub mod stats;
mod term;
mod termid;

pub use delta::{Delta, Fact};
pub use error::{Result, TriqError};
pub use interner::{intern, interned_strings, resolve, Symbol};
pub use stats::{ColumnStats, DistinctSketch, RelationStats};
pub use term::{NullId, Term, VarId};
pub use termid::TermId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_deduplicated() {
        let a = intern("http://example.org/a");
        let b = intern("http://example.org/a");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "http://example.org/a");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(intern("x"), intern("y"));
    }

    #[test]
    fn term_is_small() {
        assert!(std::mem::size_of::<Term>() <= 8);
    }
}
