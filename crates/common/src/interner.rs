//! Global, append-only string interner.
//!
//! Interned strings are leaked (the interner lives for the whole process),
//! which lets [`Symbol::as_str`] hand out `&'static str` without holding a
//! lock. The write path takes a mutex only on a miss.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned constant (a URI or literal from the paper's set **U**).
///
/// Symbols are cheap to copy, compare and hash; two symbols are equal iff
/// their underlying strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::with_capacity(1024),
            strings: Vec::with_capacity(1024),
        })
    })
}

/// Interns `s`, returning its stable [`Symbol`].
pub fn intern(s: &str) -> Symbol {
    {
        let guard = global().read().expect("interner lock poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
    }
    let mut guard = global().write().expect("interner lock poisoned");
    if let Some(&id) = guard.map.get(s) {
        return Symbol(id);
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = guard.strings.len() as u32;
    guard.strings.push(leaked);
    guard.map.insert(leaked, id);
    Symbol(id)
}

/// Resolves a symbol back to its string.
pub fn resolve(sym: Symbol) -> &'static str {
    global().read().expect("interner lock poisoned").strings[sym.0 as usize]
}

/// A point-in-time copy of the full string table, in id order — the side
/// table a persistence snapshot writes so its symbol ids stay decodable
/// in a different process (see `codec::encode_interner`).
///
/// The interner is append-only, so index `i` of the returned vector is
/// the string of `Symbol(i)` forever; later interning only extends the
/// table.
pub fn interned_strings() -> Vec<&'static str> {
    global()
        .read()
        .expect("interner lock poisoned")
        .strings
        .clone()
}

impl Symbol {
    /// Interns `s` (alias for the free function [`intern`]).
    pub fn new(s: &str) -> Self {
        intern(s)
    }

    /// The string this symbol stands for.
    pub fn as_str(self) -> &'static str {
        resolve(self)
    }

    /// The raw interner index (stable for the process lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|t: usize| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| (i, t, intern(&format!("concurrent-{}", (i + t) % 50))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for entries in handles.into_iter().map(|h| h.join().unwrap()) {
            for (i, t, s) in entries {
                assert_eq!(s.as_str(), format!("concurrent-{}", (i + t) % 50));
            }
        }
    }

    #[test]
    fn display_matches_source() {
        let s = intern("hello world");
        assert_eq!(format!("{s}"), "hello world");
        assert!(format!("{s:?}").contains("hello world"));
    }
}
