//! Terms: the disjoint union U ∪ B ∪ V of the paper's §3.

use crate::Symbol;
use std::fmt;

/// A labeled null (blank node) from the paper's set **B**.
///
/// Nulls are created by the chase when existential variables are
/// instantiated, and by RDF parsers for `_:b`-style blank nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u32);

/// A variable from the paper's set **V** (written `?X` in the paper).
///
/// By convention throughout the workspace, the wrapped `u32` is the
/// interner index of the variable's *name* (including the leading `?`), so
/// variables display exactly as written. Use [`VarId::new`] to construct
/// one from a name and [`VarId::name`] to read it back.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Interns a variable name (a leading `?` is added if missing).
    pub fn new(name: &str) -> Self {
        let sym = if name.starts_with('?') {
            crate::intern(name)
        } else {
            crate::intern(&format!("?{name}"))
        };
        VarId(sym.index())
    }

    /// The variable's name, e.g. `?X`.
    pub fn name(self) -> &'static str {
        crate::resolve(Symbol(self.0))
    }
}

/// A term: constant, labeled null, or variable (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant / URI from **U**.
    Const(Symbol),
    /// A labeled null from **B**.
    Null(NullId),
    /// A variable from **V**.
    Var(VarId),
}

impl Term {
    /// Interns `s` as a constant term.
    pub fn constant(s: &str) -> Self {
        Term::Const(Symbol::new(s))
    }

    /// True iff this term is a constant (element of **U**).
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// True iff this term is a labeled null (element of **B**).
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// True iff this term is a variable (element of **V**).
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True iff this term is a constant or null, i.e. may appear in an
    /// instance (§3.2: instances contain constants and labeled nulls only).
    pub fn is_ground_or_null(self) -> bool {
        !self.is_var()
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<Symbol> {
        match self {
            Term::Const(s) => Some(s),
            _ => None,
        }
    }

    /// The variable inside, if any.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The null inside, if any.
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Term::Null(n) => Some(n),
            _ => None,
        }
    }
}

impl From<Symbol> for Term {
    fn from(s: Symbol) -> Self {
        Term::Const(s)
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl From<NullId> for Term {
    fn from(n: NullId) -> Self {
        Term::Null(n)
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:n{}", self.0)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:n{}", self.0)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(s) => write!(f, "{s}"),
            Term::Null(n) => write!(f, "{n}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let c = Term::constant("a");
        let n = Term::Null(NullId(0));
        let v = Term::Var(VarId(0));
        assert!(c.is_const() && !c.is_null() && !c.is_var());
        assert!(n.is_null() && n.is_ground_or_null());
        assert!(v.is_var() && !v.is_ground_or_null());
        assert_eq!(c.as_const().unwrap().as_str(), "a");
        assert_eq!(n.as_null(), Some(NullId(0)));
        assert_eq!(v.as_var(), Some(VarId(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant("abc").to_string(), "abc");
        assert_eq!(Term::Null(NullId(3)).to_string(), "_:n3");
        assert_eq!(Term::Var(VarId::new("X")).to_string(), "?X");
        assert_eq!(Term::Var(VarId::new("?X")).to_string(), "?X");
    }

    #[test]
    fn var_ids_are_name_identities() {
        assert_eq!(VarId::new("X"), VarId::new("?X"));
        assert_ne!(VarId::new("X"), VarId::new("Y"));
        assert_eq!(VarId::new("Foo").name(), "?Foo");
    }
}
