//! Ambient per-request read deadlines.
//!
//! The serving layer needs to bound how long a single read request may
//! spend inside the chase/execute machinery, but [`crate::TriqError`]'s
//! resource budgets (`ChaseConfig::max_atoms`, `max_rounds`, …) are part
//! of the plan fingerprint: adding a per-request wall-clock field there
//! would needlessly split the prepared-plan cache and change the persisted
//! config codec. Instead the deadline is *ambient*: a thread-local
//! `Option<Instant>` installed by the request handler for the duration of
//! one request and polled by long-running loops (chase rounds, apply
//! batches) via [`check`].
//!
//! This works because a snapshot miss materializes on the calling HTTP
//! worker thread (the writer thread never installs a deadline, so
//! incremental maintenance and WAL replay are unaffected). Morsel worker
//! threads spawned *inside* the chase do not see the caller's
//! thread-local; the per-round and amortized per-derivation checks on the
//! coordinating thread bound the overshoot to one collection round.
//!
//! Exceeding the deadline surfaces as
//! [`TriqError::ResourceExhausted`]
//! (`E-RESOURCE`), which the server maps to `503` exactly like the
//! bounded update queue — callers retry, answers that do complete are
//! unaffected.

use std::cell::Cell;
use std::marker::PhantomData;
use std::time::Instant;

use crate::{Result, TriqError};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// RAII guard for an installed deadline; restores the previous deadline
/// (usually `None`) when dropped. `!Send` — the deadline is thread-local
/// and the guard must be dropped on the thread that installed it.
#[must_use = "dropping the guard immediately uninstalls the deadline"]
pub struct DeadlineGuard {
    previous: Option<Instant>,
    // Thread-local state: keep the guard on the installing thread.
    _not_send: PhantomData<*mut ()>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(self.previous));
    }
}

/// Install `at` as the current thread's deadline until the returned guard
/// is dropped. Nested installs restore the outer deadline on drop.
pub fn install(at: Instant) -> DeadlineGuard {
    let previous = DEADLINE.with(|d| d.replace(Some(at)));
    DeadlineGuard {
        previous,
        _not_send: PhantomData,
    }
}

/// True if a deadline is installed on this thread and has passed.
pub fn expired() -> bool {
    DEADLINE
        .with(|d| d.get())
        .is_some_and(|at| Instant::now() >= at)
}

/// Fail with [`TriqError::ResourceExhausted`] (`E-RESOURCE`) if the
/// current thread's deadline has passed; no-op when none is installed.
pub fn check() -> Result<()> {
    if expired() {
        return Err(TriqError::ResourceExhausted(
            "read deadline exceeded".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_deadline_never_expires() {
        assert!(!expired());
        assert!(check().is_ok());
    }

    #[test]
    fn guard_installs_and_restores() {
        {
            let _g = install(Instant::now() - Duration::from_millis(1));
            assert!(expired());
            let err = check().unwrap_err();
            assert_eq!(err.code(), "E-RESOURCE");
            {
                // Nested install with a future deadline shadows the outer one.
                let _inner = install(Instant::now() + Duration::from_secs(3600));
                assert!(!expired());
            }
            assert!(expired());
        }
        assert!(!expired());
    }

    #[test]
    fn future_deadline_passes_check() {
        let _g = install(Instant::now() + Duration::from_secs(3600));
        assert!(check().is_ok());
    }
}
