//! SPARQL → Datalog translations (§5 of the paper):
//!
//! * [`translate_pattern`] — the plain translation `P_dat = (τ_bgp(P) ∪
//!   τ_opr(P) ∪ τ_out(P), answer_P)` of Theorem 5.2, evaluating graph
//!   patterns over `τ_db(G)`;
//! * [`translate_pattern_u`] — `P^U_dat` (Theorem 5.3): the OWL 2 QL core
//!   direct-semantics entailment regime, obtained by routing basic graph
//!   patterns through `triple1` with active-domain guards and prepending
//!   the fixed program `τ_owl2ql_core`;
//! * [`translate_pattern_all`] — `P^All_dat` (§5.3): the same without the
//!   active-domain restriction on blank nodes.
//!
//! Unbound variables in answers (from `OPT`/`UNION`) are represented by
//! the special constant ⋆ ([`star`]); [`decode_answers`] converts answer
//! tuples back into SPARQL mappings, realizing the correspondence
//! `J(P_dat, τ_db(G))K` of §5.1.

mod answers;
mod dnf;
mod translator;

pub use answers::{decode_answers, decode_tuple, decode_tuple_vars, RegimeAnswers};
pub use dnf::compile_condition;
#[allow(deprecated)]
pub use translator::{evaluate_plain, evaluate_regime_all, evaluate_regime_u};
pub use translator::{
    regime_chase_config, star, translate_pattern, translate_pattern_all, translate_pattern_u, Mode,
    TranslatedPattern,
};
