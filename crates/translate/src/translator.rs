//! The pattern-to-program translation (§5.1–§5.3).
//!
//! Every pattern node `P'` of the input pattern is compiled to a family of
//! predicates, one per *variant* — a set `B ⊆ var(P')` of bound variables
//! (the paper's supra-indexed `query^S_{P'}` predicates, §5.1/Example
//! 5.1). A variant predicate has arity `|var(P')|`, with the special
//! constant ⋆ stored at unbound positions; only variants that can actually
//! arise are generated, so the program is exponential only in the worst
//! case, as the paper notes.

use crate::answers::{decode_answers, RegimeAnswers};
use crate::dnf::compile_condition;
use std::collections::{BTreeMap, BTreeSet};
use triq_common::{intern, Result, Symbol, Term, TriqError, VarId};
use triq_datalog::{Atom, ChaseConfig, Program, Query, Rule};
use triq_owl2ql::{tau_db, tau_owl2ql_core};
use triq_rdf::Graph;
use triq_sparql::{GraphPattern, MappingSet, PatternTerm, TriplePattern};

/// The special constant ⋆ marking unbound answer positions (§5.1).
pub fn star() -> Symbol {
    intern("~star~")
}

/// The chase configuration used by the regime evaluators: the
/// *restricted* chase, which terminates on DL-Lite_R ontologies (the
/// skolem chase ping-pongs on inverse axioms: `triple1(z1, p⁻, z2)` keeps
/// re-triggering the `∃` rule even though a witness exists). Ground
/// consequences are identical under both strategies — both compute
/// universal models — but the restricted chase needs orders of magnitude
/// fewer nulls and never hits the depth bound on regime workloads.
pub fn regime_chase_config() -> ChaseConfig {
    ChaseConfig {
        strategy: triq_datalog::ExistentialStrategy::Restricted,
        max_null_depth: 6,
        ..ChaseConfig::default()
    }
}

/// Which semantics the basic graph patterns are compiled for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Plain SPARQL over `τ_db(G)` (Theorem 5.2): BGPs match `triple`.
    Plain,
    /// The OWL 2 QL core direct-semantics entailment regime J·K^U
    /// (Theorem 5.3): BGPs match `triple1` with `adom` guards on every
    /// variable and blank node.
    RegimeU,
    /// The §5.3 semantics J·K^All: like `RegimeU` but blank nodes are not
    /// forced into the active domain.
    RegimeAll,
}

/// The result of translating a graph pattern.
#[derive(Clone, Debug)]
pub struct TranslatedPattern {
    /// The full query program (including `τ_owl2ql_core` in regime modes).
    pub program: Program,
    /// The output predicate `answer_P`.
    pub answer_pred: Symbol,
    /// `var(P)`, sorted — the argument order of `answer_P`.
    pub vars: Vec<VarId>,
    /// The compilation mode.
    pub mode: Mode,
}

impl TranslatedPattern {
    /// Wraps the translation as a Datalog query `(Π, answer_P)`.
    pub fn query(&self) -> Result<Query> {
        Query::new(self.program.clone(), self.answer_pred)
    }
}

struct NodeResult {
    /// Sorted `var(P')` of this node.
    vars: Vec<VarId>,
    /// Variant predicates by bound-set.
    variants: BTreeMap<BTreeSet<VarId>, Symbol>,
}

struct Translator {
    program: Program,
    counter: usize,
    mode: Mode,
}

impl Translator {
    fn fresh_pred(&mut self, tag: &str) -> Symbol {
        self.counter += 1;
        intern(&format!("q{}~{}", self.counter, tag))
    }

    /// Argument list of a variant predicate: bound variables in sorted
    /// `vars` order, ⋆ elsewhere.
    fn args(vars: &[VarId], bound: &BTreeSet<VarId>) -> Vec<Term> {
        vars.iter()
            .map(|v| {
                if bound.contains(v) {
                    Term::Var(*v)
                } else {
                    Term::Const(star())
                }
            })
            .collect()
    }

    fn translate(&mut self, pattern: &GraphPattern) -> Result<NodeResult> {
        match pattern {
            GraphPattern::Basic(triples) => self.translate_bgp(triples),
            GraphPattern::And(a, b) => {
                let ra = self.translate(a)?;
                let rb = self.translate(b)?;
                self.translate_and(&ra, &rb)
            }
            GraphPattern::Union(a, b) => {
                let ra = self.translate(a)?;
                let rb = self.translate(b)?;
                self.translate_union(&ra, &rb)
            }
            GraphPattern::Opt(a, b) => {
                let ra = self.translate(a)?;
                let rb = self.translate(b)?;
                self.translate_opt(&ra, &rb)
            }
            GraphPattern::Filter(p, cond) => {
                let rp = self.translate(p)?;
                self.translate_filter(&rp, cond)
            }
            GraphPattern::Select(w, p) => {
                let rp = self.translate(p)?;
                self.translate_select(&rp, w)
            }
        }
    }

    /// τ_bgp (Example 5.1 / §5.2 / §5.3): one rule, one variant (all
    /// variables bound). Blank nodes become body-only variables.
    fn translate_bgp(&mut self, triples: &[TriplePattern]) -> Result<NodeResult> {
        if triples.is_empty() {
            return Err(TriqError::InvalidProgram(
                "empty basic graph pattern cannot be translated".into(),
            ));
        }
        self.counter += 1;
        let node_id = self.counter;
        let vars: BTreeSet<VarId> = triples.iter().flat_map(TriplePattern::vars).collect();
        let vars: Vec<VarId> = vars.into_iter().collect();
        let data_pred = match self.mode {
            Mode::Plain => intern("triple"),
            Mode::RegimeU | Mode::RegimeAll => intern("triple1"),
        };
        let mut body: Vec<Atom> = Vec::with_capacity(triples.len());
        let mut blank_vars: BTreeSet<VarId> = BTreeSet::new();
        let term = |t: PatternTerm, blanks: &mut BTreeSet<VarId>| -> Term {
            match t {
                PatternTerm::Const(c) => Term::Const(c),
                PatternTerm::Var(v) => Term::Var(v),
                PatternTerm::Blank(b) => {
                    let v = VarId::new(&format!("blank~{}~{}", b.as_str(), node_id));
                    blanks.insert(v);
                    Term::Var(v)
                }
            }
        };
        for t in triples {
            let s = term(t.s, &mut blank_vars);
            let p = term(t.p, &mut blank_vars);
            let o = term(t.o, &mut blank_vars);
            body.push(Atom::new(data_pred, vec![s, p, o]));
        }
        // Active-domain guards (rule (18) of §5.2; §5.3 drops the guards
        // on blank variables).
        match self.mode {
            Mode::Plain => {}
            Mode::RegimeU => {
                for v in vars.iter().chain(blank_vars.iter()) {
                    body.push(Atom::new(intern("adom"), vec![Term::Var(*v)]));
                }
            }
            Mode::RegimeAll => {
                for v in vars.iter() {
                    body.push(Atom::new(intern("adom"), vec![Term::Var(*v)]));
                }
            }
        }
        let pred = self.fresh_pred("bgp");
        let bound: BTreeSet<VarId> = vars.iter().copied().collect();
        self.program.rules.push(Rule::plain(
            body,
            Atom::new(pred, Self::args(&vars, &bound)),
        ));
        Ok(NodeResult {
            vars,
            variants: BTreeMap::from([(bound, pred)]),
        })
    }

    /// The argument list for referencing child `r` under variant `b`.
    fn ref_args(r: &NodeResult, b: &BTreeSet<VarId>) -> Vec<Term> {
        Self::args(&r.vars, b)
    }

    fn merged_vars(a: &NodeResult, b: &NodeResult) -> Vec<VarId> {
        let set: BTreeSet<VarId> = a.vars.iter().chain(b.vars.iter()).copied().collect();
        set.into_iter().collect()
    }

    /// One join rule per variant pair: the Ω₁ ⋈ Ω₂ part of AND and OPT.
    fn push_join_rules(
        &mut self,
        ra: &NodeResult,
        rb: &NodeResult,
        vars: &[VarId],
        out: &mut BTreeMap<BTreeSet<VarId>, Symbol>,
        tag: &str,
    ) {
        let mut pending: Vec<Rule> = Vec::new();
        for (b1, &p1) in &ra.variants {
            for (b2, &p2) in &rb.variants {
                let bound: BTreeSet<VarId> = b1.union(b2).copied().collect();
                let pred = *out.entry(bound.clone()).or_insert_with(|| {
                    self.counter += 1;
                    intern(&format!("q{}~{}", self.counter, tag))
                });
                pending.push(Rule::plain(
                    vec![
                        Atom::new(p1, Self::ref_args(ra, b1)),
                        Atom::new(p2, Self::ref_args(rb, b2)),
                    ],
                    Atom::new(pred, Self::args(vars, &bound)),
                ));
            }
        }
        self.program.rules.extend(pending);
    }

    fn translate_and(&mut self, ra: &NodeResult, rb: &NodeResult) -> Result<NodeResult> {
        let vars = Self::merged_vars(ra, rb);
        let mut variants = BTreeMap::new();
        self.push_join_rules(ra, rb, &vars, &mut variants, "and");
        Ok(NodeResult { vars, variants })
    }

    fn translate_union(&mut self, ra: &NodeResult, rb: &NodeResult) -> Result<NodeResult> {
        let vars = Self::merged_vars(ra, rb);
        let mut variants: BTreeMap<BTreeSet<VarId>, Symbol> = BTreeMap::new();
        for (r, tag) in [(ra, "unionl"), (rb, "unionr")] {
            for (b, &p) in &r.variants {
                let pred = *variants.entry(b.clone()).or_insert_with(|| {
                    self.counter += 1;
                    intern(&format!("q{}~{tag}", self.counter))
                });
                self.program.rules.push(Rule::plain(
                    vec![Atom::new(p, Self::ref_args(r, b))],
                    Atom::new(pred, Self::args(&vars, b)),
                ));
            }
        }
        Ok(NodeResult { vars, variants })
    }

    /// OPT = join ∪ difference; the difference uses the `compatible`
    /// predicates of Example 5.1 (rules (11)/(12)) under stratified
    /// negation.
    fn translate_opt(&mut self, ra: &NodeResult, rb: &NodeResult) -> Result<NodeResult> {
        let vars = Self::merged_vars(ra, rb);
        let mut variants = BTreeMap::new();
        self.push_join_rules(ra, rb, &vars, &mut variants, "optjoin");
        // compat_{B1}(µ1-tuple) ← pred1, pred2 with shared bound variables
        // unified and µ2-only positions wildcarded.
        for (b1, &p1) in &ra.variants {
            let compat = self.fresh_pred("compat");
            for (b2, &p2) in &rb.variants {
                let mut fresh_counter = 0usize;
                let args2: Vec<Term> = rb
                    .vars
                    .iter()
                    .map(|v| {
                        if b2.contains(v) {
                            if b1.contains(v) {
                                Term::Var(*v)
                            } else {
                                fresh_counter += 1;
                                Term::Var(VarId::new(&format!("wild~{fresh_counter}")))
                            }
                        } else {
                            Term::Const(star())
                        }
                    })
                    .collect();
                self.program.rules.push(Rule::plain(
                    vec![Atom::new(p1, Self::ref_args(ra, b1)), Atom::new(p2, args2)],
                    Atom::new(compat, Self::ref_args(ra, b1)),
                ));
            }
            // Difference rule: µ1 with no compatible µ2 (rule (12)).
            let pred = *variants.entry(b1.clone()).or_insert_with(|| {
                self.counter += 1;
                intern(&format!("q{}~optdiff", self.counter))
            });
            self.program.rules.push(Rule {
                body_pos: vec![Atom::new(p1, Self::ref_args(ra, b1))],
                body_neg: vec![Atom::new(compat, Self::ref_args(ra, b1))],
                builtins: vec![],
                exist_vars: vec![],
                head: vec![Atom::new(pred, Self::args(&vars, b1))],
            });
        }
        Ok(NodeResult { vars, variants })
    }

    fn translate_filter(
        &mut self,
        rp: &NodeResult,
        cond: &triq_sparql::Condition,
    ) -> Result<NodeResult> {
        let mut variants: BTreeMap<BTreeSet<VarId>, Symbol> = BTreeMap::new();
        for (b, &p) in &rp.variants {
            let disjuncts = compile_condition(cond, b);
            if disjuncts.is_empty() {
                continue; // statically false for this variant
            }
            let pred = *variants.entry(b.clone()).or_insert_with(|| {
                self.counter += 1;
                intern(&format!("q{}~filter", self.counter))
            });
            for conj in disjuncts {
                self.program.rules.push(Rule {
                    body_pos: vec![Atom::new(p, Self::ref_args(rp, b))],
                    body_neg: vec![],
                    builtins: conj,
                    exist_vars: vec![],
                    head: vec![Atom::new(pred, Self::args(&rp.vars, b))],
                });
            }
        }
        Ok(NodeResult {
            vars: rp.vars.clone(),
            variants,
        })
    }

    fn translate_select(&mut self, rp: &NodeResult, w: &BTreeSet<VarId>) -> Result<NodeResult> {
        let vars: Vec<VarId> = rp.vars.iter().filter(|v| w.contains(v)).copied().collect();
        let mut variants: BTreeMap<BTreeSet<VarId>, Symbol> = BTreeMap::new();
        for (b, &p) in &rp.variants {
            let bound: BTreeSet<VarId> = b.intersection(w).copied().collect();
            let pred = *variants.entry(bound.clone()).or_insert_with(|| {
                self.counter += 1;
                intern(&format!("q{}~select", self.counter))
            });
            self.program.rules.push(Rule::plain(
                vec![Atom::new(p, Self::ref_args(rp, b))],
                Atom::new(pred, Self::args(&vars, &bound)),
            ));
        }
        Ok(NodeResult { vars, variants })
    }
}

fn translate_with_mode(pattern: &GraphPattern, mode: Mode) -> Result<TranslatedPattern> {
    pattern.validate()?;
    let mut t = Translator {
        program: match mode {
            Mode::Plain => Program::new(),
            Mode::RegimeU | Mode::RegimeAll => tau_owl2ql_core(),
        },
        counter: 0,
        mode,
    };
    let root = t.translate(pattern)?;
    // τ_out: one rule per top-level variant into answer_P.
    let answer_pred = t.fresh_pred("answer");
    for (b, &p) in &root.variants {
        t.program.rules.push(Rule::plain(
            vec![Atom::new(p, Translator::ref_args(&root, b))],
            Atom::new(answer_pred, Translator::args(&root.vars, b)),
        ));
    }
    let translated = TranslatedPattern {
        program: t.program,
        answer_pred,
        vars: root.vars,
        mode,
    };
    // Internal consistency: the program must be a valid stratified query.
    translated.query()?;
    Ok(translated)
}

/// `P_dat` (Theorem 5.2): the plain translation of a graph pattern.
pub fn translate_pattern(pattern: &GraphPattern) -> Result<TranslatedPattern> {
    translate_with_mode(pattern, Mode::Plain)
}

/// `P^U_dat` (Theorem 5.3): the translation under the OWL 2 QL core
/// direct-semantics entailment regime.
pub fn translate_pattern_u(pattern: &GraphPattern) -> Result<TranslatedPattern> {
    translate_with_mode(pattern, Mode::RegimeU)
}

/// `P^All_dat` (§5.3): the entailment regime without the active-domain
/// restriction on blank nodes.
pub fn translate_pattern_all(pattern: &GraphPattern) -> Result<TranslatedPattern> {
    translate_with_mode(pattern, Mode::RegimeAll)
}

/// Evaluates a pattern over a graph by translation + chase + decoding —
/// the right-hand side of Theorem 5.2. Must coincide with
/// [`triq_sparql::evaluate`].
#[deprecated(
    since = "0.2.0",
    note = "one-shot path that re-translates and re-stratifies per call; \
            prepare the pattern once via triq::Engine::prepare and execute \
            it against a Session"
)]
pub fn evaluate_plain(graph: &Graph, pattern: &GraphPattern) -> Result<MappingSet> {
    let translated = translate_pattern(pattern)?;
    let query = translated.query()?;
    let answers = query.evaluate_with(&tau_db(graph), ChaseConfig::default())?;
    match decode_answers(&answers, &translated) {
        RegimeAnswers::Mappings(m) => Ok(m),
        RegimeAnswers::Top => unreachable!("plain translation has no constraints"),
    }
}

/// Evaluates a pattern under J·K^U (Theorem 5.3). `⊤` is reported when the
/// graph is inconsistent w.r.t. the ontology semantics.
#[deprecated(
    since = "0.2.0",
    note = "one-shot path that re-translates and re-stratifies per call; \
            prepare the pattern once via triq::Engine::prepare and execute \
            it against a Session"
)]
pub fn evaluate_regime_u(graph: &Graph, pattern: &GraphPattern) -> Result<RegimeAnswers> {
    let translated = translate_pattern_u(pattern)?;
    let query = translated.query()?;
    let answers = query.evaluate_with(&tau_db(graph), regime_chase_config())?;
    Ok(decode_answers(&answers, &translated))
}

/// Evaluates a pattern under J·K^All (§5.3).
#[deprecated(
    since = "0.2.0",
    note = "one-shot path that re-translates and re-stratifies per call; \
            prepare the pattern once via triq::Engine::prepare and execute \
            it against a Session"
)]
pub fn evaluate_regime_all(graph: &Graph, pattern: &GraphPattern) -> Result<RegimeAnswers> {
    let translated = translate_pattern_all(pattern)?;
    let query = translated.query()?;
    let answers = query.evaluate_with(&tau_db(graph), regime_chase_config())?;
    Ok(decode_answers(&answers, &translated))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use triq_datalog::classify_program;
    use triq_rdf::parse_turtle;
    use triq_sparql::{evaluate, parse_pattern};

    fn check_equiv(graph: &Graph, pattern_src: &str) {
        let pattern = parse_pattern(pattern_src).unwrap();
        let direct = evaluate(graph, &pattern);
        let translated = evaluate_plain(graph, &pattern).unwrap();
        assert_eq!(direct, translated, "pattern {pattern_src}");
    }

    fn g2() -> Graph {
        parse_turtle(
            "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman name \"Jeffrey Ullman\" .\n\
             dbAho is_coauthor_of dbUllman .\n\
             dbAho name \"Alfred Aho\" .",
        )
        .unwrap()
    }

    #[test]
    fn theorem_5_2_on_paper_examples() {
        let g = g2();
        // Example 5.1's P1, P2 (blank), P3 (OPT), P4 (OPT-AND).
        check_equiv(&g, "{ ?X name ?Y }");
        check_equiv(&g, "{ ?X name _:B }");
        check_equiv(&g, "{ ?X name ?Y } OPTIONAL { ?X phone ?Z }");
        check_equiv(
            &g,
            "{ { ?X name ?Y } OPTIONAL { ?X phone ?Z } } AND { ?Z phone_company ?W }",
        );
        check_equiv(&g, "{ ?Y is_author_of ?Z . ?Y name ?X }");
    }

    #[test]
    fn theorem_5_2_with_opt_binding_asymmetries() {
        let g = parse_turtle(
            "a name \"Alice\" .\n\
             b name \"Bob\" .\n\
             a phone \"123\" .\n\
             \"123\" phone_company ACME .\n\
             \"999\" phone_company Globex .",
        )
        .unwrap();
        check_equiv(&g, "{ ?X name ?Y } OPTIONAL { ?X phone ?Z }");
        check_equiv(
            &g,
            "{ { ?X name ?Y } OPTIONAL { ?X phone ?Z } } AND { ?Z phone_company ?W }",
        );
        check_equiv(&g, "{ ?X name ?Y } UNION { ?X phone ?Z }");
        check_equiv(
            &g,
            "{ { ?X name ?Y } UNION { ?X phone ?Z } } OPTIONAL { ?Z phone_company ?W }",
        );
    }

    #[test]
    fn theorem_5_2_with_filters_and_select() {
        let g = g2();
        check_equiv(&g, "{ ?X name ?N } FILTER (?N = \"Alfred Aho\")");
        check_equiv(&g, "{ SELECT ?X WHERE { ?X name ?N } }");
        check_equiv(
            &g,
            "{ ?X name ?N } OPTIONAL { ?X phone ?Z } FILTER (!bound(?Z))",
        );
        check_equiv(
            &g,
            "{ ?X name ?N } OPTIONAL { ?X phone ?Z } FILTER (bound(?Z))",
        );
    }

    #[test]
    fn translations_are_triq_lite_1_0() {
        // Corollary 6.2 / Corollary 5.4: P^U_dat and P^All_dat are
        // TriQ-Lite 1.0 queries (hence TriQ 1.0 too).
        for src in [
            "{ ?X name ?Y }",
            "{ ?X name ?Y } OPTIONAL { ?X phone ?Z }",
            "{ ?X eats _:B }",
            "{ { ?A p ?B } UNION { ?A q ?B } } FILTER (?A = ?B)",
        ] {
            let pattern = parse_pattern(src).unwrap();
            for translate in [translate_pattern_u, translate_pattern_all] {
                let t = translate(&pattern).unwrap();
                let c = classify_program(&t.program);
                assert!(c.is_triq_lite_1_0(), "{src}: {:?}", c.violations);
            }
            // The plain translation is plain Datalog with negation.
            let t = translate_pattern(&pattern).unwrap();
            let c = classify_program(&t.program);
            assert!(c.plain_datalog && c.stratified);
        }
    }

    /// §5.2's running example: the pattern (?X, eats, _:B) over the animal
    /// graph — empty under J·K^U, {dog} under J·K^All.
    #[test]
    fn active_domain_vs_all_semantics() {
        use triq_owl2ql::{ontology_to_graph, Axiom, BasicClass, BasicProperty, Ontology};
        let mut o = Ontology::new();
        o.add(Axiom::ClassAssertion(
            BasicClass::Named(intern("animal")),
            intern("dog"),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("animal")),
            BasicClass::Some(BasicProperty::Named(intern("eats"))),
        ));
        let g = ontology_to_graph(&o);
        let pattern = parse_pattern("{ ?X eats _:B }").unwrap();
        let u = evaluate_regime_u(&g, &pattern).unwrap();
        assert!(
            u.mappings().unwrap().is_empty(),
            "active domain blocks the null witness"
        );
        let all = evaluate_regime_all(&g, &pattern).unwrap();
        let ms = all.mappings().unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(
            ms.iter().next().unwrap().get(VarId::new("X")),
            Some(intern("dog"))
        );
        // The workaround the paper describes for J·K^U: type the subject
        // with the restriction class.
        let workaround = parse_pattern("{ ?X rdf:type some~eats }").unwrap();
        let u2 = evaluate_regime_u(&g, &workaround).unwrap();
        assert_eq!(u2.mappings().unwrap().len(), 1);
    }

    /// §2's G3: under the regime, Aho appears in the rewritten author
    /// query via the subclass-of-restriction axiom.
    #[test]
    fn g3_restriction_reasoning() {
        let mut g = g2();
        for (s, p, o) in [
            ("r1", "rdf:type", "owl:Restriction"),
            ("r2", "rdf:type", "owl:Restriction"),
            ("r1", "owl:onProperty", "is_coauthor_of"),
            ("r2", "owl:onProperty", "is_author_of"),
            ("r1", "owl:someValuesFrom", "owl:Thing"),
            ("r2", "owl:someValuesFrom", "owl:Thing"),
            ("r1", "rdfs:subClassOf", "r2"),
        ] {
            g.insert_strs(s, p, o);
        }
        // The SPARQL 1.1 style rewritten query of §2 under J·K^U.
        let rewritten = parse_pattern(
            "{ ?Y name ?X . ?Y rdf:type ?Z . ?Z rdf:type owl:Restriction . \
               ?Z owl:onProperty is_author_of . ?Z owl:someValuesFrom owl:Thing }",
        )
        .unwrap();
        let u = evaluate_regime_u(&g, &rewritten).unwrap();
        let names: BTreeSet<Symbol> = u
            .mappings()
            .unwrap()
            .iter()
            .filter_map(|m| m.get(VarId::new("X")))
            .collect();
        assert!(names.contains(&intern("Alfred Aho")), "{names:?}");
        assert!(names.contains(&intern("Jeffrey Ullman")));
        // With J·K^All, the natural query (with a blank) suffices.
        let natural = parse_pattern("{ ?Y is_author_of _:B . ?Y name ?X }").unwrap();
        let all = evaluate_regime_all(&g, &natural).unwrap();
        let names: BTreeSet<Symbol> = all
            .mappings()
            .unwrap()
            .iter()
            .filter_map(|m| m.get(VarId::new("X")))
            .collect();
        assert!(names.contains(&intern("Alfred Aho")));
    }

    #[test]
    fn inconsistent_graph_yields_top() {
        let g = parse_turtle(
            "cat owl:disjointWith dog .\n\
             cat rdf:type owl:Class .\n\
             dog rdf:type owl:Class .\n\
             felix rdf:type cat .\n\
             felix rdf:type dog .",
        )
        .unwrap();
        let pattern = parse_pattern("{ ?X rdf:type cat }").unwrap();
        let u = evaluate_regime_u(&g, &pattern).unwrap();
        assert!(matches!(u, RegimeAnswers::Top));
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod more_tests {
    use super::*;
    use triq_rdf::parse_turtle;
    use triq_sparql::{evaluate, parse_pattern};

    fn check(graph_src: &str, pattern_src: &str) {
        let graph = parse_turtle(graph_src).unwrap();
        let pattern = parse_pattern(pattern_src).unwrap();
        let direct = evaluate(&graph, &pattern);
        let translated = evaluate_plain(&graph, &pattern).unwrap();
        assert_eq!(direct, translated, "pattern {pattern_src}");
    }

    const G: &str = "a p b .\n b p c .\n a q x .\n x r y .\n c q y .\n y r a .";

    /// Nested OPT: three levels of optional binding produce up to 2^3
    /// supra-index variants; all must decode correctly.
    #[test]
    fn deep_opt_nesting() {
        check(
            G,
            "{ { { ?A p ?B } OPTIONAL { ?B p ?C } } OPTIONAL { ?C q ?D } } \
             OPTIONAL { ?D r ?E }",
        );
    }

    /// OPT under UNION under OPT — variants flow through every operator.
    #[test]
    fn bushy_union_opt() {
        check(
            G,
            "{ { ?A p ?B } UNION { { ?A q ?B } OPTIONAL { ?B r ?C } } } \
             OPTIONAL { ?C p ?D }",
        );
    }

    /// FILTER over partially-bound variants: bound() interacts with the
    /// variant machinery (statically resolved per bound-set).
    #[test]
    fn filter_across_variants() {
        check(
            G,
            "{ { ?A p ?B } OPTIONAL { ?B q ?C } } \
             FILTER (!bound(?C) || ?C = y)",
        );
        check(
            G,
            "{ { ?A p ?B } OPTIONAL { ?B q ?C } } FILTER (bound(?C) && ?A = ?C)",
        );
    }

    /// SELECT projecting away the join variable of a later AND (the
    /// Cartesian-product phenomenon of Example 5.1's P4, but with the
    /// projection happening first).
    #[test]
    fn select_then_join() {
        check(G, "{ SELECT ?B WHERE { ?A p ?B } } AND { ?B p ?C }");
    }

    /// Empty-answer edge cases: unsatisfiable filter, empty BGP matches.
    #[test]
    fn empty_results() {
        check(G, "{ ?A p ?B } FILTER (?A = ?B)");
        check(G, "{ ?A nosuchpred ?B }");
        check(G, "{ ?A p ?B . ?B nosuchpred ?C }");
    }

    /// Zero-variable patterns: a fully-ground BGP behaves like an
    /// assertion, answering {µ∅} or ∅.
    #[test]
    fn ground_bgp() {
        check(G, "{ a p b }");
        check(G, "{ a p c }");
        check(G, "{ a p b } UNION { ?X q ?Y }");
    }

    /// Blank nodes joining across triples inside one BGP.
    #[test]
    fn blank_join_in_bgp() {
        check(G, "{ ?A p _:B . _:B q ?C }");
        check(G, "{ _:B p _:C }");
    }
}
