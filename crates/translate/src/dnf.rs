//! Compilation of SPARQL built-in conditions to Datalog builtins.
//!
//! The translation of `(P FILTER R)` fixes a *variant* of the sub-pattern,
//! i.e. a set `B` of bound variables (the supra-index machinery of §5.1).
//! Relative to `B`, every `bound(?X)` is statically true or false, and the
//! remaining (in)equalities become engine builtins; we compile `R` to a
//! disjunctive normal form, one Datalog rule per satisfiable disjunct.

use std::collections::BTreeSet;
use triq_common::{Term, VarId};
use triq_datalog::Builtin;
use triq_sparql::Condition;

/// An intermediate Boolean value: constant, or a literal.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Lit {
    True,
    False,
    B(Builtin),
}

/// Compiles `condition` under bound-set `bound` into DNF: the result is a
/// list of conjunctions of builtins; the condition holds iff some
/// conjunction holds. An empty list means statically false; a list
/// containing an empty conjunction means (that disjunct is) statically
/// true.
pub fn compile_condition(condition: &Condition, bound: &BTreeSet<VarId>) -> Vec<Vec<Builtin>> {
    dnf(condition, bound, false)
}

/// DNF of `condition` (negated if `neg`).
fn dnf(condition: &Condition, bound: &BTreeSet<VarId>, neg: bool) -> Vec<Vec<Builtin>> {
    match condition {
        Condition::Not(inner) => dnf(inner, bound, !neg),
        Condition::And(a, b) if !neg => conjoin(dnf(a, bound, false), dnf(b, bound, false)),
        Condition::And(a, b) => disjoin(dnf(a, bound, true), dnf(b, bound, true)),
        Condition::Or(a, b) if !neg => disjoin(dnf(a, bound, false), dnf(b, bound, false)),
        Condition::Or(a, b) => conjoin(dnf(a, bound, true), dnf(b, bound, true)),
        atomic => match literal(atomic, bound, neg) {
            Lit::True => vec![vec![]],
            Lit::False => vec![],
            Lit::B(b) => vec![vec![b]],
        },
    }
}

/// An atomic condition under `bound`, possibly negated. Per §3.1, an
/// atomic condition mentioning an unbound variable is false (so its
/// negation is true).
fn literal(condition: &Condition, bound: &BTreeSet<VarId>, neg: bool) -> Lit {
    let flip = |l: Lit| match (l, neg) {
        (l, false) => l,
        (Lit::True, true) => Lit::False,
        (Lit::False, true) => Lit::True,
        (Lit::B(Builtin::Eq(a, b)), true) => Lit::B(Builtin::Neq(a, b)),
        (Lit::B(Builtin::Neq(a, b)), true) => Lit::B(Builtin::Eq(a, b)),
    };
    let base = match condition {
        Condition::Bound(v) => {
            if bound.contains(v) {
                Lit::True
            } else {
                Lit::False
            }
        }
        Condition::EqConst(v, c) => {
            if bound.contains(v) {
                Lit::B(Builtin::Eq(Term::Var(*v), Term::Const(*c)))
            } else {
                Lit::False
            }
        }
        Condition::EqVar(v, w) => {
            if bound.contains(v) && bound.contains(w) {
                Lit::B(Builtin::Eq(Term::Var(*v), Term::Var(*w)))
            } else {
                Lit::False
            }
        }
        _ => unreachable!("non-atomic condition passed to literal()"),
    };
    flip(base)
}

fn conjoin(a: Vec<Vec<Builtin>>, b: Vec<Vec<Builtin>>) -> Vec<Vec<Builtin>> {
    let mut out = Vec::new();
    for x in &a {
        for y in &b {
            let mut c = x.clone();
            c.extend(y.iter().copied());
            out.push(c);
        }
    }
    out
}

fn disjoin(mut a: Vec<Vec<Builtin>>, b: Vec<Vec<Builtin>>) -> Vec<Vec<Builtin>> {
    a.extend(b);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::intern;

    fn bset(names: &[&str]) -> BTreeSet<VarId> {
        names.iter().map(|n| VarId::new(n)).collect()
    }

    #[test]
    fn bound_is_static() {
        let c = Condition::Bound(VarId::new("X"));
        assert_eq!(compile_condition(&c, &bset(&["X"])), vec![vec![]]);
        assert!(compile_condition(&c, &bset(&[])).is_empty());
        let n = Condition::Not(Box::new(c));
        assert_eq!(compile_condition(&n, &bset(&[])), vec![vec![]]);
    }

    #[test]
    fn equality_becomes_builtin() {
        let c = Condition::EqConst(VarId::new("X"), intern("a"));
        let d = compile_condition(&c, &bset(&["X"]));
        assert_eq!(
            d,
            vec![vec![Builtin::Eq(
                Term::Var(VarId::new("X")),
                Term::Const(intern("a"))
            )]]
        );
        // Unbound: statically false; negated: true.
        assert!(compile_condition(&c, &bset(&[])).is_empty());
        let neg = Condition::Not(Box::new(c));
        assert_eq!(compile_condition(&neg, &bset(&["X"])).len(), 1);
        assert_eq!(compile_condition(&neg, &bset(&[]))[0].len(), 0);
    }

    #[test]
    fn demorgan() {
        // !(X = a && Y = b) == X != a || Y != b.
        let c = Condition::Not(Box::new(Condition::And(
            Box::new(Condition::EqConst(VarId::new("X"), intern("a"))),
            Box::new(Condition::EqConst(VarId::new("Y"), intern("b"))),
        )));
        let d = compile_condition(&c, &bset(&["X", "Y"]));
        assert_eq!(d.len(), 2);
        assert!(matches!(d[0][0], Builtin::Neq(..)));
    }

    #[test]
    fn or_of_ands_expands() {
        let c = Condition::And(
            Box::new(Condition::Or(
                Box::new(Condition::EqConst(VarId::new("X"), intern("a"))),
                Box::new(Condition::EqConst(VarId::new("X"), intern("b"))),
            )),
            Box::new(Condition::EqVar(VarId::new("X"), VarId::new("Y"))),
        );
        let d = compile_condition(&c, &bset(&["X", "Y"]));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].len(), 2);
    }
}
