//! Decoding Datalog answers back into SPARQL mapping sets: the
//! correspondence `J(P_dat, τ_db(G))K = {µ_{t,P} | t ∈ P_dat(τ_db(G))}`
//! of §5.1.

use crate::translator::{star, TranslatedPattern};
use triq_common::Symbol;
use triq_datalog::Answers;
use triq_sparql::{Mapping, MappingSet};

/// Answers under an entailment regime: either ⊤ (the graph is
/// inconsistent w.r.t. the OWL 2 QL core semantics) or a set of mappings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegimeAnswers {
    /// The ontology constraints fired.
    Top,
    /// The mapping set.
    Mappings(MappingSet),
}

impl RegimeAnswers {
    /// The mappings, if consistent.
    pub fn mappings(&self) -> Option<&MappingSet> {
        match self {
            RegimeAnswers::Top => None,
            RegimeAnswers::Mappings(m) => Some(m),
        }
    }

    /// True iff the result is ⊤.
    pub fn is_top(&self) -> bool {
        matches!(self, RegimeAnswers::Top)
    }
}

/// Decodes one answer tuple into the mapping `µ_{t,P}`: positions holding
/// ⋆ are left out of the domain.
pub fn decode_tuple(tuple: &[Symbol], translated: &TranslatedPattern) -> Mapping {
    decode_tuple_vars(tuple, &translated.vars)
}

/// Like [`decode_tuple`] but taking the variable order directly (the
/// prepared-query path stores only `vars`, not the whole translation).
pub fn decode_tuple_vars(tuple: &[Symbol], vars: &[triq_common::VarId]) -> Mapping {
    debug_assert_eq!(tuple.len(), vars.len());
    Mapping::from_pairs(
        vars.iter()
            .zip(tuple.iter())
            .filter(|(_, &s)| s != star())
            .map(|(&v, &s)| (v, s)),
    )
}

/// Decodes a full answer set.
pub fn decode_answers(answers: &Answers, translated: &TranslatedPattern) -> RegimeAnswers {
    match answers {
        Answers::Top => RegimeAnswers::Top,
        Answers::Tuples(tuples) => {
            RegimeAnswers::Mappings(tuples.iter().map(|t| decode_tuple(t, translated)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::translate_pattern;
    use triq_common::{intern, VarId};
    use triq_sparql::parse_pattern;

    #[test]
    fn star_positions_are_unbound() {
        let pattern = parse_pattern("{ ?X name ?Y } OPTIONAL { ?X phone ?Z }").unwrap();
        let t = translate_pattern(&pattern).unwrap();
        assert_eq!(t.vars.len(), 3);
        let z_pos = t.vars.iter().position(|&v| v == VarId::new("Z")).unwrap();
        let mut tuple = vec![intern("a"), intern("b"), intern("c")];
        tuple[z_pos] = star();
        let m = decode_tuple(&tuple, &t);
        assert_eq!(m.len(), 2);
        assert!(m.get(VarId::new("Z")).is_none());
    }
}
