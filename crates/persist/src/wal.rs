//! The write-ahead op log: netted [`Delta`] batches appended as
//! length-prefixed, CRC-checked records *before* the in-memory apply is
//! acknowledged.
//!
//! File layout: an 8-byte magic (`TRIQWAL1`), then zero or more records
//! `[u32 len][u32 crc32][payload]` (both little-endian), where `payload`
//! is `varint pre_version` followed by the delta encoding of
//! `triq_common::codec::encode_delta`. `pre_version` is the op-log
//! version *before* the batch applies — the post-apply version is not
//! knowable until the apply runs (redundant operations do not advance
//! it), and recovery re-derives it deterministically by replaying.
//!
//! A torn or bit-flipped tail (crash mid-write) is detected by the
//! length/CRC frame and **truncated, not fatal**: recovery keeps every
//! record up to the first invalid one. Everything after a bad record is
//! unreachable (record boundaries are gone) and is discarded with it.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use triq_common::codec::{crc32, decode_delta, encode_delta, Decoder, Encoder};
use triq_common::{Delta, Result, TriqError};
use triq_obs::{Phase, Recorder, Timer};

use crate::io_err;

/// Magic prefix of a WAL file (8 bytes, version-bearing).
pub const WAL_MAGIC: &[u8; 8] = b"TRIQWAL1";

/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.triq";

/// Upper bound on a single record's payload (64 MiB) — a corrupt length
/// prefix must not drive a giant allocation.
const MAX_RECORD_LEN: u32 = 64 << 20;

/// When to `fsync` the WAL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every appended batch (durable to the last
    /// acknowledged write; the default).
    #[default]
    PerBatch,
    /// Sync at most once per interval (bounded data loss window).
    Interval(Duration),
    /// Never sync explicitly (the OS flushes on its own schedule).
    Off,
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::PerBatch => write!(f, "per-batch"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

impl FromStr for FsyncPolicy {
    type Err = TriqError;

    /// Parses `per-batch`, `off`, or `interval:<ms>`.
    fn from_str(s: &str) -> Result<FsyncPolicy> {
        match s {
            "per-batch" => Ok(FsyncPolicy::PerBatch),
            "off" => Ok(FsyncPolicy::Off),
            _ => {
                let ms = s
                    .strip_prefix("interval:")
                    .and_then(|ms| ms.parse::<u64>().ok())
                    .ok_or_else(|| {
                        TriqError::Persist(format!(
                            "bad fsync policy {s:?} (expected per-batch, off, or interval:<ms>)"
                        ))
                    })?;
                Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }
}

/// One recovered WAL record: the pre-apply version and the netted batch.
#[derive(Debug)]
pub struct WalRecord {
    /// Op-log version the session was at when the batch was appended.
    pub pre_version: u64,
    /// The netted mutation batch.
    pub delta: Delta,
}

/// An open write-ahead log, positioned at its end for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Current file length (magic + valid records).
    len: u64,
    /// Records appended since the log was last truncated (not counting
    /// the ones recovered at open).
    appended: u64,
    /// Set when a failed append could not be rolled back: the file may
    /// hold a torn frame, and anything appended after it would be
    /// unreachable to recovery (scan stops at the first bad frame).
    /// Refusing further appends beats acknowledging writes that a
    /// restart would silently drop.
    poisoned: bool,
    /// Telemetry sink for fsync latency (a no-op unless the owning
    /// engine installed a live recorder).
    rec: Arc<dyn Recorder>,
    /// Test hook: make the next append write only this many frame
    /// bytes and then fail, as a crash or ENOSPC mid-`write_all` would.
    #[cfg(test)]
    fail_append_after: Option<usize>,
}

impl Wal {
    /// Opens (or creates) the WAL in `dir` and scans existing records.
    /// A torn or corrupt tail is truncated in place; the records before
    /// it are returned for replay.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<(Wal, Vec<WalRecord>)> {
        let path = dir.join(WAL_FILE);
        let fresh = !path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open WAL", &path, &e))?;
        if fresh {
            file.write_all(WAL_MAGIC)
                .and_then(|()| file.sync_all())
                .map_err(|e| io_err("initialize WAL", &path, &e))?;
            // The file's directory entry must survive a crash too:
            // fsync the directory that now names it.
            File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| io_err("fsync data dir", dir, &e))?;
        }
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_to_end(&mut bytes))
            .map_err(|e| io_err("read WAL", &path, &e))?;
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(TriqError::Persist(format!(
                "{} is not a TriQ WAL (bad magic)",
                path.display()
            )));
        }
        let (records, valid_len) = scan(&bytes[WAL_MAGIC.len()..]);
        let valid_len = (WAL_MAGIC.len() + valid_len) as u64;
        if valid_len < bytes.len() as u64 {
            file.set_len(valid_len)
                .and_then(|()| file.sync_all())
                .map_err(|e| io_err("truncate torn WAL tail", &path, &e))?;
        }
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| io_err("seek WAL end", &path, &e))?;
        Ok((
            Wal {
                file,
                path,
                policy,
                last_sync: Instant::now(),
                len: valid_len,
                appended: 0,
                poisoned: false,
                rec: Arc::new(triq_obs::Noop),
                #[cfg(test)]
                fail_append_after: None,
            },
            records,
        ))
    }

    /// Appends one netted batch recorded at `pre_version` and applies
    /// the fsync policy. Returns the number of bytes written. On `Ok`,
    /// the record is in the file (and, under [`FsyncPolicy::PerBatch`],
    /// durable) — callers acknowledge the write only after this returns.
    ///
    /// On `Err` the record is **not** in the file: a partially written
    /// frame (ENOSPC mid-`write_all`) or a frame whose fsync failed is
    /// cut back off before returning, so the rejected batch is never
    /// replayed at recovery and later successful appends extend the
    /// valid prefix instead of landing unreachable behind a torn frame.
    /// If that rollback itself fails the log is poisoned and refuses
    /// all further appends.
    pub fn append(&mut self, pre_version: u64, delta: &Delta) -> Result<u64> {
        if self.poisoned {
            return Err(TriqError::Persist(format!(
                "WAL is poisoned after an append failure could not be rolled back ({}); \
                 refusing further appends",
                self.path.display()
            )));
        }
        let mut payload = Encoder::new();
        payload.varint(pre_version);
        encode_delta(&mut payload, delta);
        let payload = payload.into_bytes();
        let mut frame = Encoder::new();
        frame.u32_fixed(payload.len() as u32);
        frame.u32_fixed(crc32(&payload));
        frame.raw(&payload);
        let frame = frame.into_bytes();
        if let Err(e) = self.write_frame(&frame) {
            return Err(self.rollback_append(e));
        }
        self.len += frame.len() as u64;
        self.appended += 1;
        Ok(frame.len() as u64)
    }

    /// Writes one framed record and applies the fsync policy.
    fn write_frame(&mut self, frame: &[u8]) -> Result<()> {
        #[cfg(test)]
        if let Some(n) = self.fail_append_after.take() {
            let n = n.min(frame.len());
            let _ = self.file.write_all(&frame[..n]);
            return Err(TriqError::Persist(format!(
                "append WAL record ({}): injected failure after {n} bytes",
                self.path.display()
            )));
        }
        self.file
            .write_all(frame)
            .map_err(|e| io_err("append WAL record", &self.path, &e))?;
        match self.policy {
            FsyncPolicy::PerBatch => self.sync(),
            FsyncPolicy::Interval(every) if self.last_sync.elapsed() >= every => self.sync(),
            FsyncPolicy::Interval(_) | FsyncPolicy::Off => Ok(()),
        }
    }

    /// Restores the valid-prefix invariant after a failed append:
    /// truncate the (possibly torn) frame back off, return the cursor
    /// to the old end, and make the repair durable. On success the
    /// original error is returned and the log stays usable; if the
    /// repair fails the log is poisoned.
    fn rollback_append(&mut self, cause: TriqError) -> TriqError {
        let repaired = self
            .file
            .set_len(self.len)
            .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()))
            .and_then(|()| self.file.sync_all());
        match repaired {
            Ok(()) => cause,
            Err(e) => {
                self.poisoned = true;
                TriqError::Persist(format!(
                    "{cause}; rolling the torn frame back also failed \
                     ({e}) — WAL poisoned, refusing further appends"
                ))
            }
        }
    }

    /// Installs the recorder that fsync latency is reported to.
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.rec = rec;
    }

    /// Forces the log to stable storage now.
    pub fn sync(&mut self) -> Result<()> {
        let _t = Timer::start(&*self.rec, Phase::WalFsync);
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync WAL", &self.path, &e))?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Discards every record (after a checkpoint has made them
    /// redundant), leaving just the magic. Correct only under the
    /// single-writer contract: the caller serializes appends and
    /// checkpoints on one thread, so every record present here has
    /// already been folded into the checkpointed state.
    pub fn truncate(&mut self) -> Result<()> {
        let keep = WAL_MAGIC.len() as u64;
        self.file
            .set_len(keep)
            .and_then(|()| self.file.seek(SeekFrom::Start(keep)).map(|_| ()))
            .and_then(|()| self.file.sync_all())
            .map_err(|e| io_err("truncate WAL", &self.path, &e))?;
        self.len = keep;
        self.appended = 0;
        Ok(())
    }

    /// Current file length in bytes (magic included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records appended since the last truncation.
    pub fn appended_records(&self) -> u64 {
        self.appended
    }
}

/// Scans the record region of a WAL. Returns the valid records and the
/// byte length of the valid prefix; scanning stops at the first torn or
/// corrupt frame.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break;
        }
        let body_start = offset + 8;
        let Some(body_end) = body_start.checked_add(len as usize) else {
            break;
        };
        if body_end > bytes.len() {
            break; // torn tail: the record was never fully written
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            break; // bit rot or a torn rewrite: stop here
        }
        let mut dec = Decoder::new(payload);
        let Ok(pre_version) = dec.varint() else { break };
        let Ok(delta) = decode_delta(&mut dec) else {
            break;
        };
        if !dec.is_exhausted() {
            break;
        }
        records.push(WalRecord { pre_version, delta });
        offset = body_end;
    }
    (records, offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("triq-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn delta(n: u32) -> Delta {
        Delta::new().insert("e", &[&format!("a{n}"), &format!("b{n}")])
    }

    #[test]
    fn append_and_reload_round_trips() {
        let dir = tmpdir("round");
        let (mut wal, records) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        assert!(records.is_empty());
        for v in 0..5u64 {
            wal.append(v, &delta(v as u32)).unwrap();
        }
        drop(wal);
        let (wal, records) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(records.len(), 5);
        for (v, r) in records.iter().enumerate() {
            assert_eq!(r.pre_version, v as u64);
            assert_eq!(r.delta, delta(v as u32));
        }
        assert!(wal.len_bytes() > WAL_MAGIC.len() as u64);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        wal.append(0, &delta(0)).unwrap();
        wal.append(1, &delta(1)).unwrap();
        let full = wal.len_bytes();
        drop(wal);
        // Chop mid-record, as a crash during the second append would.
        let path = dir.join(WAL_FILE);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let (wal, records) = Wal::open(&dir, FsyncPolicy::PerBatch).unwrap();
        assert_eq!(records.len(), 1, "only the intact record survives");
        assert_eq!(records[0].pre_version, 0);
        // The file itself was repaired: reopening finds a clean end.
        let repaired = wal.len_bytes();
        drop(wal);
        let (mut wal, records) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(wal.len_bytes(), repaired);
        // And appending after repair extends the valid prefix.
        wal.append(1, &delta(1)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn bit_flip_invalidates_the_suffix() {
        let dir = tmpdir("flip");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        let first = wal.append(0, &delta(0)).unwrap();
        wal.append(1, &delta(1)).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit in the FIRST record: both records die
        // (the suffix after a corrupt frame is unreachable).
        let idx = WAL_MAGIC.len() + 8 + (first as usize - 8) / 2;
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn failed_append_rolls_back_and_later_appends_survive() {
        let dir = tmpdir("rollback");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::PerBatch).unwrap();
        wal.append(0, &delta(0)).unwrap();
        let len = wal.len_bytes();
        // A torn write mid-frame, as ENOSPC would leave it.
        wal.fail_append_after = Some(5);
        assert!(wal.append(1, &delta(1)).is_err());
        assert_eq!(wal.len_bytes(), len, "failed frame must be cut back off");
        let on_disk = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(on_disk, len, "no torn bytes left in the file");
        // Later appends land on the valid prefix and are recoverable —
        // without the rollback they would sit unreachable behind the
        // torn frame and recovery would silently drop them.
        wal.append(1, &delta(1)).unwrap();
        wal.append(2, &delta(2)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1].pre_version, 1);
        assert_eq!(records[2].pre_version, 2);
        assert_eq!(records[2].delta, delta(2));
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = tmpdir("foreign");
        std::fs::write(dir.join(WAL_FILE), b"definitely not a wal").unwrap();
        let err = Wal::open(&dir, FsyncPolicy::Off).unwrap_err();
        assert_eq!(err.code(), "E-PERSIST");
    }

    #[test]
    fn truncate_resets_to_magic() {
        let dir = tmpdir("reset");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        wal.append(0, &delta(0)).unwrap();
        assert_eq!(wal.appended_records(), 1);
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), WAL_MAGIC.len() as u64);
        assert_eq!(wal.appended_records(), 0);
        wal.append(7, &delta(7)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].pre_version, 7);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "per-batch".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::PerBatch
        );
        assert_eq!("off".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Off);
        assert_eq!(
            "interval:250".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert!("interval:x".parse::<FsyncPolicy>().is_err());
    }
}
