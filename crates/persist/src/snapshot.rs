//! Snapshot checkpoints: whole-session state written atomically.
//!
//! A snapshot file is `snap-<version, zero-padded to 20 digits>.triq`
//! containing `[8-byte magic "TRIQSNP1"][u64 version][u32 crc32 of
//! body][u64 body length][body]` (integers little-endian); the body is
//! the session encoding of `triq::persist::encode_snapshot`. Writes go
//! to a `.tmp` sibling first, are fsynced, then renamed into place and
//! the directory fsynced — a crash at any point leaves either the old
//! set of snapshots or the old set plus one complete new file, never a
//! half-written snapshot under the real name.
//!
//! Loading walks snapshots newest-first and skips invalid ones (bad
//! magic, CRC mismatch, truncation): an older intact snapshot plus a
//! longer WAL replay beats refusing to start.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use triq_common::codec::crc32;
use triq_common::{Result, TriqError};

use crate::io_err;

/// Magic prefix of a snapshot file (8 bytes, version-bearing).
pub const SNAP_MAGIC: &[u8; 8] = b"TRIQSNP1";

const HEADER_LEN: usize = 8 + 8 + 4 + 8;

/// Manages the `snap-*.triq` files of one data directory.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// A store over `dir` (created if missing).
    pub fn new(dir: &Path) -> Result<SnapshotStore> {
        fs::create_dir_all(dir).map_err(|e| io_err("create data dir", dir, &e))?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
        })
    }

    fn file_name(version: u64) -> String {
        format!("snap-{version:020}.triq")
    }

    /// Writes a snapshot for `version` atomically (tmp + fsync + rename
    /// + dir fsync). Returns the final path.
    pub fn write(&self, version: u64, body: &[u8]) -> Result<PathBuf> {
        let final_path = self.dir.join(Self::file_name(version));
        let tmp_path = self.dir.join(format!("{}.tmp", Self::file_name(version)));
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(SNAP_MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        header.extend_from_slice(&crc32(body).to_le_bytes());
        header.extend_from_slice(&(body.len() as u64).to_le_bytes());
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| io_err("create snapshot tmp", &tmp_path, &e))?;
        tmp.write_all(&header)
            .and_then(|()| tmp.write_all(body))
            .and_then(|()| tmp.sync_all())
            .map_err(|e| io_err("write snapshot", &tmp_path, &e))?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| io_err("publish snapshot", &final_path, &e))?;
        // Make the rename itself durable. A failure here means the
        // publish may not survive a crash — it must surface, because
        // the caller is about to truncate the WAL that still covers
        // this state.
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("fsync data dir", &self.dir, &e))?;
        Ok(final_path)
    }

    /// Re-reads and fully validates (magic, version, length, CRC) the
    /// published snapshot for `version`. Called after [`Self::write`],
    /// before the WAL covering the same state is truncated.
    pub fn verify(&self, version: u64) -> Result<()> {
        read_snapshot(&self.dir.join(Self::file_name(version)), version).map(|_| ())
    }

    /// The newest snapshot version *named* in the directory, valid or
    /// not. Recovery compares it against the version it actually
    /// loaded: a newer named snapshot that failed validation means the
    /// WAL records needed to roll an older snapshot forward were
    /// already truncated.
    pub fn newest_named_version(&self) -> Result<Option<u64>> {
        Ok(self.versions()?.into_iter().next())
    }

    /// All snapshot versions present (valid or not), descending.
    fn versions(&self) -> Result<Vec<u64>> {
        let mut versions = Vec::new();
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err("list data dir", &self.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list data dir", &self.dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(v) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".triq"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                versions.push(v);
            }
        }
        versions.sort_unstable_by(|a, b| b.cmp(a));
        Ok(versions)
    }

    /// Loads the newest *valid* snapshot: `(version, body)`, or `None`
    /// when no usable snapshot exists. Invalid files are skipped (with a
    /// note on stderr), not fatal — recovery falls back to the next
    /// older one.
    pub fn load_newest(&self) -> Result<Option<(u64, Vec<u8>)>> {
        for version in self.versions()? {
            let path = self.dir.join(Self::file_name(version));
            match read_snapshot(&path, version) {
                Ok(body) => return Ok(Some((version, body))),
                Err(e) => {
                    eprintln!("triq-persist: skipping {}: {e}", path.display());
                }
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` snapshot files, plus any
    /// leftover `.tmp` files from interrupted writes.
    pub fn prune(&self, keep: usize) -> Result<()> {
        for version in self.versions()?.into_iter().skip(keep) {
            let _ = fs::remove_file(self.dir.join(Self::file_name(version)));
        }
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }
}

/// Reads and fully validates one snapshot file.
fn read_snapshot(path: &Path, expect_version: u64) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read snapshot", path, &e))?;
    let corrupt = |msg: &str| TriqError::Persist(format!("corrupt snapshot file: {msg}"));
    if bytes.len() < HEADER_LEN {
        return Err(corrupt("truncated header"));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if version != expect_version {
        return Err(corrupt("version does not match file name"));
    }
    let crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[20..28].try_into().unwrap()) as usize;
    let body = &bytes[HEADER_LEN..];
    if body.len() != len {
        return Err(corrupt("body length mismatch"));
    }
    if crc32(body) != crc {
        return Err(corrupt("CRC mismatch"));
    }
    Ok(body.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("triq-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_newest() {
        let dir = tmpdir("basic");
        let store = SnapshotStore::new(&dir).unwrap();
        store.write(3, b"three").unwrap();
        store.write(10, b"ten").unwrap();
        let (v, body) = store.load_newest().unwrap().unwrap();
        assert_eq!((v, body.as_slice()), (10, b"ten".as_slice()));
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmpdir("fallback");
        let store = SnapshotStore::new(&dir).unwrap();
        store.write(1, b"one").unwrap();
        let newest = store.write(2, b"two").unwrap();
        // Flip a body bit in the newest file.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (v, body) = store.load_newest().unwrap().unwrap();
        assert_eq!((v, body.as_slice()), (1, b"one".as_slice()));
    }

    #[test]
    fn empty_dir_loads_none() {
        let dir = tmpdir("empty");
        let store = SnapshotStore::new(&dir).unwrap();
        assert!(store.load_newest().unwrap().is_none());
    }

    #[test]
    fn prune_keeps_newest_and_clears_tmps() {
        let dir = tmpdir("prune");
        let store = SnapshotStore::new(&dir).unwrap();
        for v in 1..=4u64 {
            store.write(v, b"x").unwrap();
        }
        fs::write(dir.join("snap-5.triq.tmp"), b"partial").unwrap();
        store.prune(2).unwrap();
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![SnapshotStore::file_name(3), SnapshotStore::file_name(4),]
        );
    }
}
