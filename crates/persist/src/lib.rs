//! # triq-persist — durability for TriQ sessions
//!
//! Crash safety for the serving layer, in three parts:
//!
//! * a **write-ahead op log** ([`Wal`]): every netted [`Delta`] batch is
//!   appended as a CRC-framed record *before* the in-memory apply is
//!   acknowledged (fsync policy: per batch, interval, or off);
//! * **snapshot checkpoints** ([`SnapshotStore`]): the exact session
//!   state — interner, columnar database, every maintained view's
//!   instance and skolem memo — written atomically (tmp + fsync +
//!   rename) on a policy of every N ops / M bytes of WAL, after which
//!   the WAL is truncated;
//! * **recovery** ([`Persistence::open`]): load the newest valid
//!   snapshot, replay the WAL tail through the engine's incremental
//!   apply path (torn or corrupt tails are truncated, not fatal), and
//!   hand back a [`SharedSession`] at the **exact pre-crash version**
//!   with byte-identical answers — no re-chase.
//!
//! The handle assumes the server's single-writer discipline: one thread
//! interleaves [`Persistence::append`] → [`SharedSession::apply`] →
//! [`Persistence::maybe_checkpoint`]. Under that ordering every WAL
//! record present at checkpoint time is already folded into the
//! checkpointed state, which is what makes the post-checkpoint WAL
//! truncation safe.
//!
//! See the "Durability" section of `docs/ARCHITECTURE.md` for the file
//! formats and the recovery protocol.

#![warn(missing_docs)]

use std::io;
use std::path::Path;

use triq::api::{Engine, SharedSession};
use triq_common::{Delta, Result, TriqError};

mod snapshot;
mod wal;

pub use snapshot::{SnapshotStore, SNAP_MAGIC};
pub use wal::{FsyncPolicy, Wal, WalRecord, WAL_FILE, WAL_MAGIC};

pub(crate) fn io_err(what: &str, path: &Path, e: &io::Error) -> TriqError {
    TriqError::Persist(format!("{what} ({}): {e}", path.display()))
}

/// Tuning for the durability layer.
#[derive(Clone, Copy, Debug)]
pub struct PersistConfig {
    /// When to fsync the WAL (default: per batch).
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL records (default 4096).
    pub checkpoint_ops: u64,
    /// …or after this many bytes of WAL, whichever comes first
    /// (default 16 MiB).
    pub checkpoint_bytes: u64,
    /// Snapshot files retained after a checkpoint (default 2: the new
    /// one plus one fallback).
    pub keep_snapshots: usize,
}

impl Default for PersistConfig {
    fn default() -> PersistConfig {
        PersistConfig {
            fsync: FsyncPolicy::PerBatch,
            checkpoint_ops: 4096,
            checkpoint_bytes: 16 << 20,
            keep_snapshots: 2,
        }
    }
}

/// What recovery did, for operator-facing startup logs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Version of the snapshot the session was rebuilt from.
    pub snapshot_version: u64,
    /// WAL records replayed on top of it.
    pub replayed_records: u64,
    /// The recovered op-log version — exactly the last acknowledged
    /// pre-crash version.
    pub recovered_version: u64,
}

/// The result of [`Persistence::open`].
#[derive(Debug)]
pub struct Opened {
    /// The durability handle for the running server.
    pub persistence: Persistence,
    /// The recovered session, when the data directory held state.
    /// `None` on a fresh directory — the caller builds its initial
    /// session and should [`Persistence::checkpoint`] it before
    /// serving, so a crash before the first mutation still recovers.
    pub session: Option<SharedSession>,
    /// Recovery details (present iff `session` is).
    pub recovery: Option<RecoveryStats>,
}

/// The durability handle of one data directory: owns the WAL and the
/// snapshot store, tracks the checkpoint policy.
#[derive(Debug)]
pub struct Persistence {
    wal: Wal,
    store: SnapshotStore,
    config: PersistConfig,
    last_checkpoint_version: u64,
}

impl Persistence {
    /// Opens a data directory and recovers whatever state it holds.
    ///
    /// * Fresh (or empty) directory → `session: None`; the caller
    ///   builds the initial state and checkpoints it.
    /// * Snapshot present → decode it, replay the WAL tail through the
    ///   incremental apply path, return the session at the exact
    ///   pre-crash version.
    /// * WAL records but **no** usable snapshot → `E-PERSIST`: the base
    ///   state the records build on is gone, silently starting empty
    ///   would lose acknowledged writes.
    ///
    /// Torn or corrupt WAL tails are truncated in place; invalid
    /// snapshot files are skipped in favor of the next older one.
    pub fn open(dir: &Path, config: PersistConfig, engine: &Engine) -> Result<Opened> {
        let store = SnapshotStore::new(dir)?;
        let (wal, records) = Wal::open(dir, config.fsync)?;
        let snapshot = store.load_newest()?;
        let mut persistence = Persistence {
            wal,
            store,
            config,
            last_checkpoint_version: 0,
        };
        let Some((snap_version, body)) = snapshot else {
            if !records.is_empty() {
                return Err(TriqError::Persist(format!(
                    "{} holds {} WAL record(s) but no usable snapshot — refusing to drop \
                     acknowledged writes (restore a snapshot file or clear the directory)",
                    dir.display(),
                    records.len()
                )));
            }
            return Ok(Opened {
                persistence,
                session: None,
                recovery: None,
            });
        };
        persistence.last_checkpoint_version = snap_version;
        let mut session = triq::persist::decode_snapshot(engine, &body)?;
        let mut replayed = 0u64;
        for record in &records {
            if record.pre_version < snap_version {
                continue; // already folded into the snapshot
            }
            if session.version() != record.pre_version {
                return Err(TriqError::Persist(format!(
                    "WAL replay diverged: record expects version {}, session is at {} \
                     (snapshot {})",
                    record.pre_version,
                    session.version(),
                    snap_version
                )));
            }
            session.apply_delta(&record.delta);
            replayed += 1;
        }
        engine.record_recovery_replayed(replayed);
        let recovery = RecoveryStats {
            snapshot_version: snap_version,
            replayed_records: replayed,
            recovered_version: session.version(),
        };
        Ok(Opened {
            persistence,
            session: Some(session.into_shared()),
            recovery: Some(recovery),
        })
    }

    /// Logs one netted batch at `pre_version` (the session version
    /// *before* it applies). Call before [`SharedSession::apply`]; on
    /// `Err` do **not** apply — the write is not durable and must be
    /// rejected. Ticks the engine's `wal_records` / `wal_bytes`
    /// counters.
    pub fn append(&mut self, pre_version: u64, delta: &Delta, engine: &Engine) -> Result<()> {
        let bytes = self.wal.append(pre_version, delta)?;
        engine.record_wal_append(bytes);
        Ok(())
    }

    /// Whether the checkpoint policy says it is time (WAL records or
    /// bytes over budget).
    pub fn should_checkpoint(&self) -> bool {
        self.wal.appended_records() >= self.config.checkpoint_ops
            || self.wal.len_bytes() >= self.config.checkpoint_bytes
    }

    /// Checkpoints when the policy calls for it; returns the
    /// checkpointed version, if one was taken.
    pub fn maybe_checkpoint(&mut self, shared: &SharedSession) -> Result<Option<u64>> {
        if !self.should_checkpoint() {
            return Ok(None);
        }
        self.checkpoint(shared).map(Some)
    }

    /// Takes a checkpoint now: encodes the exact current session state
    /// under the writer lock, writes it atomically, prunes old
    /// snapshots and truncates the WAL. Returns the checkpointed
    /// version and ticks the engine's `snapshots_written` /
    /// `last_checkpoint_version` counters.
    pub fn checkpoint(&mut self, shared: &SharedSession) -> Result<u64> {
        let (body, version) = triq::persist::encode_snapshot(shared);
        self.store.write(version, &body)?;
        self.store.prune(self.config.keep_snapshots.max(1))?;
        self.wal.truncate()?;
        self.last_checkpoint_version = version;
        shared.engine().record_checkpoint(version);
        Ok(version)
    }

    /// The version of the most recent checkpoint (0 before the first).
    pub fn last_checkpoint_version(&self) -> u64 {
        self.last_checkpoint_version
    }

    /// Current WAL length in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use triq::api::Datalog;

    const TC: &str = "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                      t(?X, ?Y) -> out(?X, ?Y).";

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("triq-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn edge(n: u32) -> Delta {
        Delta::new().insert("e", &[&format!("n{n}"), &format!("n{}", n + 1)])
    }

    /// The single-writer protocol, as the server's writer thread runs it.
    fn durable_apply(p: &mut Persistence, shared: &SharedSession, delta: &Delta) {
        p.append(shared.version(), delta, shared.engine()).unwrap();
        shared.apply(delta);
        p.maybe_checkpoint(shared).unwrap();
    }

    #[test]
    fn fresh_open_then_recover_exact_version() {
        let dir = tmpdir("recover");
        let engine = Engine::new();
        let q = engine.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine).unwrap();
        assert!(opened.session.is_none());
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap();
        for n in 0..6 {
            durable_apply(&mut p, &shared, &edge(n));
        }
        let answers = shared.execute(&q).unwrap();
        let version = shared.version();
        drop((p, shared)); // "crash": nothing flushed beyond the WAL

        let engine2 = Engine::new();
        let q2 = engine2.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine2).unwrap();
        let recovered = opened.session.expect("state must recover");
        let stats = opened.recovery.unwrap();
        assert_eq!(stats.recovered_version, version);
        assert_eq!(recovered.version(), version);
        assert_eq!(recovered.execute(&q2).unwrap().tuples(), answers.tuples());
        assert_eq!(
            engine2.stats().recovery_replayed_ops,
            stats.replayed_records
        );
    }

    #[test]
    fn checkpoint_policy_truncates_wal_and_recovery_skips_replay() {
        let dir = tmpdir("policy");
        let engine = Engine::new();
        let config = PersistConfig {
            checkpoint_ops: 3,
            ..PersistConfig::default()
        };
        let opened = Persistence::open(&dir, config, &engine).unwrap();
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap();
        for n in 0..3 {
            durable_apply(&mut p, &shared, &edge(n));
        }
        // Third append crossed the policy: WAL is empty again.
        assert_eq!(p.wal_len_bytes(), WAL_MAGIC.len() as u64);
        assert_eq!(p.last_checkpoint_version(), shared.version());
        assert!(engine.stats().snapshots_written >= 2);
        assert_eq!(engine.stats().last_checkpoint_version, shared.version());
        drop((p, shared));

        let engine2 = Engine::new();
        let opened = Persistence::open(&dir, config, &engine2).unwrap();
        let stats = opened.recovery.unwrap();
        assert_eq!(stats.replayed_records, 0, "checkpoint made the WAL empty");
        assert_eq!(opened.session.unwrap().version(), 3);
    }

    #[test]
    fn wal_without_snapshot_is_refused() {
        let dir = tmpdir("orphan-wal");
        std::fs::create_dir_all(&dir).unwrap();
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        wal.append(0, &edge(0)).unwrap();
        drop(wal);
        let engine = Engine::new();
        let err = Persistence::open(&dir, PersistConfig::default(), &engine).unwrap_err();
        assert_eq!(err.code(), "E-PERSIST");
    }

    #[test]
    fn deletes_and_redundant_ops_replay_deterministically() {
        let dir = tmpdir("deletes");
        let engine = Engine::new();
        let q = engine.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine).unwrap();
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap();
        durable_apply(&mut p, &shared, &edge(0));
        durable_apply(&mut p, &shared, &edge(1));
        // A redundant insert (version must not advance) and a delete.
        durable_apply(&mut p, &shared, &edge(1));
        durable_apply(&mut p, &shared, &Delta::new().delete("e", &["n0", "n1"]));
        let answers = shared.execute(&q).unwrap();
        let version = shared.version();
        assert_eq!(version, 3, "redundant insert did not advance the version");
        drop((p, shared));

        let engine2 = Engine::new();
        let q2 = engine2.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine2).unwrap();
        let recovered = opened.session.unwrap();
        assert_eq!(recovered.version(), version);
        assert_eq!(recovered.execute(&q2).unwrap().tuples(), answers.tuples());
    }
}
