//! # triq-persist — durability for TriQ sessions
//!
//! Crash safety for the serving layer, in three parts:
//!
//! * a **write-ahead op log** ([`Wal`]): every netted [`Delta`] batch is
//!   appended as a CRC-framed record *before* the in-memory apply is
//!   acknowledged (fsync policy: per batch, interval, or off);
//! * **snapshot checkpoints** ([`SnapshotStore`]): the exact session
//!   state — interner, columnar database, every maintained view's
//!   instance and skolem memo — written atomically (tmp + fsync +
//!   rename) on a policy of every N ops / M bytes of WAL, after which
//!   the WAL is truncated;
//! * **recovery** ([`Persistence::open`]): load the newest valid
//!   snapshot, replay the WAL tail through the engine's incremental
//!   apply path (torn or corrupt tails are truncated, not fatal), and
//!   hand back a [`SharedSession`] at the **exact pre-crash version**
//!   with byte-identical answers — no re-chase.
//!
//! The handle assumes the server's single-writer discipline: one thread
//! interleaves [`Persistence::append`] → [`SharedSession::apply`] →
//! [`Persistence::maybe_checkpoint`]. Under that ordering every WAL
//! record present at checkpoint time is already folded into the
//! checkpointed state, which is what makes the post-checkpoint WAL
//! truncation safe.
//!
//! See the "Durability" section of `docs/ARCHITECTURE.md` for the file
//! formats and the recovery protocol.

#![warn(missing_docs)]

use std::io;
use std::path::Path;

use triq::api::{Engine, SharedSession};
use triq_common::{Delta, Result, TriqError};

mod snapshot;
mod wal;

pub use snapshot::{SnapshotStore, SNAP_MAGIC};
pub use wal::{FsyncPolicy, Wal, WalRecord, WAL_FILE, WAL_MAGIC};

pub(crate) fn io_err(what: &str, path: &Path, e: &io::Error) -> TriqError {
    TriqError::Persist(format!("{what} ({}): {e}", path.display()))
}

/// Tuning for the durability layer.
#[derive(Clone, Copy, Debug)]
pub struct PersistConfig {
    /// When to fsync the WAL (default: per batch).
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL records (default 4096).
    pub checkpoint_ops: u64,
    /// …or after this many bytes of WAL, whichever comes first
    /// (default 16 MiB).
    pub checkpoint_bytes: u64,
    /// Snapshot files retained after a checkpoint (default 2: the new
    /// one plus one fallback).
    pub keep_snapshots: usize,
}

impl Default for PersistConfig {
    fn default() -> PersistConfig {
        PersistConfig {
            fsync: FsyncPolicy::PerBatch,
            checkpoint_ops: 4096,
            checkpoint_bytes: 16 << 20,
            keep_snapshots: 2,
        }
    }
}

/// What recovery did, for operator-facing startup logs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Version of the snapshot the session was rebuilt from.
    pub snapshot_version: u64,
    /// WAL records replayed on top of it.
    pub replayed_records: u64,
    /// The recovered op-log version — exactly the last acknowledged
    /// pre-crash version.
    pub recovered_version: u64,
}

/// The result of [`Persistence::open`].
#[derive(Debug)]
pub struct Opened {
    /// The durability handle for the running server.
    pub persistence: Persistence,
    /// The recovered session, when the data directory held state.
    /// `None` on a fresh directory — the caller builds its initial
    /// session and should [`Persistence::checkpoint`] it before
    /// serving, so a crash before the first mutation still recovers.
    pub session: Option<SharedSession>,
    /// Recovery details (present iff `session` is).
    pub recovery: Option<RecoveryStats>,
}

/// The durability handle of one data directory: owns the WAL and the
/// snapshot store, tracks the checkpoint policy.
#[derive(Debug)]
pub struct Persistence {
    wal: Wal,
    store: SnapshotStore,
    config: PersistConfig,
    last_checkpoint_version: u64,
    /// Backoff after a failed checkpoint: do not retry until this many
    /// records have been appended since the last truncation (0 = no
    /// failure pending). Without it a persistent disk error would make
    /// every subsequent update re-encode the whole session under the
    /// writer lock.
    retry_checkpoint_at: u64,
}

impl Persistence {
    /// Opens a data directory and recovers whatever state it holds.
    ///
    /// * Fresh (or empty) directory → `session: None`; the caller
    ///   builds the initial state and checkpoints it.
    /// * Snapshot present → decode it, replay the WAL tail through the
    ///   incremental apply path, return the session at the exact
    ///   pre-crash version.
    /// * WAL records but **no** usable snapshot → `E-PERSIST`: the base
    ///   state the records build on is gone, silently starting empty
    ///   would lose acknowledged writes.
    ///
    /// Torn or corrupt WAL tails are truncated in place; invalid
    /// snapshot files are skipped in favor of the next older one —
    /// but only when the surviving snapshot plus the WAL still reach
    /// the newest version named in the directory. If they cannot
    /// (the records bridging the gap were truncated at the failed
    /// snapshot's checkpoint), recovery refuses with `E-PERSIST`
    /// instead of silently rolling back acknowledged writes.
    pub fn open(dir: &Path, config: PersistConfig, engine: &Engine) -> Result<Opened> {
        let store = SnapshotStore::new(dir)?;
        let (wal, records) = Wal::open(dir, config.fsync)?;
        let snapshot = store.load_newest()?;
        let mut persistence = Persistence {
            wal,
            store,
            config,
            last_checkpoint_version: 0,
            retry_checkpoint_at: 0,
        };
        persistence.wal.set_recorder(engine.recorder().clone());
        let Some((snap_version, body)) = snapshot else {
            if !records.is_empty() {
                return Err(TriqError::Persist(format!(
                    "{} holds {} WAL record(s) but no usable snapshot — refusing to drop \
                     acknowledged writes (restore a snapshot file or clear the directory)",
                    dir.display(),
                    records.len()
                )));
            }
            return Ok(Opened {
                persistence,
                session: None,
                recovery: None,
            });
        };
        persistence.last_checkpoint_version = snap_version;
        let mut session = triq::persist::decode_snapshot(engine, &body)?;
        let mut replayed = 0u64;
        for record in &records {
            if record.pre_version < session.version() {
                continue; // already folded into the snapshot
            }
            if record.pre_version > session.version() {
                // The WAL's epoch is newer than the snapshot we could
                // load: the snapshot these records build on is missing
                // or failed validation (checkpoints truncate the WAL,
                // so an older snapshot cannot be rolled forward across
                // the gap). Refuse rather than lose acknowledged
                // writes.
                return Err(TriqError::Persist(format!(
                    "WAL epoch is newer than the recovered snapshot: record expects \
                     version {} but snapshot {snap_version} only reaches {} — the \
                     snapshot these records build on is missing or corrupt; restore \
                     it from backup or clear the directory to start over",
                    record.pre_version,
                    session.version(),
                )));
            }
            session.apply_delta(&record.delta);
            replayed += 1;
        }
        // Same gap, empty-WAL shape: a newer snapshot is named in the
        // directory but failed validation, and the WAL that would roll
        // this older one forward was truncated at that checkpoint.
        // Serving here would silently roll back acknowledged writes.
        if let Some(newest) = persistence.store.newest_named_version()? {
            if session.version() < newest {
                return Err(TriqError::Persist(format!(
                    "newest snapshot (version {newest}) failed validation and the \
                     surviving state only reaches version {} — the WAL records \
                     needed to roll forward were truncated at that checkpoint; \
                     refusing to silently roll back acknowledged writes (restore \
                     the snapshot from backup or clear the directory)",
                    session.version(),
                )));
            }
        }
        engine.record_recovery_replayed(replayed);
        let recovery = RecoveryStats {
            snapshot_version: snap_version,
            replayed_records: replayed,
            recovered_version: session.version(),
        };
        Ok(Opened {
            persistence,
            session: Some(session.into_shared()),
            recovery: Some(recovery),
        })
    }

    /// Logs one netted batch at `pre_version` (the session version
    /// *before* it applies). Call before [`SharedSession::apply`]; on
    /// `Err` do **not** apply — the write is not durable and must be
    /// rejected. Ticks the engine's `wal_records` / `wal_bytes`
    /// counters.
    pub fn append(&mut self, pre_version: u64, delta: &Delta, engine: &Engine) -> Result<()> {
        let rec = &**engine.recorder();
        let bytes = {
            let _t = triq_obs::Timer::start(rec, triq_obs::Phase::WalAppend);
            self.wal.append(pre_version, delta)?
        };
        engine.record_wal_append(bytes);
        Ok(())
    }

    /// Whether the checkpoint policy says it is time (WAL records or
    /// bytes over budget).
    pub fn should_checkpoint(&self) -> bool {
        self.wal.appended_records() >= self.config.checkpoint_ops
            || self.wal.len_bytes() >= self.config.checkpoint_bytes
    }

    /// Checkpoints when the policy calls for it; returns the
    /// checkpointed version, if one was taken.
    ///
    /// After a failed checkpoint this backs off — the next attempt
    /// waits for `checkpoint_ops` more appended records instead of
    /// retrying (and re-encoding the whole session under the writer
    /// lock) on every subsequent update. Failures tick the engine's
    /// `checkpoint_failures` counter, surfaced through `GET /stats`;
    /// the WAL keeps covering the state either way.
    pub fn maybe_checkpoint(&mut self, shared: &SharedSession) -> Result<Option<u64>> {
        if !self.should_checkpoint() {
            return Ok(None);
        }
        if self.wal.appended_records() < self.retry_checkpoint_at {
            return Ok(None); // backing off after a failure
        }
        match self.checkpoint(shared) {
            Ok(version) => Ok(Some(version)),
            Err(e) => {
                self.retry_checkpoint_at =
                    self.wal.appended_records() + self.config.checkpoint_ops.max(1);
                shared.engine().record_checkpoint_failure();
                Err(e)
            }
        }
    }

    /// Takes a checkpoint now: encodes the exact current session state
    /// under the writer lock, writes it atomically, verifies the
    /// published file reads back, and only then prunes old snapshots
    /// and truncates the WAL — the state that could replace a bad
    /// snapshot is never destroyed before the snapshot has proven
    /// itself. Returns the checkpointed version and ticks the engine's
    /// `snapshots_written` / `last_checkpoint_version` counters.
    pub fn checkpoint(&mut self, shared: &SharedSession) -> Result<u64> {
        let rec = &**shared.engine().recorder();
        let (body, version) = {
            let _t = triq_obs::Timer::start(rec, triq_obs::Phase::CheckpointEncode);
            triq::persist::encode_snapshot(shared)
        };
        {
            let _t = triq_obs::Timer::start(rec, triq_obs::Phase::CheckpointWrite);
            self.store.write(version, &body)?;
            self.store.verify(version)?;
        }
        self.store.prune(self.config.keep_snapshots.max(1))?;
        self.wal.truncate()?;
        self.last_checkpoint_version = version;
        self.retry_checkpoint_at = 0;
        shared.engine().record_checkpoint(version);
        Ok(version)
    }

    /// The version of the most recent checkpoint (0 before the first).
    pub fn last_checkpoint_version(&self) -> u64 {
        self.last_checkpoint_version
    }

    /// Current WAL length in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use triq::api::Datalog;

    const TC: &str = "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                      t(?X, ?Y) -> out(?X, ?Y).";

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("triq-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn edge(n: u32) -> Delta {
        Delta::new().insert("e", &[&format!("n{n}"), &format!("n{}", n + 1)])
    }

    /// The single-writer protocol, as the server's writer thread runs it.
    fn durable_apply(p: &mut Persistence, shared: &SharedSession, delta: &Delta) {
        p.append(shared.version(), delta, shared.engine()).unwrap();
        shared.apply(delta);
        p.maybe_checkpoint(shared).unwrap();
    }

    #[test]
    fn fresh_open_then_recover_exact_version() {
        let dir = tmpdir("recover");
        let engine = Engine::new();
        let q = engine.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine).unwrap();
        assert!(opened.session.is_none());
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap();
        for n in 0..6 {
            durable_apply(&mut p, &shared, &edge(n));
        }
        let answers = shared.execute(&q).unwrap();
        let version = shared.version();
        drop((p, shared)); // "crash": nothing flushed beyond the WAL

        let engine2 = Engine::new();
        let q2 = engine2.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine2).unwrap();
        let recovered = opened.session.expect("state must recover");
        let stats = opened.recovery.unwrap();
        assert_eq!(stats.recovered_version, version);
        assert_eq!(recovered.version(), version);
        assert_eq!(recovered.execute(&q2).unwrap().tuples(), answers.tuples());
        assert_eq!(
            engine2.stats().recovery_replayed_ops,
            stats.replayed_records
        );
    }

    #[test]
    fn checkpoint_policy_truncates_wal_and_recovery_skips_replay() {
        let dir = tmpdir("policy");
        let engine = Engine::new();
        let config = PersistConfig {
            checkpoint_ops: 3,
            ..PersistConfig::default()
        };
        let opened = Persistence::open(&dir, config, &engine).unwrap();
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap();
        for n in 0..3 {
            durable_apply(&mut p, &shared, &edge(n));
        }
        // Third append crossed the policy: WAL is empty again.
        assert_eq!(p.wal_len_bytes(), WAL_MAGIC.len() as u64);
        assert_eq!(p.last_checkpoint_version(), shared.version());
        assert!(engine.stats().snapshots_written >= 2);
        assert_eq!(engine.stats().last_checkpoint_version, shared.version());
        drop((p, shared));

        let engine2 = Engine::new();
        let opened = Persistence::open(&dir, config, &engine2).unwrap();
        let stats = opened.recovery.unwrap();
        assert_eq!(stats.replayed_records, 0, "checkpoint made the WAL empty");
        assert_eq!(opened.session.unwrap().version(), 3);
    }

    #[test]
    fn wal_without_snapshot_is_refused() {
        let dir = tmpdir("orphan-wal");
        std::fs::create_dir_all(&dir).unwrap();
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Off).unwrap();
        wal.append(0, &edge(0)).unwrap();
        drop(wal);
        let engine = Engine::new();
        let err = Persistence::open(&dir, PersistConfig::default(), &engine).unwrap_err();
        assert_eq!(err.code(), "E-PERSIST");
    }

    #[test]
    fn stale_snapshot_fallback_is_refused_not_silent() {
        let dir = tmpdir("stale");
        let engine = Engine::new();
        let config = PersistConfig {
            checkpoint_ops: 2,
            ..PersistConfig::default()
        };
        let opened = Persistence::open(&dir, config, &engine).unwrap();
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap(); // snap v0
        for n in 0..2 {
            durable_apply(&mut p, &shared, &edge(n)); // snap v2, WAL truncated
        }
        assert_eq!(p.last_checkpoint_version(), 2);
        drop((p, shared));

        // Corrupt the newest snapshot. The old snap v0 is intact, but
        // the WAL that would roll it forward to v2 is gone — recovery
        // must refuse rather than silently serve v0.
        let newest = dir.join("snap-00000000000000000002.triq");
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let err = Persistence::open(&dir, config, &Engine::new()).unwrap_err();
        assert_eq!(err.code(), "E-PERSIST");
        assert!(
            err.to_string().contains("failed validation"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn wal_epoch_newer_than_snapshot_is_refused() {
        let dir = tmpdir("epoch");
        let engine = Engine::new();
        let config = PersistConfig {
            checkpoint_ops: 2,
            ..PersistConfig::default()
        };
        let opened = Persistence::open(&dir, config, &engine).unwrap();
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap(); // snap v0
        for n in 0..3 {
            // Records at pre 0 and 1 are folded into snap v2 (WAL
            // truncated); the third lives in the WAL at pre 2.
            durable_apply(&mut p, &shared, &edge(n));
        }
        drop((p, shared));

        // With snap v2 corrupt, the WAL tail (pre 2) builds on a
        // snapshot newer than the one that loads (v0): a clear
        // epoch-gap refusal, not a bogus "diverged" apply.
        let newest = dir.join("snap-00000000000000000002.triq");
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let err = Persistence::open(&dir, config, &Engine::new()).unwrap_err();
        assert_eq!(err.code(), "E-PERSIST");
        assert!(
            err.to_string().contains("epoch"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn checkpoint_failure_backs_off_then_recovers() {
        let dir = tmpdir("backoff");
        let engine = Engine::new();
        let config = PersistConfig {
            checkpoint_ops: 2,
            ..PersistConfig::default()
        };
        let opened = Persistence::open(&dir, config, &engine).unwrap();
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap();
        // Squat a directory on the tmp name of the checkpoint the
        // policy will trigger at version 2, so its write fails.
        let blocker = dir.join("snap-00000000000000000002.triq.tmp");
        std::fs::create_dir_all(&blocker).unwrap();

        p.append(shared.version(), &edge(0), shared.engine())
            .unwrap();
        shared.apply(&edge(0));
        assert!(p.maybe_checkpoint(&shared).unwrap().is_none(), "1 < 2 ops");

        p.append(shared.version(), &edge(1), shared.engine())
            .unwrap();
        shared.apply(&edge(1));
        assert!(p.maybe_checkpoint(&shared).is_err(), "blocked tmp file");
        assert_eq!(engine.stats().checkpoint_failures, 1);

        // Backoff: the very next update does not retry (and does not
        // re-encode the session), even though the policy still fires.
        p.append(shared.version(), &edge(2), shared.engine())
            .unwrap();
        shared.apply(&edge(2));
        assert!(p.should_checkpoint());
        assert!(
            p.maybe_checkpoint(&shared).unwrap().is_none(),
            "backing off"
        );
        assert_eq!(engine.stats().checkpoint_failures, 1);

        // After checkpoint_ops more records the retry runs — and
        // succeeds, because version 4's tmp name is unobstructed.
        p.append(shared.version(), &edge(3), shared.engine())
            .unwrap();
        shared.apply(&edge(3));
        assert_eq!(p.maybe_checkpoint(&shared).unwrap(), Some(shared.version()));
        assert_eq!(p.last_checkpoint_version(), 4);
        assert_eq!(p.wal_len_bytes(), WAL_MAGIC.len() as u64);
    }

    #[test]
    fn deletes_and_redundant_ops_replay_deterministically() {
        let dir = tmpdir("deletes");
        let engine = Engine::new();
        let q = engine.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine).unwrap();
        let mut p = opened.persistence;
        let shared = engine.session().into_shared();
        p.checkpoint(&shared).unwrap();
        durable_apply(&mut p, &shared, &edge(0));
        durable_apply(&mut p, &shared, &edge(1));
        // A redundant insert (version must not advance) and a delete.
        durable_apply(&mut p, &shared, &edge(1));
        durable_apply(&mut p, &shared, &Delta::new().delete("e", &["n0", "n1"]));
        let answers = shared.execute(&q).unwrap();
        let version = shared.version();
        assert_eq!(version, 3, "redundant insert did not advance the version");
        drop((p, shared));

        let engine2 = Engine::new();
        let q2 = engine2.prepare(Datalog(TC, "out")).unwrap();
        let opened = Persistence::open(&dir, PersistConfig::default(), &engine2).unwrap();
        let recovered = opened.session.unwrap();
        assert_eq!(recovered.version(), version);
        assert_eq!(recovered.execute(&q2).unwrap().tuples(), answers.tuples());
    }
}
