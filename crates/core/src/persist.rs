//! Session snapshot encoding — the payload of durability checkpoints.
//!
//! A snapshot captures a [`SharedSession`]'s exact state at one op-log
//! version: the interner string table, the extensional
//! [`Database`](triq_datalog::Database) and
//! every maintained view that is synced to the head (instance, skolem
//! memo, program text and chase configuration — see
//! `triq_datalog::persist`). Decoding yields a [`Session`] whose views
//! wait in the *restored* set, keyed by durable plan fingerprint; the
//! first execution of a matching prepared query adopts one without
//! re-running the chase. File framing (magic, CRC, atomic rename) is the
//! `triq-persist` crate's job — this module only defines the body.
//!
//! Recovered sessions do not carry an RDF [`Graph`](triq_rdf::Graph):
//! the database is the source of truth after `τ_db`, and every serving
//! path reads it. A graph file sitting next to the snapshot is ignored
//! on recovery.

use std::collections::HashMap;
use std::sync::Mutex;

use triq_common::codec::{encode_interner, Decoder, Encoder, SymbolRemap};
use triq_common::{Result, TriqError};
use triq_datalog::persist::{decode_database, decode_view, encode_database, encode_view};

use crate::api::{Engine, OpLog, RestoredView, Session, SharedSession};

/// Upper bound on the view count a snapshot may declare — far above
/// anything a session produces (live views are capped at 32), it merely
/// keeps a corrupt length prefix from driving a huge allocation loop.
const MAX_SNAPSHOT_VIEWS: usize = 1024;

fn corrupt(msg: &str) -> TriqError {
    TriqError::Persist(format!("corrupt snapshot: {msg}"))
}

/// Encodes the exact current state of a shared session under its writer
/// lock. Returns the snapshot body and the op-log version it reflects.
///
/// Views included: every live maintained view that is synced to the
/// head and not poisoned, plus every not-yet-adopted restored view at
/// the head (so an unclaimed recovered view survives the next
/// checkpoint too). Views are written in fingerprint order — the
/// encoding is deterministic for a given state, which is what the
/// kill-and-recover differential tests compare.
pub fn encode_snapshot(shared: &SharedSession) -> (Vec<u8>, u64) {
    shared.with_writer(encode_session)
}

/// [`encode_snapshot`] against an exclusively-held session.
pub fn encode_session(session: &mut Session) -> (Vec<u8>, u64) {
    let version = session.ops.version();
    let mut enc = Encoder::new();
    encode_interner(&mut enc);
    enc.varint(version);
    encode_database(&mut enc, &session.db);

    // Collect qualifying views, deduplicated by fingerprint (two plan
    // ids can compile the same program + config; one copy suffices —
    // adoption hands it to whichever query executes first). Live views
    // win over restored ones.
    let mut chosen: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
    let views = session.views.get_mut().expect("session views poisoned");
    for cell in views.values() {
        let entry = cell.lock().expect("session view poisoned");
        if entry.synced != version {
            continue;
        }
        let Some(view) = entry.view.as_ref() else {
            continue;
        };
        if view.is_poisoned() {
            continue;
        }
        let fp = triq_datalog::persist::view_fingerprint(view);
        chosen.entry(fp).or_insert_with(|| {
            let mut venc = Encoder::new();
            encode_view(&mut venc, view);
            venc.into_bytes()
        });
    }
    let restored = session.restored.get_mut().expect("restored views poisoned");
    for (fp, rv) in restored.iter() {
        if rv.synced != version {
            continue;
        }
        chosen.entry(*fp).or_insert_with(|| {
            let mut venc = Encoder::new();
            encode_view(&mut venc, &rv.view);
            venc.into_bytes()
        });
    }

    enc.varint(chosen.len() as u64);
    for bytes in chosen.values() {
        enc.raw(bytes);
    }
    (enc.into_bytes(), version)
}

/// Decodes a snapshot body written by [`encode_snapshot`] into a fresh
/// [`Session`] of `engine`, positioned at the snapshot's version with an
/// empty op log (WAL replay appends from here). Every stored view lands
/// in the session's restored set; duplicate fingerprints and trailing
/// bytes are corruption.
pub fn decode_snapshot(engine: &Engine, bytes: &[u8]) -> Result<Session> {
    let mut dec = Decoder::new(bytes);
    let remap = SymbolRemap::decode(&mut dec)?;
    let version = dec.varint()?;
    let db = decode_database(&mut dec, &remap)?;
    let count = dec.len_capped(MAX_SNAPSHOT_VIEWS)?;
    let mut restored: HashMap<u64, RestoredView> = HashMap::with_capacity(count);
    for _ in 0..count {
        let (view, fingerprint) = decode_view(&mut dec, &remap, db.clone())?;
        let dup = restored
            .insert(
                fingerprint,
                RestoredView {
                    view,
                    synced: version,
                },
            )
            .is_some();
        if dup {
            return Err(corrupt("duplicate view fingerprint"));
        }
    }
    if !dec.is_exhausted() {
        return Err(corrupt("trailing bytes after last view"));
    }
    Ok(Session {
        engine: engine.clone(),
        graph: None,
        db,
        ops: OpLog {
            base: version,
            ops: Vec::new(),
        },
        views: Mutex::new(HashMap::new()),
        restored: Mutex::new(restored),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Datalog;
    use triq_common::Delta;

    const TC: &str = "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                      t(?X, ?Y) -> out(?X, ?Y).";

    #[test]
    fn snapshot_round_trips_and_is_adopted_without_a_chase() {
        let engine = Engine::new();
        let q = engine.prepare(Datalog(TC, "out")).unwrap();
        let mut session = engine.session();
        session.add_fact("e", &["a", "b"]);
        session.add_fact("e", &["b", "c"]);
        let shared = session.into_shared();
        let before = shared.execute(&q).unwrap();
        assert!(before.contains(&["a", "c"]));

        let (bytes, version) = encode_snapshot(&shared);
        assert_eq!(version, 2);

        // Recover into a fresh engine; the same prepared query (same
        // program text + config → same fingerprint) adopts the restored
        // view: answers are identical and no chase runs.
        let engine2 = Engine::new();
        let q2 = engine2.prepare(Datalog(TC, "out")).unwrap();
        let recovered = decode_snapshot(&engine2, &bytes).unwrap();
        assert_eq!(recovered.version(), 2);
        let runs_before = engine2.stats().chase_runs;
        let shared2 = recovered.into_shared();
        let after = shared2.execute(&q2).unwrap();
        assert_eq!(
            engine2.stats().chase_runs,
            runs_before,
            "adopted, not re-chased"
        );
        assert_eq!(before.tuples(), after.tuples());

        // The recovered session keeps maintaining incrementally.
        shared2.apply(&Delta::new().insert("e", &["c", "d"]));
        assert!(shared2.execute(&q2).unwrap().contains(&["a", "d"]));
    }

    #[test]
    fn snapshot_encoding_is_deterministic() {
        let engine = Engine::new();
        let q = engine.prepare(Datalog(TC, "out")).unwrap();
        let mut session = engine.session();
        session.add_fact("e", &["a", "b"]);
        let shared = session.into_shared();
        shared.execute(&q).unwrap();
        let (a, _) = encode_snapshot(&shared);
        let (b, _) = encode_snapshot(&shared);
        assert_eq!(a, b);
    }

    #[test]
    fn restored_view_survives_the_next_checkpoint_unadopted() {
        let engine = Engine::new();
        let q = engine.prepare(Datalog(TC, "out")).unwrap();
        let mut session = engine.session();
        session.add_fact("e", &["a", "b"]);
        let shared = session.into_shared();
        shared.execute(&q).unwrap();
        let (bytes, _) = encode_snapshot(&shared);

        let engine2 = Engine::new();
        let recovered = decode_snapshot(&engine2, &bytes).unwrap();
        let shared2 = recovered.into_shared();
        // No query executed: the view is still in the restored set, and
        // a new checkpoint must carry it forward.
        let (bytes2, _) = encode_snapshot(&shared2);
        let engine3 = Engine::new();
        let recovered3 = decode_snapshot(&engine3, &bytes2).unwrap();
        let q3 = engine3.prepare(Datalog(TC, "out")).unwrap();
        let runs = engine3.stats().chase_runs;
        let shared3 = recovered3.into_shared();
        assert!(shared3.execute(&q3).unwrap().contains(&["a", "b"]));
        assert_eq!(engine3.stats().chase_runs, runs);
    }

    #[test]
    fn truncated_snapshot_is_an_error_not_a_panic() {
        let engine = Engine::new();
        let mut session = engine.session();
        session.add_fact("e", &["a", "b"]);
        let shared = session.into_shared();
        let (bytes, _) = encode_snapshot(&shared);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let engine2 = Engine::new();
            assert!(decode_snapshot(&engine2, &bytes[..cut]).is_err());
        }
        // Trailing garbage is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        let engine2 = Engine::new();
        assert!(decode_snapshot(&engine2, &padded).is_err());
    }
}
