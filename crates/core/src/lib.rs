//! # TriQ — expressive languages for querying the Semantic Web
//!
//! A from-scratch Rust implementation of
//! *Expressive Languages for Querying the Semantic Web* (Arenas, Gottlob,
//! Pieris; PODS 2014 / ACM TODS 2018): the query languages **TriQ 1.0**
//! (weakly-frontier-guarded Datalog∃,¬s,⊥) and **TriQ-Lite 1.0** (warded
//! Datalog∃,¬sg,⊥), the SPARQL → Datalog translations of §5 including the
//! OWL 2 QL core direct-semantics entailment regime, and every substrate
//! they need: an RDF store, a SPARQL algebra engine, a Datalog∃,¬s,⊥
//! chase engine with proof trees and the §6.3 `ProofTree` decision
//! procedure, and an OWL 2 QL core ontology layer.
//!
//! ## Quick start
//!
//! Everything goes through one lifecycle: build an [`Engine`], **prepare**
//! a query once (parse → translate → classify → stratify → compile), open
//! a [`Session`] per dataset, and **execute** the prepared query as often
//! as you like — against any number of sessions. Execution runs on a
//! columnar, fully interned chase engine (see `docs/ARCHITECTURE.md` at
//! the repository root for the crate layering, the `TermId` interning
//! boundary and the chase data flow).
//!
//! ```
//! use triq::prelude::*;
//!
//! let engine = Engine::new();
//!
//! // An RDF graph (§2 of the paper) loaded into a session; τ_db runs once.
//! let session = engine.load_turtle(
//!     "dbUllman is_author_of \"The Complete Book\" .\n\
//!      dbUllman name \"Jeffrey Ullman\" .",
//! )?;
//!
//! // Prepare a SPARQL query…
//! let authors = engine.prepare(Sparql(
//!     "SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
//! ))?;
//! assert_eq!(authors.bindings_of(&session, "X")?[0].as_str(), "Jeffrey Ullman");
//!
//! // …or a TriQ-Lite 1.0 rule program over triple(·,·,·) — same session,
//! // same engine, prepared once and reusable across sessions.
//! let rules = engine.prepare(Datalog(
//!     "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).",
//!     "query",
//! ))?;
//! assert!(rules.execute(&session)?.contains(&["Jeffrey Ullman"]));
//!
//! // Large result sets can stream instead of materializing:
//! assert_eq!(rules.execute_iter(&session)?.count(), 1);
//! # Ok::<(), TriqError>(())
//! ```
//!
//! Sessions are **live**: inserting or removing facts does not discard
//! the materialization. Each prepared query's chase fixpoint is
//! maintained incrementally — insertions resume the semi-naive chase
//! from the new facts, deletions use delete-and-rederive (DRed) over
//! the recorded provenance — so a mutation costs work proportional to
//! the change, not to the dataset ([`Session::invalidate`] remains the
//! explicit full-rebuild escape hatch):
//!
//! ```
//! use triq::prelude::*;
//!
//! let engine = Engine::new();
//! let reach = engine.prepare(Datalog(
//!     "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
//!      t(?X, ?Y) -> query(?X, ?Y).",
//!     "query",
//! ))?;
//! let mut session = engine.session();
//! session.add_fact("e", &["a", "b"]);
//! session.add_fact("e", &["b", "c"]);
//! assert!(reach.execute(&session)?.contains(&["a", "c"]));
//!
//! // Live updates: absorbed by the maintained view, no re-chase.
//! session.add_fact("e", &["c", "d"]);
//! assert!(reach.execute(&session)?.contains(&["a", "d"]));
//! session.remove_fact("e", &["b", "c"]);
//! assert!(!reach.execute(&session)?.contains(&["a", "d"]));
//! assert!(engine.stats().deltas_applied >= 2);
//! // The chase's cost-based join planner and the morsel-parallel
//! // execution path report through the same counters: plans compiled /
//! // re-planned on cardinality drift, on-demand hash-index builds and
//! // the probes they served, morsel match batches collected on worker
//! // threads, and rows screened by the vectorized column kernels (see
//! // the "Join planning" and "Parallel chase" sections of
//! // docs/ARCHITECTURE.md). A db this tiny never crosses the planning
//! // or parallel thresholds, so nothing ticks yet —
//! // [`EngineBuilder::chase_threads`] caps the worker pool when it
//! // does.
//! let stats = engine.stats();
//! let _ = (stats.plans_compiled, stats.replans, stats.index_builds);
//! let _ = (stats.morsel_batches, stats.kernel_filter_rows);
//! # Ok::<(), TriqError>(())
//! ```
//!
//! SPARQL queries evaluate under any of the three semantics of §3.1 /
//! §5.2 / §5.3 — pass a [`Semantics`] when preparing, or set an
//! engine-wide default via [`EngineBuilder::default_semantics`]:
//!
//! ```
//! use triq::prelude::*;
//!
//! let engine = Engine::new();
//! let pattern = parse_pattern("{ ?X eats _:B }")?;
//! let q = engine.prepare((pattern, Semantics::RegimeAll))?;
//! # Ok::<(), TriqError>(())
//! ```
//!
//! The crate-level types [`TriqQuery`] and [`TriqLiteQuery`] enforce the
//! paper's language membership (Definition 4.2 / Definition 6.1) at
//! construction time and plug into [`Engine::prepare`] like every other
//! query form.
//!
//! For concurrent serving, [`Session::into_shared`] yields a
//! [`SharedSession`]: N reader threads execute lock-free against
//! atomically published fixpoint snapshots while a single writer
//! applies deltas (snapshot isolation — see the "Serving layer" section
//! of `docs/ARCHITECTURE.md`). The HTTP service built on it lives in
//! the `triq-server` crate, together with the `triq-cli` binary
//! (`triq-cli serve`, wire format in `docs/PROTOCOL.md`).

pub mod api;
pub mod engine;
pub mod persist;
mod triq_lang;

pub use api::{
    AppliedDelta, Datalog, Engine, EngineBuilder, EngineStats, IntoQuery, PreparedQuery, QuerySpec,
    Semantics, Session, SessionSnapshot, SharedSession, Sparql,
};
pub use triq_lang::{TriqLiteQuery, TriqQuery};

/// Re-export: shared term model.
pub use triq_common as common;
/// Re-export: Datalog∃,¬s,⊥ engine.
pub use triq_datalog as datalog;
/// Re-export: observability (recorder trait, telemetry, Prometheus
/// exposition).
pub use triq_obs as obs;
/// Re-export: OWL 2 QL core ontology layer.
pub use triq_owl2ql as owl2ql;
/// Re-export: RDF substrate.
pub use triq_rdf as rdf;
/// Re-export: SPARQL algebra.
pub use triq_sparql as sparql;
/// Re-export: SPARQL → Datalog translations.
pub use triq_translate as translate;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::api::{
        AppliedDelta, Datalog, Engine, EngineBuilder, EngineStats, IntoQuery, PreparedQuery,
        QuerySpec, Semantics, Session, SessionSnapshot, SharedSession, Sparql,
    };
    pub use crate::{TriqLiteQuery, TriqQuery};
    pub use triq_common::json::Json;
    pub use triq_common::{intern, Delta, Fact, NullId, Symbol, Term, TriqError, VarId};
    pub use triq_datalog::{
        classify_program, parse_atom, parse_program, parse_query, AnswerIter, Answers, ChaseConfig,
        ChaseRunner, Database, DemandFallback, DemandMode, ExistentialStrategy, JoinPlanner,
        MaterializedView, Program, Query,
    };
    pub use triq_owl2ql::{
        ontology_from_graph, ontology_to_graph, parse_functional, tau_db, tau_owl2ql_core, Axiom,
        BasicClass, BasicProperty, EntailmentOracle, Ontology,
    };
    pub use triq_rdf::{parse_turtle, parse_turtle_parallel, to_turtle, Graph, Triple};
    pub use triq_sparql::{
        evaluate as evaluate_sparql, parse_construct, parse_pattern, parse_select,
    };
    pub use triq_translate::{
        translate_pattern, translate_pattern_all, translate_pattern_u, RegimeAnswers,
    };
    // Deprecated entry points, kept importable so pre-facade code keeps
    // compiling (with deprecation warnings at the use sites).
    #[allow(deprecated)]
    pub use crate::engine::SparqlEngine;
    #[allow(deprecated)]
    pub use triq_translate::{evaluate_plain, evaluate_regime_all, evaluate_regime_u};
}
