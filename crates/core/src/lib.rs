//! # TriQ — expressive languages for querying the Semantic Web
//!
//! A from-scratch Rust implementation of
//! *Expressive Languages for Querying the Semantic Web* (Arenas, Gottlob,
//! Pieris; PODS 2014 / ACM TODS 2018): the query languages **TriQ 1.0**
//! (weakly-frontier-guarded Datalog∃,¬s,⊥) and **TriQ-Lite 1.0** (warded
//! Datalog∃,¬sg,⊥), the SPARQL → Datalog translations of §5 including the
//! OWL 2 QL core direct-semantics entailment regime, and every substrate
//! they need: an RDF store, a SPARQL algebra engine, a Datalog∃,¬s,⊥
//! chase engine with proof trees and the §6.3 `ProofTree` decision
//! procedure, and an OWL 2 QL core ontology layer.
//!
//! ## Quick start
//!
//! ```
//! use triq::prelude::*;
//!
//! // An RDF graph (§2 of the paper).
//! let graph = parse_turtle(
//!     "dbUllman is_author_of \"The Complete Book\" .\n\
//!      dbUllman name \"Jeffrey Ullman\" .",
//! ).unwrap();
//!
//! // Query it with SPARQL…
//! let q = parse_select("SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }").unwrap();
//! assert_eq!(q.bindings_of(&graph, "X")[0].as_str(), "Jeffrey Ullman");
//!
//! // …or with a TriQ-Lite 1.0 rule program over triple(·,·,·).
//! let rules = parse_program(
//!     "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).",
//! ).unwrap();
//! let answers = TriqLiteQuery::new(rules, "query").unwrap()
//!     .evaluate_on_graph(&graph).unwrap();
//! assert!(answers.contains(&["Jeffrey Ullman"]));
//! ```
//!
//! The crate-level types [`TriqQuery`] and [`TriqLiteQuery`] enforce the
//! paper's language membership (Definition 4.2 / Definition 6.1) at
//! construction time; [`engine::SparqlEngine`] bundles graph + ontology
//! reasoning for the §5 entailment regimes.

pub mod engine;
mod triq_lang;

pub use triq_lang::{TriqLiteQuery, TriqQuery};

/// Re-export: shared term model.
pub use triq_common as common;
/// Re-export: Datalog∃,¬s,⊥ engine.
pub use triq_datalog as datalog;
/// Re-export: OWL 2 QL core ontology layer.
pub use triq_owl2ql as owl2ql;
/// Re-export: RDF substrate.
pub use triq_rdf as rdf;
/// Re-export: SPARQL algebra.
pub use triq_sparql as sparql;
/// Re-export: SPARQL → Datalog translations.
pub use triq_translate as translate;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::engine::SparqlEngine;
    pub use crate::{TriqLiteQuery, TriqQuery};
    pub use triq_common::{intern, NullId, Symbol, Term, TriqError, VarId};
    pub use triq_datalog::{
        classify_program, parse_atom, parse_program, parse_query, Answers, ChaseConfig, Database,
        ExistentialStrategy, Program, Query,
    };
    pub use triq_owl2ql::{
        ontology_from_graph, ontology_to_graph, parse_functional, tau_db, tau_owl2ql_core,
        Axiom, BasicClass, BasicProperty, EntailmentOracle, Ontology,
    };
    pub use triq_rdf::{parse_turtle, to_turtle, Graph, Triple};
    pub use triq_sparql::{
        evaluate as evaluate_sparql, parse_construct, parse_pattern, parse_select,
    };
    pub use triq_translate::{
        evaluate_plain, evaluate_regime_all, evaluate_regime_u, translate_pattern,
        translate_pattern_all, translate_pattern_u, RegimeAnswers,
    };
}
