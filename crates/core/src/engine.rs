//! The legacy one-graph engine, now a thin shim over the
//! [`Engine`](crate::api::Engine) / [`Session`](crate::api::Session) /
//! [`PreparedQuery`](crate::api::PreparedQuery) facade, plus the §2
//! `owl:sameAs` rule libraries.
//!
//! [`SparqlEngine`] is deprecated: it re-prepares the query on every
//! `evaluate` call. Prefer preparing once:
//!
//! ```
//! use triq::prelude::*;
//!
//! let engine = Engine::new();
//! let q = engine.prepare(Sparql("SELECT ?X WHERE { ?Y name ?X }"))?;
//! let session = engine.load_turtle("a name \"Alice\" .")?;
//! assert_eq!(q.bindings_of(&session, "X")?[0].as_str(), "Alice");
//! # Ok::<(), TriqError>(())
//! ```

use std::collections::HashMap;
use std::sync::Mutex;
use triq_common::{Result, Symbol};
use triq_datalog::{ChaseConfig, Program};
use triq_owl2ql::tau_db;
use triq_rdf::Graph;
use triq_sparql::{GraphPattern, MappingSet};
use triq_translate::RegimeAnswers;

pub use crate::api::Semantics;

/// A SPARQL engine over one RDF graph.
#[deprecated(
    since = "0.2.0",
    note = "use Engine::prepare + Session: build with triq::Engine::builder(), \
            load the graph with Engine::load_graph, prepare the pattern once"
)]
pub struct SparqlEngine {
    /// Extra rule libraries prepended to every translated query (e.g. the
    /// §2 owl:sameAs rules); must not define `triple` recursively in a way
    /// that breaks stratification.
    libraries: Vec<Program>,
    config: ChaseConfig,
    /// The facade engine backing this shim, rebuilt only when the
    /// configuration or libraries change.
    facade: crate::api::Engine,
    /// The session holding the graph + τ_db bridge, built once: neither
    /// config nor library changes touch the loaded data.
    session: crate::api::Session,
    /// Prepared-query memo so repeated `evaluate` calls on the same
    /// pattern reuse one plan (and hence the session's chase cache)
    /// instead of minting dead cache entries. Keyed by the pattern's
    /// debug rendering, which is injective on the algebra.
    memo: Mutex<HashMap<(String, Semantics), crate::api::PreparedQuery>>,
}

#[allow(deprecated)]
impl SparqlEngine {
    /// Creates an engine over `graph`.
    pub fn new(graph: Graph) -> SparqlEngine {
        let config = triq_translate::regime_chase_config();
        let facade = Self::build_facade(&[], config);
        let session = facade.load_graph(graph);
        SparqlEngine {
            libraries: Vec::new(),
            config,
            facade,
            session,
            memo: Mutex::new(HashMap::new()),
        }
    }

    fn build_facade(libraries: &[Program], config: ChaseConfig) -> crate::api::Engine {
        let mut builder = crate::api::Engine::builder().chase_config(config);
        for lib in libraries {
            builder = builder.library(lib.clone());
        }
        builder.build()
    }

    /// Sets the chase configuration.
    pub fn with_config(mut self, config: ChaseConfig) -> SparqlEngine {
        self.config = config;
        self.facade = Self::build_facade(&self.libraries, config);
        self.memo.get_mut().expect("memo poisoned").clear();
        self
    }

    /// Adds a rule library (a fixed set of rules in the sense of §2, e.g.
    /// the owl:sameAs closure) that is unioned into every query program.
    pub fn add_library(&mut self, library: Program) {
        self.libraries.push(library);
        self.facade = Self::build_facade(&self.libraries, self.config);
        self.memo.get_mut().expect("memo poisoned").clear();
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.session
            .graph()
            .expect("shim sessions are always graph-backed")
    }

    /// Upper bound on memoized prepared plans; when full the memo is
    /// cleared wholesale (coarse but bounded, mirroring the session's
    /// chase-outcome cache).
    const MAX_MEMOIZED_PLANS: usize = 32;

    /// Evaluates a graph pattern under the chosen semantics.
    pub fn evaluate(&self, pattern: &GraphPattern, semantics: Semantics) -> Result<RegimeAnswers> {
        let key = (format!("{pattern:?}"), semantics);
        let memoized = self.memo.lock().expect("memo poisoned").get(&key).cloned();
        let prepared = match memoized {
            Some(p) => p,
            None => {
                let p = self.facade.prepare((pattern, semantics))?;
                let mut memo = self.memo.lock().expect("memo poisoned");
                if memo.len() >= Self::MAX_MEMOIZED_PLANS {
                    memo.clear();
                }
                memo.insert(key, p.clone());
                p
            }
        };
        prepared.mappings(&self.session)
    }

    /// Evaluates under plain semantics, returning the mapping set
    /// directly.
    pub fn evaluate_plain(&self, pattern: &GraphPattern) -> Result<MappingSet> {
        match self.evaluate(pattern, Semantics::Plain)? {
            RegimeAnswers::Mappings(m) => Ok(m),
            RegimeAnswers::Top => Ok(MappingSet::new()),
        }
    }

    /// Convenience: the sorted, deduplicated bindings of one variable.
    /// Legacy quirk, preserved: an inconsistent graph (⊤) yields an empty
    /// list — the facade's `PreparedQuery::bindings_of` errors instead.
    pub fn bindings_of(
        &self,
        pattern: &GraphPattern,
        semantics: Semantics,
        var: &str,
    ) -> Result<Vec<Symbol>> {
        let v = triq_common::VarId::new(var);
        let answers = self.evaluate(pattern, semantics)?;
        let mut out: Vec<Symbol> = answers
            .mappings()
            .map(|ms| ms.iter().filter_map(|m| m.get(v)).collect())
            .unwrap_or_default();
        out.sort();
        out.dedup();
        Ok(out)
    }
}

/// The §2 `owl:sameAs` rule library: symmetry, transitivity and
/// substitution in subject/object positions. The library closes `triple1`
/// (the saturated predicate used by the regimes); for plain semantics,
/// materialize the closure into the graph with [`materialize_same_as`]
/// instead.
pub fn same_as_regime_library() -> Program {
    triq_datalog::parse_program(
        "triple1(?X, owl:sameAs, ?Y) -> triple1(?Y, owl:sameAs, ?X).\n\
         triple1(?X, owl:sameAs, ?Y), triple1(?Y, owl:sameAs, ?Z) -> \
            triple1(?X, owl:sameAs, ?Z).\n\
         triple1(?X1, owl:sameAs, ?X2), triple1(?X1, ?U, ?Y) -> triple1(?X2, ?U, ?Y).\n\
         triple1(?X1, owl:sameAs, ?X2), triple1(?Y, ?U, ?X1) -> triple1(?Y, ?U, ?X2).",
    )
    .expect("sameAs library is well-formed")
}

/// The `owl:sameAs` library for plain semantics: closes a `same` relation
/// and rewrites `triple` matches through it into `triple1`… plain mode
/// matches `triple`, so this library *extends* `triple` via an auxiliary
/// predicate is not possible without recursion through the EDB — instead,
/// apply [`materialize_same_as`] to the graph up front.
pub fn materialize_same_as(graph: &Graph) -> Result<Graph> {
    let program = triq_datalog::parse_program(
        "triple(?X, owl:sameAs, ?Y) -> same(?X, ?Y).\n\
         same(?X, ?Y) -> same(?Y, ?X).\n\
         same(?X, ?Y), same(?Y, ?Z) -> same(?X, ?Z).\n\
         triple(?S, ?P, ?O) -> closed(?S, ?P, ?O).\n\
         closed(?S, ?P, ?O), same(?S, ?S2) -> closed(?S2, ?P, ?O).\n\
         closed(?S, ?P, ?O), same(?O, ?O2) -> closed(?S, ?P, ?O2).",
    )
    .expect("sameAs materialization program is well-formed");
    let outcome = triq_datalog::chase(&tau_db(graph), &program, ChaseConfig::default())?;
    let mut out = graph.clone();
    for atom in outcome.instance.atoms_of(triq_common::intern("closed")) {
        if let (Some(s), Some(p), Some(o)) = (
            atom.terms[0].as_const(),
            atom.terms[1].as_const(),
            atom.terms[2].as_const(),
        ) {
            out.insert(triq_rdf::Triple::new(s, p, o));
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use triq_rdf::parse_turtle;
    use triq_sparql::parse_pattern;

    /// §2's G4: retrieving authors through owl:sameAs.
    #[test]
    fn g4_same_as_materialization() {
        let g4 = parse_turtle(
            "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman owl:sameAs yagoUllman .\n\
             yagoUllman name \"Jeffrey Ullman\" .",
        )
        .unwrap();
        let pattern = parse_pattern("{ ?Y is_author_of ?Z . ?Y name ?X }").unwrap();
        // Without the library: empty (as §2 observes).
        let engine = SparqlEngine::new(g4.clone());
        assert!(engine.evaluate_plain(&pattern).unwrap().is_empty());
        // With materialized sameAs closure: Ullman is found.
        let engine = SparqlEngine::new(materialize_same_as(&g4).unwrap());
        let names = engine.bindings_of(&pattern, Semantics::Plain, "X").unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), "Jeffrey Ullman");
    }

    /// The same effect via the regime library on triple1.
    #[test]
    fn g4_same_as_regime_library() {
        let g4 = parse_turtle(
            "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman owl:sameAs yagoUllman .\n\
             yagoUllman name \"Jeffrey Ullman\" .",
        )
        .unwrap();
        let pattern = parse_pattern("{ ?Y is_author_of ?Z . ?Y name ?X }").unwrap();
        let mut engine = SparqlEngine::new(g4);
        engine.add_library(same_as_regime_library());
        let names = engine
            .bindings_of(&pattern, Semantics::RegimeU, "X")
            .unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), "Jeffrey Ullman");
    }

    #[test]
    fn plain_engine_matches_sparql_eval() {
        let g = parse_turtle(
            "a name \"Alice\" .\n\
             b name \"Bob\" .\n\
             a phone \"123\" .",
        )
        .unwrap();
        let pattern = parse_pattern("{ ?X name ?Y } OPTIONAL { ?X phone ?Z }").unwrap();
        let engine = SparqlEngine::new(g.clone());
        assert_eq!(
            engine.evaluate_plain(&pattern).unwrap(),
            triq_sparql::evaluate(&g, &pattern)
        );
    }

    /// Repeated legacy `evaluate` calls reuse one prepared plan and hit
    /// the session's chase cache instead of minting dead entries.
    #[test]
    fn shim_memoizes_prepared_plans() {
        let g = parse_turtle("a name \"Alice\" .").unwrap();
        let engine = SparqlEngine::new(g);
        let pattern = parse_pattern("{ ?X name ?Y }").unwrap();
        for _ in 0..3 {
            assert_eq!(engine.evaluate_plain(&pattern).unwrap().len(), 1);
        }
        let stats = engine.facade.stats();
        assert_eq!(stats.prepared_queries, 1, "prepared once, not per call");
        assert_eq!(stats.chase_runs, 1, "chase once, then cache hits");
        assert_eq!(stats.cache_hits, 2);
    }
}
