//! The unified `Engine` / `Session` / `PreparedQuery` facade.
//!
//! The paper gives four ways to ask a question — SPARQL patterns under
//! three semantics (§3.1, §5.2, §5.3), TriQ 1.0 programs (Def. 4.2),
//! TriQ-Lite 1.0 programs (Def. 6.1) and raw Datalog∃,¬s,⊥ queries
//! (§3.2) — and the seed exposed one ad-hoc entry point per way, each
//! re-parsing, re-translating, re-classifying, re-stratifying and
//! re-compiling on every call. This module replaces them with one
//! prepare-once / execute-many lifecycle:
//!
//! * [`Engine`] (built via [`EngineBuilder`]) holds policy: chase
//!   configuration, default [`Semantics`], rule libraries (§2), and
//!   usage [statistics](Engine::stats);
//! * [`Engine::prepare`] accepts *any* query form through [`IntoQuery`]
//!   and pays translation (§5), classification (Def. 4.2 / 6.1),
//!   stratification (§3.2) and rule compilation exactly **once**,
//!   yielding a [`PreparedQuery`];
//! * [`Session`] holds loaded data — an RDF [`Graph`] bridged through
//!   `τ_db` (§5.1) and/or a raw [`Database`] — plus **maintained** chase
//!   state: re-executing a prepared query against unchanged data is a
//!   lookup, and mutations ([`Session::insert_triple`],
//!   [`Session::remove_fact`], …) are absorbed incrementally
//!   (delta-chase inserts, DRed deletes — see
//!   `triq_datalog::incremental`) instead of discarding the
//!   materialization;
//! * a [`PreparedQuery`] executes against any number of sessions, either
//!   materialized ([`PreparedQuery::execute`]) or streaming
//!   ([`PreparedQuery::execute_iter`]).
//!
//! ```
//! use triq::prelude::*;
//!
//! let engine = Engine::new();
//! let authors = engine.prepare(Sparql(
//!     "SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
//! ))?;
//!
//! let session = engine.load_turtle(
//!     "dbUllman is_author_of \"The Complete Book\" .\n\
//!      dbUllman name \"Jeffrey Ullman\" .",
//! )?;
//! assert_eq!(authors.bindings_of(&session, "X")?[0].as_str(), "Jeffrey Ullman");
//! # Ok::<(), TriqError>(())
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use triq_common::json::Json;
use triq_common::{Delta, Fact, Result, Symbol, TriqError, VarId};
use triq_datalog::{
    classify_program, demand, AnswerIter, Answers, ChaseConfig, ChaseOutcome, ChaseRunner,
    Database, DemandMode, ExistentialStrategy, MaterializedView, Program, ProgramClassification,
};
use triq_obs::{Phase, Recorder, Timer};
use triq_owl2ql::tau_db;
use triq_rdf::{Graph, Triple};
use triq_sparql::{GraphPattern, MappingSet, SelectQuery};
use triq_translate::{
    decode_tuple_vars, regime_chase_config, translate_pattern, translate_pattern_all,
    translate_pattern_u, RegimeAnswers,
};

use crate::{TriqLiteQuery, TriqQuery};

/// The evaluation semantics for SPARQL patterns (§3.1, §5.2, §5.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Semantics {
    /// Plain SPARQL over the graph as-is (Theorem 5.2).
    #[default]
    Plain,
    /// The OWL 2 QL core direct-semantics entailment regime J·K^U, with
    /// the active-domain restriction (Theorem 5.3).
    RegimeU,
    /// J·K^All (§5.3): the regime without the active-domain restriction
    /// on blank nodes.
    RegimeAll,
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Builder for [`Engine`]: chase policy, default semantics and rule
/// libraries.
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    plain_config: ChaseConfig,
    regime_config: ChaseConfig,
    default_semantics: Semantics,
    libraries: Vec<Program>,
    recorder: Arc<dyn Recorder>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            plain_config: ChaseConfig::default(),
            regime_config: regime_chase_config(),
            default_semantics: Semantics::Plain,
            libraries: Vec::new(),
            recorder: Arc::new(triq_obs::Noop),
        }
    }
}

impl EngineBuilder {
    /// A builder with the default policy: skolem chase for plain /
    /// datalog queries, restricted chase for the entailment regimes
    /// (see [`regime_chase_config`]), plain semantics, no libraries.
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Replaces the chase configuration for **all** query kinds.
    pub fn chase_config(mut self, config: ChaseConfig) -> EngineBuilder {
        self.plain_config = config;
        self.regime_config = config;
        self
    }

    /// Sets the existential strategy for all query kinds.
    pub fn existential_strategy(mut self, strategy: ExistentialStrategy) -> EngineBuilder {
        self.plain_config.strategy = strategy;
        self.regime_config.strategy = strategy;
        self
    }

    /// Sets the null invention-depth bound for all query kinds.
    pub fn max_null_depth(mut self, depth: u32) -> EngineBuilder {
        self.plain_config.max_null_depth = depth;
        self.regime_config.max_null_depth = depth;
        self
    }

    /// Sets the atom budget for all query kinds.
    pub fn max_atoms(mut self, atoms: usize) -> EngineBuilder {
        self.plain_config.max_atoms = atoms;
        self.regime_config.max_atoms = atoms;
        self
    }

    /// Sets the morsel worker count for all query kinds (`0` = one
    /// worker per hardware thread, the default).
    pub fn chase_threads(mut self, threads: usize) -> EngineBuilder {
        self.plain_config.chase_threads = threads;
        self.regime_config.chase_threads = threads;
        self
    }

    /// Sets the demand-evaluation mode for all query kinds: whether
    /// point queries may be answered by chasing the magic-set rewrite of
    /// the program (`triq_datalog::demand`) instead of materializing the
    /// full fixpoint. The default is [`DemandMode::Auto`].
    pub fn demand(mut self, mode: DemandMode) -> EngineBuilder {
        self.plain_config.demand = mode;
        self.regime_config.demand = mode;
        self
    }

    /// Sets the semantics used when a SPARQL query is prepared without an
    /// explicit one.
    pub fn default_semantics(mut self, semantics: Semantics) -> EngineBuilder {
        self.default_semantics = semantics;
        self
    }

    /// Adds a rule library (a fixed set of rules in the sense of §2, e.g.
    /// the `owl:sameAs` closure) that is unioned into every prepared
    /// program. Libraries must not redefine `triple` recursively in a way
    /// that breaks stratification.
    pub fn library(mut self, library: Program) -> EngineBuilder {
        self.libraries.push(library);
        self
    }

    /// Installs a telemetry recorder (e.g. [`triq_obs::Telemetry`]):
    /// prepare/execute/apply spans and every chase phase timing of
    /// queries prepared by this engine report through it. The default
    /// is the zero-cost no-op recorder; chase outcomes are byte-
    /// identical either way.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> EngineBuilder {
        self.recorder = recorder;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                plain_config: self.plain_config,
                regime_config: self.regime_config,
                default_semantics: self.default_semantics,
                libraries: self.libraries,
                stats: EngineCounters::default(),
                recorder: self.recorder,
            }),
        }
    }
}

#[derive(Debug, Default)]
struct EngineCounters {
    prepared_queries: AtomicUsize,
    executions: AtomicUsize,
    chase_runs: AtomicUsize,
    cache_hits: AtomicUsize,
    atoms_derived: AtomicU64,
    join_probes: AtomicU64,
    parallel_strata: AtomicUsize,
    deltas_applied: AtomicUsize,
    atoms_overdeleted: AtomicU64,
    atoms_rederived: AtomicU64,
    plans_compiled: AtomicU64,
    replans: AtomicU64,
    index_builds: AtomicU64,
    index_probes: AtomicU64,
    morsel_batches: AtomicU64,
    kernel_filter_rows: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    last_checkpoint_version: AtomicU64,
    recovery_replayed_ops: AtomicU64,
    checkpoint_failures: AtomicU64,
    demand_rewrites: AtomicU64,
    demand_fallbacks: AtomicU64,
    demand_atoms_saved: AtomicU64,
    requests_rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
}

impl EngineCounters {
    /// Folds one incremental delta application into the counters.
    fn absorb_delta(&self, summary: &triq_datalog::DeltaSummary) {
        self.deltas_applied.fetch_add(1, Ordering::Relaxed);
        self.atoms_overdeleted
            .fetch_add(summary.overdeleted as u64, Ordering::Relaxed);
        self.atoms_rederived
            .fetch_add(summary.rederived as u64, Ordering::Relaxed);
        self.atoms_derived
            .fetch_add(summary.inserted as u64, Ordering::Relaxed);
        self.plans_compiled
            .fetch_add(summary.plans_compiled as u64, Ordering::Relaxed);
        self.replans
            .fetch_add(summary.replans as u64, Ordering::Relaxed);
        self.index_builds
            .fetch_add(summary.index_builds as u64, Ordering::Relaxed);
        self.index_probes
            .fetch_add(summary.index_probes, Ordering::Relaxed);
        self.morsel_batches
            .fetch_add(summary.morsel_batches, Ordering::Relaxed);
        self.kernel_filter_rows
            .fetch_add(summary.kernel_filter_rows, Ordering::Relaxed);
        if summary.full_rebuild {
            // Null-entangled deletion: the delta was answered by the
            // automatic full re-chase fallback.
            self.chase_runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds one from-scratch chase (a view's first build) into the
    /// counters.
    fn absorb_built(&self, stats: &triq_datalog::ChaseStats) {
        self.chase_runs.fetch_add(1, Ordering::Relaxed);
        self.atoms_derived
            .fetch_add(stats.derived as u64, Ordering::Relaxed);
        self.join_probes.fetch_add(stats.probes, Ordering::Relaxed);
        self.parallel_strata
            .fetch_add(stats.parallel_strata, Ordering::Relaxed);
        self.plans_compiled
            .fetch_add(stats.plans_compiled as u64, Ordering::Relaxed);
        self.replans
            .fetch_add(stats.replans as u64, Ordering::Relaxed);
        self.index_builds
            .fetch_add(stats.index_builds as u64, Ordering::Relaxed);
        self.index_probes
            .fetch_add(stats.index_probes, Ordering::Relaxed);
        self.morsel_batches
            .fetch_add(stats.morsel_batches, Ordering::Relaxed);
        self.kernel_filter_rows
            .fetch_add(stats.kernel_filter_rows, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct EngineInner {
    plain_config: ChaseConfig,
    regime_config: ChaseConfig,
    default_semantics: Semantics,
    libraries: Vec<Program>,
    stats: EngineCounters,
    /// Telemetry hook shared by everything this engine prepares (and by
    /// the persistence layer through [`Engine::recorder`]).
    recorder: Arc<dyn Recorder>,
}

/// Usage counters of an [`Engine`] (a point-in-time snapshot).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries prepared (each pays translation + stratification once).
    pub prepared_queries: usize,
    /// Prepared-query executions (including cache hits).
    pub executions: usize,
    /// Chase runs actually performed.
    pub chase_runs: usize,
    /// Executions answered from a session's chase-state cache.
    pub cache_hits: usize,
    /// Atoms derived across all chase runs (beyond the database seeds).
    pub atoms_derived: u64,
    /// Candidate tuples examined by the chase join loops.
    pub join_probes: u64,
    /// Strata evaluated with parallel per-rule match collection.
    pub parallel_strata: usize,
    /// Session mutations absorbed incrementally (delta-chase inserts +
    /// DRed deletes) instead of discarding the materialization.
    pub deltas_applied: usize,
    /// Atoms over-deleted by DRed maintenance (support cones and
    /// negation victims) across all sessions.
    pub atoms_overdeleted: u64,
    /// Over-deleted atoms that rederivation restored.
    pub atoms_rederived: u64,
    /// Join plans compiled from live statistics by the chase's
    /// cost-based planner (first stats-driven planning of a rule within
    /// a run).
    pub plans_compiled: u64,
    /// Plans recomputed at stratum entry after cardinality drift.
    pub replans: u64,
    /// On-demand joint hash indexes built on relations (rebuilds after
    /// tombstone/compaction invalidation count again).
    pub index_builds: u64,
    /// Join probes served by hash indexes (whole-tuple probes at
    /// fully-bound plan positions plus joint-index lookups).
    pub index_probes: u64,
    /// Morsel match batches collected by the parallel chase (each is one
    /// fixed-size slice of a rule's semi-naive pivot window matched on a
    /// worker thread).
    pub morsel_batches: u64,
    /// Rows screened by the vectorized column kernels (leading-scan
    /// constant and repeated-variable filters).
    pub kernel_filter_rows: u64,
    /// Write-ahead-log records appended by the durability layer (one per
    /// acknowledged update batch when persistence is enabled).
    pub wal_records: u64,
    /// Total bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Snapshot checkpoints written by the durability layer.
    pub snapshots_written: u64,
    /// Op-log version of the most recent checkpoint (0 before the first).
    pub last_checkpoint_version: u64,
    /// Operations replayed from the WAL tail during startup recovery.
    pub recovery_replayed_ops: u64,
    /// Checkpoint attempts that failed (the WAL keeps covering the
    /// state; the durability layer backs off before retrying). A
    /// non-zero value that keeps growing means the data directory's
    /// disk needs attention.
    pub checkpoint_failures: u64,
    /// Successful magic-set rewrites: prepared queries that carry a
    /// demand plan (`triq_datalog::demand`) and can answer from the
    /// demanded cone instead of the full fixpoint.
    pub demand_rewrites: u64,
    /// Rewrite attempts that declined (unbound query, demanded ∃-rule,
    /// lost stratification, program shape) plus demand chases that fell
    /// back to a full build at execution time.
    pub demand_fallbacks: u64,
    /// Atoms the demand evaluations did *not* derive, summed over demand
    /// view builds whose full-fixpoint baseline is known (the same plan
    /// was also chased in full at some point — e.g. under
    /// [`DemandMode::Off`] in an A/B run). Purely informational: `0`
    /// when no baseline was ever observed.
    pub demand_atoms_saved: u64,
    /// Read requests rejected up front by the serving layer's concurrency
    /// gate (`max_concurrent_reads`) — each was answered `503 E-RESOURCE`
    /// without touching the chase.
    pub requests_rejected: u64,
    /// Read requests aborted mid-evaluation because their wall-clock
    /// deadline (`read_deadline_ms`) passed — each was answered
    /// `503 E-RESOURCE`; completed answers are never affected.
    pub deadline_exceeded: u64,
}

impl EngineStats {
    /// The counters as a JSON object (the `GET /stats` payload of the
    /// server wire protocol — see `docs/PROTOCOL.md`). Member names match
    /// the field names exactly.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("prepared_queries", Json::U64(self.prepared_queries as u64)),
            ("executions", Json::U64(self.executions as u64)),
            ("chase_runs", Json::U64(self.chase_runs as u64)),
            ("cache_hits", Json::U64(self.cache_hits as u64)),
            ("atoms_derived", Json::U64(self.atoms_derived)),
            ("join_probes", Json::U64(self.join_probes)),
            ("parallel_strata", Json::U64(self.parallel_strata as u64)),
            ("deltas_applied", Json::U64(self.deltas_applied as u64)),
            ("atoms_overdeleted", Json::U64(self.atoms_overdeleted)),
            ("atoms_rederived", Json::U64(self.atoms_rederived)),
            ("plans_compiled", Json::U64(self.plans_compiled)),
            ("replans", Json::U64(self.replans)),
            ("index_builds", Json::U64(self.index_builds)),
            ("index_probes", Json::U64(self.index_probes)),
            ("morsel_batches", Json::U64(self.morsel_batches)),
            ("kernel_filter_rows", Json::U64(self.kernel_filter_rows)),
            ("wal_records", Json::U64(self.wal_records)),
            ("wal_bytes", Json::U64(self.wal_bytes)),
            ("snapshots_written", Json::U64(self.snapshots_written)),
            (
                "last_checkpoint_version",
                Json::U64(self.last_checkpoint_version),
            ),
            (
                "recovery_replayed_ops",
                Json::U64(self.recovery_replayed_ops),
            ),
            ("checkpoint_failures", Json::U64(self.checkpoint_failures)),
            ("demand_rewrites", Json::U64(self.demand_rewrites)),
            ("demand_fallbacks", Json::U64(self.demand_fallbacks)),
            ("demand_atoms_saved", Json::U64(self.demand_atoms_saved)),
            ("requests_rejected", Json::U64(self.requests_rejected)),
            ("deadline_exceeded", Json::U64(self.deadline_exceeded)),
        ])
    }
}

/// The top-level handle: policy + prepared-query factory.
///
/// Cloning an `Engine` is cheap (an [`Arc`] bump) and clones share
/// statistics; sessions and prepared queries keep their engine alive.
#[derive(Clone, Debug)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        EngineBuilder::new().build()
    }
}

/// Global source of prepared-query identities (used as session cache
/// keys).
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

impl Engine {
    /// An engine with the default policy.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The semantics used when none is given at prepare time.
    pub fn default_semantics(&self) -> Semantics {
        self.inner.default_semantics
    }

    /// A snapshot of the usage counters.
    pub fn stats(&self) -> EngineStats {
        let s = &self.inner.stats;
        EngineStats {
            prepared_queries: s.prepared_queries.load(Ordering::Relaxed),
            executions: s.executions.load(Ordering::Relaxed),
            chase_runs: s.chase_runs.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            atoms_derived: s.atoms_derived.load(Ordering::Relaxed),
            join_probes: s.join_probes.load(Ordering::Relaxed),
            parallel_strata: s.parallel_strata.load(Ordering::Relaxed),
            deltas_applied: s.deltas_applied.load(Ordering::Relaxed),
            atoms_overdeleted: s.atoms_overdeleted.load(Ordering::Relaxed),
            atoms_rederived: s.atoms_rederived.load(Ordering::Relaxed),
            plans_compiled: s.plans_compiled.load(Ordering::Relaxed),
            replans: s.replans.load(Ordering::Relaxed),
            index_builds: s.index_builds.load(Ordering::Relaxed),
            index_probes: s.index_probes.load(Ordering::Relaxed),
            morsel_batches: s.morsel_batches.load(Ordering::Relaxed),
            kernel_filter_rows: s.kernel_filter_rows.load(Ordering::Relaxed),
            wal_records: s.wal_records.load(Ordering::Relaxed),
            wal_bytes: s.wal_bytes.load(Ordering::Relaxed),
            snapshots_written: s.snapshots_written.load(Ordering::Relaxed),
            last_checkpoint_version: s.last_checkpoint_version.load(Ordering::Relaxed),
            recovery_replayed_ops: s.recovery_replayed_ops.load(Ordering::Relaxed),
            checkpoint_failures: s.checkpoint_failures.load(Ordering::Relaxed),
            demand_rewrites: s.demand_rewrites.load(Ordering::Relaxed),
            demand_fallbacks: s.demand_fallbacks.load(Ordering::Relaxed),
            demand_atoms_saved: s.demand_atoms_saved.load(Ordering::Relaxed),
            requests_rejected: s.requests_rejected.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
        }
    }

    /// The engine's telemetry recorder (the zero-cost no-op unless
    /// [`EngineBuilder::recorder`] installed one). The persistence and
    /// server layers report through this same hook so one `/metrics`
    /// scrape covers the whole stack.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.inner.recorder
    }

    /// Persistence hook: one WAL record of `bytes` bytes was appended
    /// (called by the durability layer, surfaced through
    /// [`Engine::stats`]).
    pub fn record_wal_append(&self, bytes: u64) {
        self.inner.stats.wal_records.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .wal_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Persistence hook: a snapshot checkpoint at `version` was written.
    pub fn record_checkpoint(&self, version: u64) {
        self.inner
            .stats
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .last_checkpoint_version
            .store(version, Ordering::Relaxed);
    }

    /// Persistence hook: a checkpoint attempt failed. The WAL still
    /// covers the state; the durability layer backs off and retries.
    pub fn record_checkpoint_failure(&self) {
        self.inner
            .stats
            .checkpoint_failures
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Persistence hook: `ops` operations were replayed from the WAL
    /// tail during startup recovery.
    pub fn record_recovery_replayed(&self, ops: u64) {
        self.inner
            .stats
            .recovery_replayed_ops
            .fetch_add(ops, Ordering::Relaxed);
    }

    /// Serving hook: a read request was rejected up front by the
    /// concurrency gate (`max_concurrent_reads`) with `503 E-RESOURCE`.
    pub fn record_read_rejected(&self) {
        self.inner
            .stats
            .requests_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Serving hook: a read request blew its wall-clock deadline
    /// (`read_deadline_ms`) mid-evaluation and was answered
    /// `503 E-RESOURCE`.
    pub fn record_deadline_exceeded(&self) {
        self.inner
            .stats
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// An empty session.
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            graph: None,
            db: Database::new(),
            ops: OpLog::default(),
            views: Mutex::new(HashMap::new()),
            restored: Mutex::new(HashMap::new()),
        }
    }

    /// A session over an RDF graph, bridged through `τ_db` (§5.1) once.
    pub fn load_graph(&self, graph: Graph) -> Session {
        Session {
            engine: self.clone(),
            db: tau_db(&graph),
            graph: Some(graph),
            ops: OpLog::default(),
            views: Mutex::new(HashMap::new()),
            restored: Mutex::new(HashMap::new()),
        }
    }

    /// A session over a graph given in Turtle-lite text.
    pub fn load_turtle(&self, turtle: &str) -> Result<Session> {
        Ok(self.load_graph(triq_rdf::parse_turtle(turtle)?))
    }

    /// A session over a raw Datalog database.
    pub fn load_database(&self, db: Database) -> Session {
        Session {
            engine: self.clone(),
            graph: None,
            db,
            ops: OpLog::default(),
            views: Mutex::new(HashMap::new()),
            restored: Mutex::new(HashMap::new()),
        }
    }

    /// Prepares a query: parsing, translation (§5), classification
    /// (Def. 4.2 / 6.1), stratification and rule compilation happen here,
    /// exactly once; the result executes against any number of sessions.
    pub fn prepare<Q: IntoQuery>(&self, query: Q) -> Result<PreparedQuery> {
        let spec = query.into_query()?;
        self.prepare_spec(spec)
    }

    fn prepare_spec(&self, spec: QuerySpec) -> Result<PreparedQuery> {
        let rec = &*self.inner.recorder;
        let _span = triq_obs::span(rec, "prepare", 0);
        let _t = Timer::start(rec, Phase::Prepare);
        let (program, output, decode) = match spec {
            QuerySpec::Sparql { pattern, semantics } => {
                let semantics = semantics.unwrap_or(self.inner.default_semantics);
                let translated = match semantics {
                    Semantics::Plain => translate_pattern(&pattern)?,
                    Semantics::RegimeU => translate_pattern_u(&pattern)?,
                    Semantics::RegimeAll => translate_pattern_all(&pattern)?,
                };
                let decode = SparqlDecode {
                    vars: translated.vars,
                    semantics,
                };
                (translated.program, translated.answer_pred, Some(decode))
            }
            QuerySpec::Datalog { program, output } => (program, output, None),
        };
        // Union the engine's rule libraries into the prepared program.
        let mut program = program;
        for lib in &self.inner.libraries {
            program = lib.union(&program);
        }
        // §3.2: the output predicate must not occur in any rule body.
        if program.occurs_in_body(output) {
            return Err(TriqError::OutputInBody(format!(
                "output predicate {output} occurs in a rule body (§3.2 \
                 forbids this)"
            )));
        }
        let classification = classify_program(&program);
        let config = match &decode {
            Some(d) if d.semantics != Semantics::Plain => self.inner.regime_config,
            _ => self.inner.plain_config,
        };
        let mut runner = ChaseRunner::new(program, config)?;
        runner.set_recorder(self.inner.recorder.clone());
        self.inner
            .stats
            .prepared_queries
            .fetch_add(1, Ordering::Relaxed);
        let fingerprint =
            triq_datalog::persist::plan_fingerprint(runner.program(), &runner.config());
        let demand = self.attach_demand(&runner, output);
        Ok(PreparedQuery {
            engine: self.clone(),
            plan_id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
            fingerprint,
            runner,
            output,
            classification,
            decode,
            demand,
            full_derived: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Attempts the magic-set rewrite for a freshly compiled plan.
    /// `None` means "evaluate the original program" — either demand is
    /// off for this plan or the rewrite reported a fallback (counted in
    /// `demand_fallbacks`).
    fn attach_demand(&self, runner: &ChaseRunner, output: Symbol) -> Option<Arc<DemandPlan>> {
        let config = runner.config();
        if config.demand == DemandMode::Off {
            return None;
        }
        let rewritten = match demand::rewrite(runner.program(), output) {
            Ok(r) => r,
            Err(_fallback) => {
                self.inner
                    .stats
                    .demand_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // The rewrite is validated and stratified, so compilation only
        // fails on resource-class issues; treat any failure as one more
        // fallback rather than failing the prepare.
        match ChaseRunner::new(rewritten.program, config) {
            Ok(mut drunner) => {
                drunner.set_recorder(self.inner.recorder.clone());
                let fingerprint =
                    triq_datalog::persist::plan_fingerprint(drunner.program(), &config);
                self.inner
                    .stats
                    .demand_rewrites
                    .fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(DemandPlan {
                    runner: drunner,
                    seed: rewritten.seed,
                    fingerprint,
                }))
            }
            Err(_) => {
                self.inner
                    .stats
                    .demand_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// The compiled magic-set rewrite of a prepared query: a runner over the
/// rewritten program, the extensional seed fact its demand propagation
/// fires from, and the rewrite's own durable fingerprint. Two queries
/// that differ only in their bound constants compile to different
/// rewritten program texts (the constants appear in the seed rules), so
/// their fingerprints — and therefore their persisted views — never
/// collide.
#[derive(Debug)]
struct DemandPlan {
    runner: ChaseRunner,
    seed: Fact,
    fingerprint: u64,
}

// ---------------------------------------------------------------------------
// IntoQuery
// ---------------------------------------------------------------------------

/// A query in some source language, normalized for [`Engine::prepare`].
#[derive(Clone, Debug)]
pub enum QuerySpec {
    /// A SPARQL graph pattern, optionally pinned to a semantics (else the
    /// engine default applies).
    Sparql {
        /// The pattern.
        pattern: GraphPattern,
        /// `None` = use [`Engine::default_semantics`].
        semantics: Option<Semantics>,
    },
    /// A Datalog∃,¬s,⊥ query `(Π, p)`.
    Datalog {
        /// The program Π.
        program: Program,
        /// The output predicate `p`.
        output: Symbol,
    },
}

/// Conversion into a [`QuerySpec`] — the single doorway every query
/// language enters the engine through. Implemented for SPARQL patterns
/// and `SELECT` queries (optionally paired with a [`Semantics`]), for
/// validated [`TriqQuery`] / [`TriqLiteQuery`] programs, for raw
/// [`triq_datalog::Query`] values and `(Program, output)` pairs, and for
/// source text via the [`Sparql`] and [`Datalog`] wrappers.
pub trait IntoQuery {
    /// Normalizes `self`.
    fn into_query(self) -> Result<QuerySpec>;
}

/// SPARQL `SELECT` source text, e.g. `Sparql("SELECT ?X WHERE { ?X p ?Y }")`.
#[derive(Clone, Copy, Debug)]
pub struct Sparql<'a>(pub &'a str);

/// Datalog∃,¬s,⊥ source text plus output predicate, e.g.
/// `Datalog("triple(?X, p, ?Y) -> out(?X).", "out")`.
#[derive(Clone, Copy, Debug)]
pub struct Datalog<'a>(pub &'a str, pub &'a str);

impl IntoQuery for QuerySpec {
    fn into_query(self) -> Result<QuerySpec> {
        Ok(self)
    }
}

impl IntoQuery for Sparql<'_> {
    fn into_query(self) -> Result<QuerySpec> {
        triq_sparql::parse_select(self.0)?.into_query()
    }
}

impl IntoQuery for Datalog<'_> {
    fn into_query(self) -> Result<QuerySpec> {
        let program = triq_datalog::parse_program(self.0)?;
        Ok(QuerySpec::Datalog {
            program,
            output: triq_common::intern(self.1),
        })
    }
}

impl IntoQuery for GraphPattern {
    fn into_query(self) -> Result<QuerySpec> {
        self.validate()?;
        Ok(QuerySpec::Sparql {
            pattern: self,
            semantics: None,
        })
    }
}

impl IntoQuery for (GraphPattern, Semantics) {
    fn into_query(self) -> Result<QuerySpec> {
        self.0.validate()?;
        Ok(QuerySpec::Sparql {
            pattern: self.0,
            semantics: Some(self.1),
        })
    }
}

impl IntoQuery for &GraphPattern {
    fn into_query(self) -> Result<QuerySpec> {
        self.clone().into_query()
    }
}

impl IntoQuery for (&GraphPattern, Semantics) {
    fn into_query(self) -> Result<QuerySpec> {
        (self.0.clone(), self.1).into_query()
    }
}

impl IntoQuery for SelectQuery {
    fn into_query(self) -> Result<QuerySpec> {
        let pattern = GraphPattern::Select(self.vars, Box::new(self.pattern));
        pattern.into_query()
    }
}

impl IntoQuery for (SelectQuery, Semantics) {
    fn into_query(self) -> Result<QuerySpec> {
        let QuerySpec::Sparql { pattern, .. } = self.0.into_query()? else {
            unreachable!("SelectQuery normalizes to a SPARQL spec");
        };
        Ok(QuerySpec::Sparql {
            pattern,
            semantics: Some(self.1),
        })
    }
}

impl IntoQuery for triq_datalog::Query {
    fn into_query(self) -> Result<QuerySpec> {
        Ok(QuerySpec::Datalog {
            program: self.program,
            output: self.output,
        })
    }
}

impl IntoQuery for (Program, &str) {
    fn into_query(self) -> Result<QuerySpec> {
        Ok(QuerySpec::Datalog {
            program: self.0,
            output: triq_common::intern(self.1),
        })
    }
}

impl IntoQuery for TriqQuery {
    fn into_query(self) -> Result<QuerySpec> {
        self.query().clone().into_query()
    }
}

impl IntoQuery for TriqLiteQuery {
    fn into_query(self) -> Result<QuerySpec> {
        self.query().clone().into_query()
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Upper bound on maintained views per session. A view holds the whole
/// materialized instance (plus maintenance state), so the cache is kept
/// small; when full it is cleared wholesale (coarse, but bounded —
/// recomputation is always correct).
const MAX_CACHED_OUTCOMES: usize = 32;

/// Upper bound on unabsorbed ops in a session's mutation log. When it is
/// exceeded, views too far behind are evicted (they rebuild on their next
/// execution) so the absorbed prefix can be pruned.
const MAX_PENDING_OPS: usize = 4096;

/// The extensional mutation log of a session: every
/// `insert_*`/`remove_*`/`add_fact` call appends one operation here
/// (`true` = insert). Each maintained view remembers the log *version*
/// it is synced to; executing a prepared query replays only the suffix
/// the view has not seen, as one netted [`Delta`]. The log prefix every
/// view has absorbed is pruned on the next mutation.
#[derive(Debug, Default)]
pub(crate) struct OpLog {
    /// Version of the first entry in `ops`.
    pub(crate) base: u64,
    pub(crate) ops: Vec<(bool, Fact)>,
}

impl OpLog {
    pub(crate) fn version(&self) -> u64 {
        self.base + self.ops.len() as u64
    }

    /// The net delta from log version `from` to the head: per fact, the
    /// **last** operation wins (insert-then-delete nets to a delete, and
    /// vice versa — presence is set semantics).
    pub(crate) fn delta_since(&self, from: u64) -> Delta {
        let start = (from.saturating_sub(self.base)) as usize;
        let mut last: HashMap<&Fact, bool> = HashMap::new();
        for (insert, fact) in &self.ops[start..] {
            last.insert(fact, *insert);
        }
        let mut delta = Delta::new();
        for (fact, insert) in last {
            if insert {
                delta.add_insert(fact.clone());
            } else {
                delta.add_delete(fact.clone());
            }
        }
        delta
    }
}

/// A maintained view plus the op-log version it reflects. `view` is
/// `None` before the first successful build and after an apply error
/// (the next execution rebuilds from the session database).
#[derive(Debug)]
pub(crate) struct ViewEntry {
    pub(crate) view: Option<MaterializedView>,
    pub(crate) synced: u64,
}

/// One lock per plan: the outer map mutex is held only for the lookup /
/// insert, so a long chase or delta application on one prepared query
/// never blocks executions of other queries against the same session.
pub(crate) type ViewCell = Arc<Mutex<ViewEntry>>;

/// Loaded data plus maintained chase state.
///
/// A session belongs to the [`Engine`] that created it. For every
/// prepared query executed against it, the session keeps a
/// [`MaterializedView`] — the chase fixpoint plus the state needed to
/// update it in place. Re-executing an unchanged session is a lookup;
/// executing after mutations replays only the pending operations as an
/// incremental delta (semi-naive insert frontiers, DRed deletes) instead
/// of re-running the chase. [`Session::invalidate`] remains the explicit
/// full-rebuild escape hatch, and null-entangled deletions take it
/// automatically.
#[derive(Debug)]
pub struct Session {
    pub(crate) engine: Engine,
    pub(crate) graph: Option<Graph>,
    pub(crate) db: Database,
    pub(crate) ops: OpLog,
    pub(crate) views: Mutex<HashMap<u64, ViewCell>>,
    /// Views recovered from a persistence snapshot, keyed by durable
    /// plan fingerprint (`triq_datalog::persist::plan_fingerprint`) —
    /// in-process plan ids do not survive a restart, so recovered views
    /// wait here until an execution of a matching prepared query
    /// *adopts* one into `views` (no chase). They are kept synced with
    /// the op log like live views and participate in log pruning.
    pub(crate) restored: Mutex<HashMap<u64, RestoredView>>,
}

/// A recovered [`MaterializedView`] awaiting adoption, plus the op-log
/// version it reflects.
#[derive(Debug)]
pub(crate) struct RestoredView {
    pub(crate) view: MaterializedView,
    pub(crate) synced: u64,
}

impl Session {
    /// The engine this session belongs to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The loaded RDF graph, if the session was created from one.
    pub fn graph(&self) -> Option<&Graph> {
        self.graph.as_ref()
    }

    /// The underlying Datalog database (`τ_db(G)` for graph sessions).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Adds an RDF triple (both to the graph, if any, and to the `τ_db`
    /// bridge). Maintained chase state absorbs the change incrementally
    /// at the next execution.
    pub fn insert_triple(&mut self, s: &str, p: &str, o: &str) {
        if let Some(g) = &mut self.graph {
            g.insert_strs(s, p, o);
        }
        self.db.add_fact("triple", &[s, p, o]);
        self.record(true, Fact::from_strs("triple", &[s, p, o]));
    }

    /// Removes an RDF triple (graph and `τ_db` bridge). Returns `true`
    /// if it was present; maintained chase state absorbs the deletion
    /// incrementally (delete-and-rederive) at the next execution.
    pub fn remove_triple(&mut self, s: &str, p: &str, o: &str) -> bool {
        if let Some(g) = &mut self.graph {
            g.remove_strs(s, p, o);
        }
        let present = self.db.remove_fact("triple", &[s, p, o]);
        if present {
            self.record(false, Fact::from_strs("triple", &[s, p, o]));
        }
        present
    }

    /// Adds a raw Datalog fact; maintained chase state absorbs it
    /// incrementally at the next execution.
    pub fn add_fact(&mut self, pred: &str, constants: &[&str]) {
        self.db.add_fact(pred, constants);
        self.record(true, Fact::from_strs(pred, constants));
    }

    /// Removes a raw Datalog fact; returns `true` if it was present.
    pub fn remove_fact(&mut self, pred: &str, constants: &[&str]) -> bool {
        let present = self.db.remove_fact(pred, constants);
        if present {
            self.record(false, Fact::from_strs(pred, constants));
        }
        present
    }

    /// Appends to the op log and prunes the prefix every live view has
    /// already absorbed. Runs under `&mut self`, so no execution (and no
    /// entry lock) can be active concurrently.
    fn record(&mut self, insert: bool, fact: Fact) {
        self.ops.ops.push((insert, fact));
        let version = self.ops.version();
        let views = self.views.get_mut().expect("session views poisoned");
        let restored = self.restored.get_mut().expect("restored views poisoned");
        // A view that has sat out thousands of mutations is cheaper to
        // rebuild than to keep the log suffix alive for: evict far-behind
        // views so the log stays bounded even when a prepared query goes
        // idle on a long-lived session. Restored (not-yet-adopted) views
        // are held to the same bound.
        if self.ops.ops.len() > MAX_PENDING_OPS {
            views.retain(|_, cell| {
                let entry = cell.lock().expect("session view poisoned");
                entry.view.is_some()
                    && version.saturating_sub(entry.synced) <= (MAX_PENDING_OPS / 2) as u64
            });
            restored
                .retain(|_, rv| version.saturating_sub(rv.synced) <= (MAX_PENDING_OPS / 2) as u64);
        }
        let min_synced = views
            .values()
            .map(|cell| {
                let entry = cell.lock().expect("session view poisoned");
                // An entry without a view rebuilds from the database and
                // needs no log suffix.
                if entry.view.is_some() {
                    entry.synced
                } else {
                    version
                }
            })
            .chain(restored.values().map(|rv| rv.synced))
            .min()
            .unwrap_or(version);
        let drop = min_synced.saturating_sub(self.ops.base) as usize;
        if drop > 0 {
            self.ops.ops.drain(..drop);
            self.ops.base = min_synced;
        }
    }

    /// Applies a whole [`Delta`] to the session's extensional data:
    /// deletes first, then inserts (the [`Delta`] contract), with
    /// `triple/3` facts mirrored into the RDF graph (graph deletions are
    /// batched into a single reindex pass via [`Graph::remove_all`]).
    /// Returns `(inserted, deleted)` — the counts of facts that actually
    /// changed (redundant operations are no-ops). Maintained views absorb
    /// the change incrementally, exactly as for the single-fact mutators.
    pub fn apply_delta(&mut self, delta: &Delta) -> (usize, usize) {
        let triple = triq_common::intern("triple");
        let as_triple = |f: &Fact| {
            (f.pred == triple && f.args.len() == 3)
                .then(|| Triple::new(f.args[0], f.args[1], f.args[2]))
        };
        let mut graph_dels: Vec<Triple> = Vec::new();
        let mut deleted = 0usize;
        for f in &delta.deletes {
            if self.db.remove_row(f.pred, &f.args) {
                deleted += 1;
                graph_dels.extend(as_triple(f));
                self.record(false, f.clone());
            }
        }
        if !graph_dels.is_empty() {
            if let Some(g) = &mut self.graph {
                g.remove_all(graph_dels);
            }
        }
        let mut inserted = 0usize;
        for f in &delta.inserts {
            if self.db.add_row(f.pred, &f.args) {
                inserted += 1;
                if let (Some(t), Some(g)) = (as_triple(f), self.graph.as_mut()) {
                    g.insert(t);
                }
                self.record(true, f.clone());
            }
        }
        (inserted, deleted)
    }

    /// Brings every maintained view up to the head of the op log and
    /// returns a snapshot handle per plan — the publication step of the
    /// [`SharedSession`] writer. Views whose delta application fails are
    /// discarded (they rebuild on their next execution) rather than
    /// poisoning the whole session; entries without a built view are
    /// dropped likewise.
    fn sync_all_views(&mut self) -> HashMap<u64, Arc<ChaseOutcome>> {
        let version = self.ops.version();
        let ops = &self.ops;
        let stats = &self.engine.inner.stats;
        let views = self.views.get_mut().expect("session views poisoned");
        let mut outcomes = HashMap::new();
        views.retain(|&plan_id, cell| {
            let mut entry = cell.lock().expect("session view poisoned");
            let synced = entry.synced;
            let Some(view) = entry.view.as_mut() else {
                return false;
            };
            if synced != version {
                let delta = ops.delta_since(synced);
                match view.apply(&delta) {
                    Ok(summary) => stats.absorb_delta(&summary),
                    Err(_) => return false,
                }
            }
            outcomes.insert(plan_id, view.snapshot());
            entry.synced = version;
            true
        });
        // Recovered views awaiting adoption ride along: keeping them at
        // the head means a checkpoint taken now can persist them and the
        // op-log prefix stays prunable. One that cannot absorb its suffix
        // is dropped (the matching query will simply chase from scratch).
        let restored = self.restored.get_mut().expect("restored views poisoned");
        restored.retain(|_, rv| {
            if rv.synced == version {
                return true;
            }
            let delta = ops.delta_since(rv.synced);
            match rv.view.apply(&delta) {
                Ok(summary) => {
                    stats.absorb_delta(&summary);
                    rv.synced = version;
                    true
                }
                Err(_) => false,
            }
        });
        outcomes
    }

    /// Converts this session into a [`SharedSession`] — the concurrent,
    /// snapshot-isolated form served by `triq-server`. Existing
    /// maintained views carry over and appear in the first published
    /// snapshot.
    pub fn into_shared(self) -> SharedSession {
        SharedSession::new(self)
    }

    /// Drops all maintained chase state: the next execution of any
    /// prepared query re-chases from scratch. This is the explicit
    /// full-rebuild escape hatch; plain mutations no longer need it.
    pub fn invalidate(&mut self) {
        self.views
            .get_mut()
            .expect("session views poisoned")
            .clear();
        self.restored
            .get_mut()
            .expect("restored views poisoned")
            .clear();
        self.ops.base = self.ops.version();
        self.ops.ops.clear();
    }

    /// The current op-log version: the number of effective extensional
    /// operations this session has absorbed over its lifetime (the
    /// version readers of a [`SharedSession`] observe, and the version
    /// the durability layer stamps WAL records and snapshots with).
    pub fn version(&self) -> u64 {
        self.ops.version()
    }

    /// Convenience mirror of [`PreparedQuery::execute`].
    pub fn execute(&self, query: &PreparedQuery) -> Result<Answers> {
        query.execute(self)
    }

    /// The maintained outcome for `query`, building or delta-syncing its
    /// view as needed. The session-wide map lock is held only for the
    /// lookup; the (possibly long) chase or delta application runs under
    /// the plan's own entry lock.
    ///
    /// When the query carries a magic-set rewrite ([`DemandPlan`]) and no
    /// live view exists yet, the first build chases the rewritten program
    /// over the database extended with the demand seed fact instead of
    /// chasing the full program — later mutations delta-sync that view
    /// exactly like any other. Under [`DemandMode::Force`] a demand-build
    /// failure is the caller's error; under [`DemandMode::Auto`] it falls
    /// back to the full chase (counted in `demand_fallbacks`).
    fn outcome_for(&self, query: &PreparedQuery) -> Result<(Arc<ChaseOutcome>, SyncKind)> {
        let plan_id = query.plan_id;
        // `&self` executions can race each other, but mutations take
        // `&mut self`, so the log version is stable for this call.
        let version = self.ops.version();
        let cell: ViewCell = {
            let mut views = self.views.lock().expect("session views poisoned");
            if let Some(cell) = views.get(&plan_id) {
                cell.clone()
            } else {
                if views.len() >= MAX_CACHED_OUTCOMES {
                    views.clear();
                }
                let cell = Arc::new(Mutex::new(ViewEntry {
                    view: None,
                    synced: version,
                }));
                views.insert(plan_id, cell.clone());
                cell
            }
        };
        let mut entry = cell.lock().expect("session view poisoned");
        let synced = entry.synced;
        if let Some(view) = entry.view.as_mut() {
            if synced == version {
                return Ok((view.outcome().clone(), SyncKind::Hit));
            }
            let delta = self.ops.delta_since(synced);
            match view.apply(&delta) {
                Ok(summary) => {
                    let outcome = view.outcome().clone();
                    entry.synced = version;
                    return Ok((outcome, SyncKind::Delta(summary)));
                }
                Err(e) => {
                    // The view could not reach the target state (see
                    // `MaterializedView::apply`): discard it so the next
                    // execution rebuilds from the database instead of
                    // silently serving a stale or empty materialization.
                    entry.view = None;
                    return Err(e);
                }
            }
        }
        // No live view: before chasing from scratch, try to adopt a view
        // recovered from a persistence snapshot. Lock order is views-map →
        // entry → restored, matching every other path. A demand-built
        // view persists under the *rewritten* program's fingerprint, so
        // both plan identities are adoption candidates; `force` skips the
        // full-plan candidate because it must not serve a full-chase view.
        let counters = &self.engine.inner.stats;
        let mode = query.runner.config().demand;
        let plan = if mode == DemandMode::Off {
            None
        } else {
            query.demand.as_deref()
        };
        let force = mode == DemandMode::Force && plan.is_some();
        let mut candidates = Vec::new();
        if !force {
            candidates.push(query.fingerprint);
        }
        if let Some(plan) = plan {
            candidates.push(plan.fingerprint);
        }
        for fp in candidates {
            let Some(mut rv) = self
                .restored
                .lock()
                .expect("restored views poisoned")
                .remove(&fp)
            else {
                continue;
            };
            if rv.synced == version {
                let outcome = rv.view.outcome().clone();
                entry.view = Some(rv.view);
                entry.synced = version;
                return Ok((outcome, SyncKind::Hit));
            }
            if rv.synced >= self.ops.base {
                if let Ok(summary) = rv.view.apply(&self.ops.delta_since(rv.synced)) {
                    let outcome = rv.view.outcome().clone();
                    entry.view = Some(rv.view);
                    entry.synced = version;
                    return Ok((outcome, SyncKind::Delta(summary)));
                }
            }
            // The suffix it needs was pruned, or the apply failed: the
            // recovered view is discarded and the next candidate (or a
            // fresh build) takes over.
        }
        if let Some(plan) = plan {
            let mut db = self.db.clone();
            db.add_row(plan.seed.pred, &plan.seed.args);
            match MaterializedView::new(plan.runner.clone(), db) {
                Ok(view) => {
                    let outcome = view.outcome().clone();
                    let derived = outcome.stats.derived as u64;
                    let baseline = query.full_derived.load(Ordering::Relaxed);
                    if baseline > derived {
                        counters
                            .demand_atoms_saved
                            .fetch_add(baseline - derived, Ordering::Relaxed);
                    }
                    entry.view = Some(view);
                    entry.synced = version;
                    return Ok((outcome, SyncKind::Built));
                }
                Err(e) if force => return Err(e),
                Err(_) => {
                    // Budget exhausted or the rewritten chase failed at
                    // runtime: count the fallback and serve the full plan.
                    counters.demand_fallbacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let view = MaterializedView::new(query.runner.clone(), self.db.clone())?;
        let outcome = view.outcome().clone();
        query
            .full_derived
            .store(outcome.stats.derived as u64, Ordering::Relaxed);
        entry.view = Some(view);
        entry.synced = version;
        Ok((outcome, SyncKind::Built))
    }
}

/// How a session answered an execution, for the engine counters.
enum SyncKind {
    /// Unchanged data: the maintained outcome was returned as-is.
    Hit,
    /// Pending mutations were absorbed incrementally.
    Delta(triq_datalog::DeltaSummary),
    /// No view existed yet: a full chase ran.
    Built,
}

// ---------------------------------------------------------------------------
// SharedSession — concurrent snapshot-isolated reads over live views
// ---------------------------------------------------------------------------

/// An immutable, cross-plan-consistent picture of a [`SharedSession`] at
/// one op-log version.
///
/// A snapshot holds one [`ChaseOutcome`] handle per materialized plan,
/// all taken at the **same** version: executing several prepared queries
/// against one snapshot observes a single database state, even while the
/// writer keeps applying deltas behind it. Snapshots are cheap to obtain
/// (one `Arc` clone under a briefly-held read lock) and keep answering
/// for as long as they are held.
#[derive(Debug)]
pub struct SessionSnapshot {
    version: u64,
    outcomes: HashMap<u64, Arc<ChaseOutcome>>,
}

impl SessionSnapshot {
    /// The op-log version this snapshot reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of plans materialized in this snapshot.
    pub fn plans(&self) -> usize {
        self.outcomes.len()
    }

    /// Executes a prepared query against this snapshot, lock-free.
    /// Returns `None` when the plan is not materialized here — use
    /// [`SharedSession::execute`] to build it (that takes the writer
    /// lock once; every later snapshot then contains the plan).
    pub fn try_execute(&self, query: &PreparedQuery) -> Option<Answers> {
        self.outcomes
            .get(&query.plan_id)
            .map(|o| Answers::from_chase(o, query.output))
    }

    /// Like [`SessionSnapshot::try_execute`], but decoding into SPARQL
    /// mappings (`Err` for Datalog-origin plans, which have no variable
    /// decoding; `None` when the plan is not materialized here).
    pub fn try_mappings(&self, query: &PreparedQuery) -> Option<Result<RegimeAnswers>> {
        self.outcomes
            .get(&query.plan_id)
            .map(|o| query.mappings_from_outcome(o.clone()))
    }
}

/// What [`SharedSession::apply`] did: the published version and how many
/// facts actually changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppliedDelta {
    /// The op-log version readers observe from now on.
    pub version: u64,
    /// Facts inserted (redundant inserts excluded).
    pub inserted: usize,
    /// Facts deleted (absent deletes excluded).
    pub deleted: usize,
}

#[derive(Debug)]
struct SharedInner {
    engine: Engine,
    /// The single-writer lock: mutations and first-time plan
    /// materializations serialize here. Readers never take it.
    writer: Mutex<Session>,
    /// The published snapshot. The write guard is held only for the
    /// pointer swap (and read guards only for an `Arc` clone), so no
    /// reader is ever blocked for the duration of a chase or delta
    /// application.
    published: RwLock<Arc<SessionSnapshot>>,
}

/// A [`Session`] shared between N concurrent readers and one logical
/// writer, with **snapshot isolation**: readers execute against
/// immutable, atomically-published fixpoint snapshots and are never
/// blocked by an in-flight mutation.
///
/// The concurrency contract:
///
/// * **Readers** ([`SharedSession::execute`], [`SharedSession::snapshot`])
///   clone the current [`SessionSnapshot`] handle — a read lock held for
///   one `Arc` clone — and answer from it without further coordination.
///   A plan's first execution is the one read that takes the writer lock
///   (the fixpoint must be chased once before it can be snapshotted).
/// * **The writer** ([`SharedSession::apply`]) takes the writer lock,
///   folds the delta into the base data, brings every maintained view to
///   the new fixpoint incrementally (delta-chase inserts, DRed deletes —
///   the `triq_datalog::incremental` machinery), and only then swaps the
///   new snapshot in. Readers racing the apply keep the old snapshot;
///   readers arriving after the swap see the new one; nobody observes a
///   half-applied delta.
/// * Snapshots are **cross-plan consistent**: all outcomes in one
///   snapshot reflect the same op-log version.
///
/// Cloning a `SharedSession` is an `Arc` bump; clones share everything.
/// This type is the in-process core of `triq-server`'s query service —
/// see the "Serving layer" section of `docs/ARCHITECTURE.md`.
///
/// ```
/// use std::sync::Arc;
/// use triq::prelude::*;
///
/// let engine = Engine::new();
/// let q = engine.prepare(Datalog(
///     "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
///      t(?X, ?Y) -> out(?X, ?Y).",
///     "out",
/// ))?;
/// let mut session = engine.session();
/// session.add_fact("e", &["a", "b"]);
/// let shared = session.into_shared();
///
/// // Reader threads execute lock-free against published snapshots…
/// assert_eq!(shared.execute(&q)?.len(), 1);
/// // …while the writer applies deltas and republishes atomically.
/// shared.apply(&Delta::new().insert("e", &["b", "c"]));
/// assert!(shared.execute(&q)?.contains(&["a", "c"]));
/// # Ok::<(), TriqError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SharedSession {
    inner: Arc<SharedInner>,
}

impl SharedSession {
    /// Wraps a session for concurrent use. Views the session already
    /// maintains are synced and appear in the first published snapshot.
    pub fn new(mut session: Session) -> SharedSession {
        let outcomes = session.sync_all_views();
        let version = session.ops.version();
        SharedSession {
            inner: Arc::new(SharedInner {
                engine: session.engine.clone(),
                published: RwLock::new(Arc::new(SessionSnapshot { version, outcomes })),
                writer: Mutex::new(session),
            }),
        }
    }

    /// The engine this shared session belongs to.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The currently published snapshot (cheap: one `Arc` clone under a
    /// momentary read lock). Hold it to run several queries against one
    /// consistent database state.
    pub fn snapshot(&self) -> Arc<SessionSnapshot> {
        self.inner
            .published
            .read()
            .expect("published snapshot poisoned")
            .clone()
    }

    /// The op-log version readers currently observe.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Executes a prepared query: lock-free against the published
    /// snapshot when the plan is already materialized, else the plan is
    /// chased once under the writer lock and published for every later
    /// reader.
    pub fn execute(&self, query: &PreparedQuery) -> Result<Answers> {
        self.execute_versioned(query).map(|(a, _)| a)
    }

    /// Like [`SharedSession::execute`], also returning the op-log
    /// version the answers reflect — the version and the rows come from
    /// the **same** snapshot, so callers (e.g. the server's JSON answer
    /// writer) can expose them together without racing a concurrent
    /// apply.
    pub fn execute_versioned(&self, query: &PreparedQuery) -> Result<(Answers, u64)> {
        let (outcome, version) = self.outcome(query)?;
        Ok((Answers::from_chase(&outcome, query.output), version))
    }

    /// Executes and decodes into SPARQL mappings (`Err` with `E-OTHER`
    /// for Datalog-origin plans). Same locking profile as
    /// [`SharedSession::execute`].
    pub fn mappings(&self, query: &PreparedQuery) -> Result<RegimeAnswers> {
        self.mappings_versioned(query).map(|(m, _)| m)
    }

    /// Like [`SharedSession::mappings`], also returning the op-log
    /// version the mappings reflect (see
    /// [`SharedSession::execute_versioned`]).
    pub fn mappings_versioned(&self, query: &PreparedQuery) -> Result<(RegimeAnswers, u64)> {
        let (outcome, version) = self.outcome(query)?;
        Ok((query.mappings_from_outcome(outcome)?, version))
    }

    /// The snapshot outcome for `query` (with the version it belongs
    /// to), materializing it on first use.
    fn outcome(&self, query: &PreparedQuery) -> Result<(Arc<ChaseOutcome>, u64)> {
        let stats = &self.inner.engine.inner.stats;
        let snap = self.snapshot();
        if let Some(outcome) = snap.outcomes.get(&query.plan_id) {
            stats.executions.fetch_add(1, Ordering::Relaxed);
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((outcome.clone(), snap.version));
        }
        self.materialize(query)
    }

    /// Slow path: chase the plan under the writer lock, then republish
    /// the snapshot map extended with it (same version — the data did
    /// not change). Publications all happen under the writer lock, so
    /// concurrent first-executions of different plans cannot lose each
    /// other's entries.
    fn materialize(&self, query: &PreparedQuery) -> Result<(Arc<ChaseOutcome>, u64)> {
        let session = self.inner.writer.lock().expect("writer session poisoned");
        let current = self.snapshot();
        // Double-check: the plan may have been published while this
        // thread waited on the writer lock.
        if let Some(outcome) = current.outcomes.get(&query.plan_id) {
            return Ok((outcome.clone(), current.version));
        }
        let outcome = query.outcome(&session)?;
        let mut outcomes = current.outcomes.clone();
        outcomes.insert(query.plan_id, outcome.clone());
        let next = Arc::new(SessionSnapshot {
            version: current.version,
            outcomes,
        });
        *self
            .inner
            .published
            .write()
            .expect("published snapshot poisoned") = next;
        Ok((outcome, current.version))
    }

    /// Runs `f` against the writer session under the writer lock — the
    /// persistence layer uses this to encode a checkpoint of the exact
    /// current state. While `f` runs the write path is stalled (readers
    /// are unaffected: they answer from the published snapshot). Do not
    /// call while already holding the lock.
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        let mut session = self.inner.writer.lock().expect("writer session poisoned");
        f(&mut session)
    }

    /// Applies a mutation batch: folds the delta into the base data,
    /// brings every maintained view to the new fixpoint incrementally,
    /// and atomically publishes the new snapshot. Readers are never
    /// blocked while this runs — they keep the previous snapshot until
    /// the final pointer swap.
    ///
    /// A view whose incremental application fails (resource budget) is
    /// dropped from the snapshot and rebuilt on its next execution; the
    /// apply itself does not fail for it.
    pub fn apply(&self, delta: &Delta) -> AppliedDelta {
        let mut session = self.inner.writer.lock().expect("writer session poisoned");
        let rec = session.engine.inner.recorder.clone();
        let _span = triq_obs::span(
            &*rec,
            "apply_delta",
            (delta.inserts.len() + delta.deletes.len()) as u64,
        );
        let _t = Timer::start(&*rec, Phase::ApplyDelta);
        let (inserted, deleted) = session.apply_delta(delta);
        let outcomes = session.sync_all_views();
        let version = session.ops.version();
        *self
            .inner
            .published
            .write()
            .expect("published snapshot poisoned") =
            Arc::new(SessionSnapshot { version, outcomes });
        AppliedDelta {
            version,
            inserted,
            deleted,
        }
    }
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

/// Decoding info for SPARQL-origin queries: the answer-tuple argument
/// order and the semantics the pattern was compiled for.
#[derive(Clone, Debug)]
struct SparqlDecode {
    vars: Vec<VarId>,
    semantics: Semantics,
}

/// A query that has been parsed, translated, classified, stratified and
/// rule-compiled once, ready to execute against any [`Session`].
///
/// Cloning copies the compiled plan without re-preparing it; the clone
/// keeps the same cache identity until [`PreparedQuery::with_config`]
/// assigns a new one.
#[derive(Clone)]
pub struct PreparedQuery {
    engine: Engine,
    plan_id: u64,
    /// Durable plan identity (program text + chase config), stable
    /// across restarts — see `triq_datalog::persist::plan_fingerprint`.
    fingerprint: u64,
    runner: ChaseRunner,
    output: Symbol,
    classification: ProgramClassification,
    decode: Option<SparqlDecode>,
    /// The magic-set rewrite, when one exists for this plan (see
    /// [`Engine::attach_demand`]); `None` means executions always chase
    /// the original program.
    demand: Option<Arc<DemandPlan>>,
    /// Atoms the most recent *full* chase of this plan derived — the
    /// baseline for the `demand_atoms_saved` counter. Shared by clones;
    /// reset by [`PreparedQuery::with_config`] (a config change can
    /// change the count). `0` = no baseline yet.
    full_derived: Arc<AtomicU64>,
}

impl PreparedQuery {
    /// The compiled program (libraries included).
    pub fn program(&self) -> &Program {
        self.runner.program()
    }

    /// The output predicate.
    pub fn output(&self) -> Symbol {
        self.output
    }

    /// The language-classification report computed at prepare time.
    pub fn classification(&self) -> &ProgramClassification {
        &self.classification
    }

    /// The semantics this query was compiled for (`None` for raw Datalog
    /// queries, which have no SPARQL decoding).
    pub fn semantics(&self) -> Option<Semantics> {
        self.decode.as_ref().map(|d| d.semantics)
    }

    /// The chase configuration executions use.
    pub fn config(&self) -> ChaseConfig {
        self.runner.config()
    }

    /// Returns a variant with a different chase configuration. The
    /// compiled rules and stratification are reused; a new cache identity
    /// is assigned only when the configuration actually changes (a config
    /// change can change results).
    pub fn with_config(mut self, config: ChaseConfig) -> PreparedQuery {
        if self.runner.config() != config {
            self.runner.set_config(config);
            self.plan_id = NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed);
            self.fingerprint = triq_datalog::persist::plan_fingerprint(
                self.runner.program(),
                &self.runner.config(),
            );
            // The demand rewrite depends on the config (mode, budgets),
            // and the saved-atoms baseline on the full chase it ran
            // under — recompute both for the new identity.
            self.demand = self.engine.attach_demand(&self.runner, self.output);
            self.full_derived = Arc::new(AtomicU64::new(0));
        }
        self
    }

    /// The durable plan fingerprint: a hash of the compiled program's
    /// canonical text and the chase configuration. Unlike the in-process
    /// cache identity, it is stable across restarts — persistence
    /// snapshots use it to match recovered views to re-prepared queries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether a magic-set rewrite is attached: executions without a
    /// usable cached view will chase the demand-rewritten program instead
    /// of the full one (unless the mode is [`DemandMode::Off`]).
    pub fn uses_demand(&self) -> bool {
        self.runner.config().demand != DemandMode::Off && self.demand.is_some()
    }

    /// The durable fingerprint of the demand-rewritten plan, when one is
    /// attached. Distinct queries over the same rules but different bound
    /// constants get distinct fingerprints (the constants appear in the
    /// rewritten program's seed rules), so persisted demand views can
    /// never be adopted by the wrong query.
    pub fn demand_fingerprint(&self) -> Option<u64> {
        self.demand.as_ref().map(|p| p.fingerprint)
    }

    /// The chase outcome for this query over `session` — served from
    /// the session's maintained view: a lookup when nothing changed, an
    /// incremental delta application when mutations are pending, and a
    /// full chase only the first time (or after `invalidate()`).
    fn outcome(&self, session: &Session) -> Result<Arc<ChaseOutcome>> {
        let stats = &self.engine.inner.stats;
        stats.executions.fetch_add(1, Ordering::Relaxed);
        let rec = &*self.engine.inner.recorder;
        let _span = triq_obs::span(rec, "execute", self.plan_id);
        let _t = Timer::start(rec, Phase::Execute);
        let (outcome, sync) = session.outcome_for(self)?;
        match sync {
            SyncKind::Hit => {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            SyncKind::Delta(summary) => stats.absorb_delta(&summary),
            SyncKind::Built => stats.absorb_built(&outcome.stats),
        }
        Ok(outcome)
    }

    /// Executes, materializing the answers (§3.2's `Q(D)`).
    pub fn execute(&self, session: &Session) -> Result<Answers> {
        let outcome = self.outcome(session)?;
        Ok(Answers::from_chase(&outcome, self.output))
    }

    /// Executes, streaming the answer tuples without materializing a set.
    /// Check [`AnswerIter::is_top`] before interpreting emptiness.
    pub fn execute_iter(&self, session: &Session) -> Result<AnswerIter> {
        let outcome = self.outcome(session)?;
        Ok(AnswerIter::new(outcome, self.output))
    }

    /// The SPARQL variable names answers decode into, in answer-tuple
    /// argument order (`None` for Datalog-origin plans, which have no
    /// variable decoding). The server's JSON answer writer uses this as
    /// the `vars` header.
    pub fn var_names(&self) -> Option<Vec<&'static str>> {
        self.decode
            .as_ref()
            .map(|d| d.vars.iter().map(|v| v.name()).collect())
    }

    /// The decoded variables themselves, in the same order as
    /// [`PreparedQuery::var_names`] (`None` for Datalog-origin plans).
    pub fn vars(&self) -> Option<&[VarId]> {
        self.decode.as_ref().map(|d| d.vars.as_slice())
    }

    /// Executes and decodes into SPARQL mappings (`µ_{t,P}` of §5.1).
    /// Errors with `E-OTHER` for raw Datalog queries, which have no
    /// variable decoding.
    pub fn mappings(&self, session: &Session) -> Result<RegimeAnswers> {
        let outcome = self.outcome(session)?;
        self.mappings_from_outcome(outcome)
    }

    /// Decodes a chase outcome (a session- or snapshot-served fixpoint)
    /// into SPARQL mappings.
    fn mappings_from_outcome(&self, outcome: Arc<ChaseOutcome>) -> Result<RegimeAnswers> {
        let decode = self.decode.as_ref().ok_or_else(|| {
            TriqError::Other(
                "prepared query has no SPARQL variable decoding (it was built \
                 from a Datalog program); use execute() instead"
                    .into(),
            )
        })?;
        let mut iter = AnswerIter::new(outcome, self.output);
        if iter.is_top() {
            return Ok(RegimeAnswers::Top);
        }
        let mut out = MappingSet::new();
        for tuple in &mut iter {
            out.insert(decode_tuple_vars(&tuple, &decode.vars));
        }
        Ok(RegimeAnswers::Mappings(out))
    }

    /// Convenience: the sorted, deduplicated bindings of one variable
    /// (SPARQL-origin queries only).
    ///
    /// When the session data is inconsistent with the ontology semantics
    /// (`Q(D) = ⊤`, where *every* mapping is an answer), this returns an
    /// error rather than an empty list — a flat binding list cannot
    /// represent ⊤. Use [`PreparedQuery::mappings`] to handle ⊤
    /// explicitly.
    pub fn bindings_of(&self, session: &Session, var: &str) -> Result<Vec<Symbol>> {
        let v = VarId::new(var);
        match self.mappings(session)? {
            RegimeAnswers::Top => Err(TriqError::Other(
                "the session data is inconsistent with the ontology \
                 semantics (Q(D) = ⊤): every binding is an answer; use \
                 mappings() to handle ⊤"
                    .into(),
            )),
            RegimeAnswers::Mappings(ms) => {
                let mut out: Vec<Symbol> = ms.iter().filter_map(|m| m.get(v)).collect();
                out.sort();
                out.dedup();
                Ok(out)
            }
        }
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("plan_id", &self.plan_id)
            .field("output", &self.output)
            .field("rules", &self.runner.program().rules.len())
            .field("semantics", &self.semantics())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_rdf::parse_turtle;
    use triq_sparql::parse_pattern;

    fn g2() -> Graph {
        parse_turtle(
            "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman name \"Jeffrey Ullman\" .\n\
             dbAho is_coauthor_of dbUllman .\n\
             dbAho name \"Alfred Aho\" .",
        )
        .unwrap()
    }

    #[test]
    fn sparql_text_roundtrip() {
        let engine = Engine::new();
        let q = engine
            .prepare(Sparql(
                "SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
            ))
            .unwrap();
        let session = engine.load_graph(g2());
        let names = q.bindings_of(&session, "X").unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), "Jeffrey Ullman");
    }

    #[test]
    fn one_prepared_query_many_sessions() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?Y, name, ?X) -> query(?X).", "query"))
            .unwrap();
        let s1 = engine.load_graph(g2());
        let s2 = engine
            .load_turtle("someone name \"Somebody Else\" .")
            .unwrap();
        let s3 = engine.session();
        assert_eq!(q.execute(&s1).unwrap().len(), 2);
        assert!(q.execute(&s2).unwrap().contains(&["Somebody Else"]));
        assert!(q.execute(&s3).unwrap().is_empty());
    }

    #[test]
    fn session_cache_hits_and_incremental_mutation() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?Y, name, ?X) -> q(?X).", "q"))
            .unwrap();
        let mut session = engine.load_graph(g2());
        assert_eq!(q.execute(&session).unwrap().len(), 2);
        let after_first = engine.stats();
        assert_eq!(q.execute(&session).unwrap().len(), 2);
        let after_second = engine.stats();
        assert_eq!(after_second.chase_runs, after_first.chase_runs);
        assert_eq!(after_second.cache_hits, after_first.cache_hits + 1);
        // Mutations are absorbed incrementally — no full re-chase.
        session.insert_triple("x", "name", "X New");
        assert_eq!(q.execute(&session).unwrap().len(), 3);
        let after_third = engine.stats();
        assert_eq!(after_third.chase_runs, after_first.chase_runs);
        assert_eq!(after_third.deltas_applied, after_first.deltas_applied + 1);
        // Removal too (DRed): the derived answer disappears.
        assert!(session.remove_triple("x", "name", "X New"));
        assert_eq!(q.execute(&session).unwrap().len(), 2);
        assert_eq!(engine.stats().chase_runs, after_first.chase_runs);
        // invalidate() stays the explicit full-rebuild escape hatch.
        session.invalidate();
        assert_eq!(q.execute(&session).unwrap().len(), 2);
        assert_eq!(engine.stats().chase_runs, after_first.chase_runs + 1);
    }

    #[test]
    fn batched_mutations_net_into_one_delta() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("p(?X, ?Y) -> out(?X).", "out"))
            .unwrap();
        let mut session = engine.session();
        session.add_fact("p", &["a", "b"]);
        assert_eq!(q.execute(&session).unwrap().len(), 1);
        let runs = engine.stats().chase_runs;
        // Insert-then-remove between executions nets to nothing…
        session.add_fact("p", &["c", "d"]);
        assert!(session.remove_fact("p", &["c", "d"]));
        // …and several surviving ops arrive as one delta.
        session.add_fact("p", &["e", "f"]);
        session.add_fact("p", &["g", "h"]);
        let answers = q.execute(&session).unwrap();
        assert_eq!(answers.len(), 3);
        assert!(!answers.contains(&["c"]));
        let stats = engine.stats();
        assert_eq!(stats.chase_runs, runs, "no full re-chase");
        assert_eq!(stats.deltas_applied, 1, "one netted delta");
        // Removing a never-present fact is a no-op.
        assert!(!session.remove_fact("p", &["zz", "zz"]));
    }

    #[test]
    fn idle_views_are_evicted_to_bound_the_op_log() {
        let engine = Engine::new();
        let q = engine.prepare(Datalog("p(?X) -> out(?X).", "out")).unwrap();
        let mut session = engine.session();
        session.add_fact("p", &["seed"]);
        assert_eq!(q.execute(&session).unwrap().len(), 1);
        let runs = engine.stats().chase_runs;
        // Thousands of mutations with the view idle: the log must stay
        // bounded (the far-behind view is evicted, not fed forever).
        for i in 0..5000 {
            session.add_fact("p", &[&format!("x{i}")]);
        }
        assert!(
            session.ops.ops.len() <= MAX_PENDING_OPS,
            "op log must stay bounded, got {}",
            session.ops.ops.len()
        );
        // The evicted view rebuilds on its next execution, correctly.
        assert_eq!(q.execute(&session).unwrap().len(), 5001);
        assert_eq!(engine.stats().chase_runs, runs + 1);
    }

    #[test]
    fn prepared_queries_follow_the_maintained_view() {
        // Recursive rules + negation through the facade, mutated live.
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog(
                "e(?X, ?Y) -> t(?X, ?Y).\n\
                 e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                 t(?X, ?Y) -> out(?X, ?Y).",
                "out",
            ))
            .unwrap();
        let mut session = engine.session();
        session.add_fact("e", &["a", "b"]);
        session.add_fact("e", &["b", "c"]);
        assert_eq!(q.execute(&session).unwrap().len(), 3);
        session.add_fact("e", &["c", "d"]);
        let answers = q.execute(&session).unwrap();
        assert_eq!(answers.len(), 6);
        assert!(answers.contains(&["a", "d"]));
        session.remove_fact("e", &["b", "c"]);
        let answers = q.execute(&session).unwrap();
        assert_eq!(answers.len(), 2);
        assert!(!answers.contains(&["a", "d"]));
        // The maintained view must agree with a fresh session.
        let fresh = engine.load_database(session.database().clone());
        assert_eq!(q.execute(&fresh).unwrap(), q.execute(&session).unwrap());
    }

    #[test]
    fn streaming_matches_materialized() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?X, ?P, ?Y) -> pair(?X, ?Y).", "pair"))
            .unwrap();
        let session = engine.load_graph(g2());
        let materialized = q.execute(&session).unwrap();
        let mut streamed: Vec<Vec<Symbol>> = q.execute_iter(&session).unwrap().collect();
        streamed.sort();
        let expected: Vec<Vec<Symbol>> = materialized.tuples().iter().cloned().collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn semantics_selection_and_default() {
        let engine = Engine::builder()
            .default_semantics(Semantics::RegimeAll)
            .build();
        let pattern = parse_pattern("{ ?X eats _:B }").unwrap();
        let q_default = engine.prepare(&pattern).unwrap();
        assert_eq!(q_default.semantics(), Some(Semantics::RegimeAll));
        let q_pinned = engine.prepare((&pattern, Semantics::Plain)).unwrap();
        assert_eq!(q_pinned.semantics(), Some(Semantics::Plain));
    }

    #[test]
    fn output_in_body_is_rejected_with_code() {
        let engine = Engine::new();
        let err = engine.prepare(Datalog("q(?X) -> r(?X).", "q")).unwrap_err();
        assert_eq!(err.code(), "E-OUTPUT-IN-BODY");
    }

    #[test]
    fn bindings_of_errors_on_inconsistent_graph() {
        let engine = Engine::new();
        let session = engine
            .load_turtle(
                "cat owl:disjointWith dog .\n\
                 cat rdf:type owl:Class .\n\
                 dog rdf:type owl:Class .\n\
                 felix rdf:type cat .\n\
                 felix rdf:type dog .",
            )
            .unwrap();
        let q = engine
            .prepare((
                parse_pattern("{ ?X rdf:type cat }").unwrap(),
                Semantics::RegimeU,
            ))
            .unwrap();
        // mappings() reports ⊤ explicitly…
        assert!(q.mappings(&session).unwrap().is_top());
        // …while the flat binding list refuses to flatten it away.
        assert!(q.bindings_of(&session, "X").is_err());
    }

    #[test]
    fn with_config_keeps_identity_when_unchanged() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?X, ?P, ?Y) -> out(?X).", "out"))
            .unwrap();
        let session = engine.load_turtle("a p b .").unwrap();
        let same = q.clone().with_config(q.config());
        q.execute(&session).unwrap();
        let runs_before = engine.stats().chase_runs;
        // Same config → same cache identity → cache hit, no extra chase.
        same.execute(&session).unwrap();
        assert_eq!(engine.stats().chase_runs, runs_before);
        // A different config is a different plan and re-runs the chase.
        let deeper = q.clone().with_config(ChaseConfig {
            max_null_depth: 9,
            ..q.config()
        });
        deeper.execute(&session).unwrap();
        assert_eq!(engine.stats().chase_runs, runs_before + 1);
    }

    #[test]
    fn mappings_on_datalog_query_errors() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?X, ?P, ?Y) -> out(?X).", "out"))
            .unwrap();
        let session = engine.session();
        assert!(q.mappings(&session).is_err());
    }

    #[test]
    fn libraries_are_unioned_at_prepare_time() {
        let engine = Engine::builder()
            .library(crate::engine::same_as_regime_library())
            .build();
        let pattern = parse_pattern("{ ?Y is_author_of ?Z . ?Y name ?X }").unwrap();
        let q = engine.prepare((pattern, Semantics::RegimeU)).unwrap();
        let session = engine
            .load_turtle(
                "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman owl:sameAs yagoUllman .\n\
             yagoUllman name \"Jeffrey Ullman\" .",
            )
            .unwrap();
        let names = q.bindings_of(&session, "X").unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), "Jeffrey Ullman");
    }
}
