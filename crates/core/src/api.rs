//! The unified `Engine` / `Session` / `PreparedQuery` facade.
//!
//! The paper gives four ways to ask a question — SPARQL patterns under
//! three semantics (§3.1, §5.2, §5.3), TriQ 1.0 programs (Def. 4.2),
//! TriQ-Lite 1.0 programs (Def. 6.1) and raw Datalog∃,¬s,⊥ queries
//! (§3.2) — and the seed exposed one ad-hoc entry point per way, each
//! re-parsing, re-translating, re-classifying, re-stratifying and
//! re-compiling on every call. This module replaces them with one
//! prepare-once / execute-many lifecycle:
//!
//! * [`Engine`] (built via [`EngineBuilder`]) holds policy: chase
//!   configuration, default [`Semantics`], rule libraries (§2), and
//!   usage [statistics](Engine::stats);
//! * [`Engine::prepare`] accepts *any* query form through [`IntoQuery`]
//!   and pays translation (§5), classification (Def. 4.2 / 6.1),
//!   stratification (§3.2) and rule compilation exactly **once**,
//!   yielding a [`PreparedQuery`];
//! * [`Session`] holds loaded data — an RDF [`Graph`] bridged through
//!   `τ_db` (§5.1) and/or a raw [`Database`] — plus a chase-state cache,
//!   so re-executing a prepared query against unchanged data is free;
//! * a [`PreparedQuery`] executes against any number of sessions, either
//!   materialized ([`PreparedQuery::execute`]) or streaming
//!   ([`PreparedQuery::execute_iter`]).
//!
//! ```
//! use triq::prelude::*;
//!
//! let engine = Engine::new();
//! let authors = engine.prepare(Sparql(
//!     "SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
//! ))?;
//!
//! let session = engine.load_turtle(
//!     "dbUllman is_author_of \"The Complete Book\" .\n\
//!      dbUllman name \"Jeffrey Ullman\" .",
//! )?;
//! assert_eq!(authors.bindings_of(&session, "X")?[0].as_str(), "Jeffrey Ullman");
//! # Ok::<(), TriqError>(())
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use triq_common::{Result, Symbol, TriqError, VarId};
use triq_datalog::{
    classify_program, AnswerIter, Answers, ChaseConfig, ChaseOutcome, ChaseRunner, Database,
    ExistentialStrategy, Program, ProgramClassification,
};
use triq_owl2ql::tau_db;
use triq_rdf::Graph;
use triq_sparql::{GraphPattern, MappingSet, SelectQuery};
use triq_translate::{
    decode_tuple_vars, regime_chase_config, translate_pattern, translate_pattern_all,
    translate_pattern_u, RegimeAnswers,
};

use crate::{TriqLiteQuery, TriqQuery};

/// The evaluation semantics for SPARQL patterns (§3.1, §5.2, §5.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Semantics {
    /// Plain SPARQL over the graph as-is (Theorem 5.2).
    #[default]
    Plain,
    /// The OWL 2 QL core direct-semantics entailment regime J·K^U, with
    /// the active-domain restriction (Theorem 5.3).
    RegimeU,
    /// J·K^All (§5.3): the regime without the active-domain restriction
    /// on blank nodes.
    RegimeAll,
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Builder for [`Engine`]: chase policy, default semantics and rule
/// libraries.
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    plain_config: ChaseConfig,
    regime_config: ChaseConfig,
    default_semantics: Semantics,
    libraries: Vec<Program>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            plain_config: ChaseConfig::default(),
            regime_config: regime_chase_config(),
            default_semantics: Semantics::Plain,
            libraries: Vec::new(),
        }
    }
}

impl EngineBuilder {
    /// A builder with the default policy: skolem chase for plain /
    /// datalog queries, restricted chase for the entailment regimes
    /// (see [`regime_chase_config`]), plain semantics, no libraries.
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Replaces the chase configuration for **all** query kinds.
    pub fn chase_config(mut self, config: ChaseConfig) -> EngineBuilder {
        self.plain_config = config;
        self.regime_config = config;
        self
    }

    /// Sets the existential strategy for all query kinds.
    pub fn existential_strategy(mut self, strategy: ExistentialStrategy) -> EngineBuilder {
        self.plain_config.strategy = strategy;
        self.regime_config.strategy = strategy;
        self
    }

    /// Sets the null invention-depth bound for all query kinds.
    pub fn max_null_depth(mut self, depth: u32) -> EngineBuilder {
        self.plain_config.max_null_depth = depth;
        self.regime_config.max_null_depth = depth;
        self
    }

    /// Sets the atom budget for all query kinds.
    pub fn max_atoms(mut self, atoms: usize) -> EngineBuilder {
        self.plain_config.max_atoms = atoms;
        self.regime_config.max_atoms = atoms;
        self
    }

    /// Sets the semantics used when a SPARQL query is prepared without an
    /// explicit one.
    pub fn default_semantics(mut self, semantics: Semantics) -> EngineBuilder {
        self.default_semantics = semantics;
        self
    }

    /// Adds a rule library (a fixed set of rules in the sense of §2, e.g.
    /// the `owl:sameAs` closure) that is unioned into every prepared
    /// program. Libraries must not redefine `triple` recursively in a way
    /// that breaks stratification.
    pub fn library(mut self, library: Program) -> EngineBuilder {
        self.libraries.push(library);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                plain_config: self.plain_config,
                regime_config: self.regime_config,
                default_semantics: self.default_semantics,
                libraries: self.libraries,
                stats: EngineCounters::default(),
            }),
        }
    }
}

#[derive(Debug, Default)]
struct EngineCounters {
    prepared_queries: AtomicUsize,
    executions: AtomicUsize,
    chase_runs: AtomicUsize,
    cache_hits: AtomicUsize,
    atoms_derived: AtomicU64,
    join_probes: AtomicU64,
    parallel_strata: AtomicUsize,
}

#[derive(Debug)]
struct EngineInner {
    plain_config: ChaseConfig,
    regime_config: ChaseConfig,
    default_semantics: Semantics,
    libraries: Vec<Program>,
    stats: EngineCounters,
}

/// Usage counters of an [`Engine`] (a point-in-time snapshot).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries prepared (each pays translation + stratification once).
    pub prepared_queries: usize,
    /// Prepared-query executions (including cache hits).
    pub executions: usize,
    /// Chase runs actually performed.
    pub chase_runs: usize,
    /// Executions answered from a session's chase-state cache.
    pub cache_hits: usize,
    /// Atoms derived across all chase runs (beyond the database seeds).
    pub atoms_derived: u64,
    /// Candidate tuples examined by the chase join loops.
    pub join_probes: u64,
    /// Strata evaluated with parallel per-rule match collection.
    pub parallel_strata: usize,
}

/// The top-level handle: policy + prepared-query factory.
///
/// Cloning an `Engine` is cheap (an [`Arc`] bump) and clones share
/// statistics; sessions and prepared queries keep their engine alive.
#[derive(Clone, Debug)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        EngineBuilder::new().build()
    }
}

/// Global source of prepared-query identities (used as session cache
/// keys).
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

impl Engine {
    /// An engine with the default policy.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The semantics used when none is given at prepare time.
    pub fn default_semantics(&self) -> Semantics {
        self.inner.default_semantics
    }

    /// A snapshot of the usage counters.
    pub fn stats(&self) -> EngineStats {
        let s = &self.inner.stats;
        EngineStats {
            prepared_queries: s.prepared_queries.load(Ordering::Relaxed),
            executions: s.executions.load(Ordering::Relaxed),
            chase_runs: s.chase_runs.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            atoms_derived: s.atoms_derived.load(Ordering::Relaxed),
            join_probes: s.join_probes.load(Ordering::Relaxed),
            parallel_strata: s.parallel_strata.load(Ordering::Relaxed),
        }
    }

    /// An empty session.
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            graph: None,
            db: Database::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// A session over an RDF graph, bridged through `τ_db` (§5.1) once.
    pub fn load_graph(&self, graph: Graph) -> Session {
        Session {
            engine: self.clone(),
            db: tau_db(&graph),
            graph: Some(graph),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// A session over a graph given in Turtle-lite text.
    pub fn load_turtle(&self, turtle: &str) -> Result<Session> {
        Ok(self.load_graph(triq_rdf::parse_turtle(turtle)?))
    }

    /// A session over a raw Datalog database.
    pub fn load_database(&self, db: Database) -> Session {
        Session {
            engine: self.clone(),
            graph: None,
            db,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Prepares a query: parsing, translation (§5), classification
    /// (Def. 4.2 / 6.1), stratification and rule compilation happen here,
    /// exactly once; the result executes against any number of sessions.
    pub fn prepare<Q: IntoQuery>(&self, query: Q) -> Result<PreparedQuery> {
        let spec = query.into_query()?;
        self.prepare_spec(spec)
    }

    fn prepare_spec(&self, spec: QuerySpec) -> Result<PreparedQuery> {
        let (program, output, decode) = match spec {
            QuerySpec::Sparql { pattern, semantics } => {
                let semantics = semantics.unwrap_or(self.inner.default_semantics);
                let translated = match semantics {
                    Semantics::Plain => translate_pattern(&pattern)?,
                    Semantics::RegimeU => translate_pattern_u(&pattern)?,
                    Semantics::RegimeAll => translate_pattern_all(&pattern)?,
                };
                let decode = SparqlDecode {
                    vars: translated.vars,
                    semantics,
                };
                (translated.program, translated.answer_pred, Some(decode))
            }
            QuerySpec::Datalog { program, output } => (program, output, None),
        };
        // Union the engine's rule libraries into the prepared program.
        let mut program = program;
        for lib in &self.inner.libraries {
            program = lib.union(&program);
        }
        // §3.2: the output predicate must not occur in any rule body.
        if program.occurs_in_body(output) {
            return Err(TriqError::OutputInBody(format!(
                "output predicate {output} occurs in a rule body (§3.2 \
                 forbids this)"
            )));
        }
        let classification = classify_program(&program);
        let config = match &decode {
            Some(d) if d.semantics != Semantics::Plain => self.inner.regime_config,
            _ => self.inner.plain_config,
        };
        let runner = ChaseRunner::new(program, config)?;
        self.inner
            .stats
            .prepared_queries
            .fetch_add(1, Ordering::Relaxed);
        Ok(PreparedQuery {
            engine: self.clone(),
            plan_id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
            runner,
            output,
            classification,
            decode,
        })
    }
}

// ---------------------------------------------------------------------------
// IntoQuery
// ---------------------------------------------------------------------------

/// A query in some source language, normalized for [`Engine::prepare`].
#[derive(Clone, Debug)]
pub enum QuerySpec {
    /// A SPARQL graph pattern, optionally pinned to a semantics (else the
    /// engine default applies).
    Sparql {
        /// The pattern.
        pattern: GraphPattern,
        /// `None` = use [`Engine::default_semantics`].
        semantics: Option<Semantics>,
    },
    /// A Datalog∃,¬s,⊥ query `(Π, p)`.
    Datalog {
        /// The program Π.
        program: Program,
        /// The output predicate `p`.
        output: Symbol,
    },
}

/// Conversion into a [`QuerySpec`] — the single doorway every query
/// language enters the engine through. Implemented for SPARQL patterns
/// and `SELECT` queries (optionally paired with a [`Semantics`]), for
/// validated [`TriqQuery`] / [`TriqLiteQuery`] programs, for raw
/// [`triq_datalog::Query`] values and `(Program, output)` pairs, and for
/// source text via the [`Sparql`] and [`Datalog`] wrappers.
pub trait IntoQuery {
    /// Normalizes `self`.
    fn into_query(self) -> Result<QuerySpec>;
}

/// SPARQL `SELECT` source text, e.g. `Sparql("SELECT ?X WHERE { ?X p ?Y }")`.
#[derive(Clone, Copy, Debug)]
pub struct Sparql<'a>(pub &'a str);

/// Datalog∃,¬s,⊥ source text plus output predicate, e.g.
/// `Datalog("triple(?X, p, ?Y) -> out(?X).", "out")`.
#[derive(Clone, Copy, Debug)]
pub struct Datalog<'a>(pub &'a str, pub &'a str);

impl IntoQuery for QuerySpec {
    fn into_query(self) -> Result<QuerySpec> {
        Ok(self)
    }
}

impl IntoQuery for Sparql<'_> {
    fn into_query(self) -> Result<QuerySpec> {
        triq_sparql::parse_select(self.0)?.into_query()
    }
}

impl IntoQuery for Datalog<'_> {
    fn into_query(self) -> Result<QuerySpec> {
        let program = triq_datalog::parse_program(self.0)?;
        Ok(QuerySpec::Datalog {
            program,
            output: triq_common::intern(self.1),
        })
    }
}

impl IntoQuery for GraphPattern {
    fn into_query(self) -> Result<QuerySpec> {
        self.validate()?;
        Ok(QuerySpec::Sparql {
            pattern: self,
            semantics: None,
        })
    }
}

impl IntoQuery for (GraphPattern, Semantics) {
    fn into_query(self) -> Result<QuerySpec> {
        self.0.validate()?;
        Ok(QuerySpec::Sparql {
            pattern: self.0,
            semantics: Some(self.1),
        })
    }
}

impl IntoQuery for &GraphPattern {
    fn into_query(self) -> Result<QuerySpec> {
        self.clone().into_query()
    }
}

impl IntoQuery for (&GraphPattern, Semantics) {
    fn into_query(self) -> Result<QuerySpec> {
        (self.0.clone(), self.1).into_query()
    }
}

impl IntoQuery for SelectQuery {
    fn into_query(self) -> Result<QuerySpec> {
        let pattern = GraphPattern::Select(self.vars, Box::new(self.pattern));
        pattern.into_query()
    }
}

impl IntoQuery for (SelectQuery, Semantics) {
    fn into_query(self) -> Result<QuerySpec> {
        let QuerySpec::Sparql { pattern, .. } = self.0.into_query()? else {
            unreachable!("SelectQuery normalizes to a SPARQL spec");
        };
        Ok(QuerySpec::Sparql {
            pattern,
            semantics: Some(self.1),
        })
    }
}

impl IntoQuery for triq_datalog::Query {
    fn into_query(self) -> Result<QuerySpec> {
        Ok(QuerySpec::Datalog {
            program: self.program,
            output: self.output,
        })
    }
}

impl IntoQuery for (Program, &str) {
    fn into_query(self) -> Result<QuerySpec> {
        Ok(QuerySpec::Datalog {
            program: self.0,
            output: triq_common::intern(self.1),
        })
    }
}

impl IntoQuery for TriqQuery {
    fn into_query(self) -> Result<QuerySpec> {
        self.query().clone().into_query()
    }
}

impl IntoQuery for TriqLiteQuery {
    fn into_query(self) -> Result<QuerySpec> {
        self.query().clone().into_query()
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Upper bound on cached chase outcomes per session. An outcome holds the
/// whole materialized instance, so the cache is kept small; when full it
/// is cleared wholesale (coarse, but bounded — recomputation is always
/// correct).
const MAX_CACHED_OUTCOMES: usize = 32;

/// Loaded data plus a chase-state cache.
///
/// A session belongs to the [`Engine`] that created it. The cache maps a
/// prepared query's identity to the [`ChaseOutcome`] it produced over this
/// session's data, so re-executing the same [`PreparedQuery`] is a lookup;
/// any mutation of the session data invalidates the cache, and the cache
/// holds at most `MAX_CACHED_OUTCOMES` entries.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    graph: Option<Graph>,
    db: Database,
    cache: Mutex<HashMap<u64, Arc<ChaseOutcome>>>,
}

impl Session {
    /// The engine this session belongs to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The loaded RDF graph, if the session was created from one.
    pub fn graph(&self) -> Option<&Graph> {
        self.graph.as_ref()
    }

    /// The underlying Datalog database (`τ_db(G)` for graph sessions).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Adds an RDF triple (both to the graph, if any, and to the `τ_db`
    /// bridge), invalidating cached chase state.
    pub fn insert_triple(&mut self, s: &str, p: &str, o: &str) {
        if let Some(g) = &mut self.graph {
            g.insert_strs(s, p, o);
        }
        self.db.add_fact("triple", &[s, p, o]);
        self.invalidate();
    }

    /// Adds a raw Datalog fact, invalidating cached chase state.
    pub fn add_fact(&mut self, pred: &str, constants: &[&str]) {
        self.db.add_fact(pred, constants);
        self.invalidate();
    }

    /// Drops all cached chase state.
    pub fn invalidate(&mut self) {
        self.cache
            .get_mut()
            .expect("session cache poisoned")
            .clear();
    }

    /// Convenience mirror of [`PreparedQuery::execute`].
    pub fn execute(&self, query: &PreparedQuery) -> Result<Answers> {
        query.execute(self)
    }

    fn cached_outcome(&self, plan_id: u64) -> Option<Arc<ChaseOutcome>> {
        self.cache
            .lock()
            .expect("session cache poisoned")
            .get(&plan_id)
            .cloned()
    }

    fn store_outcome(&self, plan_id: u64, outcome: Arc<ChaseOutcome>) {
        let mut cache = self.cache.lock().expect("session cache poisoned");
        if cache.len() >= MAX_CACHED_OUTCOMES {
            cache.clear();
        }
        cache.insert(plan_id, outcome);
    }
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

/// Decoding info for SPARQL-origin queries: the answer-tuple argument
/// order and the semantics the pattern was compiled for.
#[derive(Clone, Debug)]
struct SparqlDecode {
    vars: Vec<VarId>,
    semantics: Semantics,
}

/// A query that has been parsed, translated, classified, stratified and
/// rule-compiled once, ready to execute against any [`Session`].
///
/// Cloning copies the compiled plan without re-preparing it; the clone
/// keeps the same cache identity until [`PreparedQuery::with_config`]
/// assigns a new one.
#[derive(Clone)]
pub struct PreparedQuery {
    engine: Engine,
    plan_id: u64,
    runner: ChaseRunner,
    output: Symbol,
    classification: ProgramClassification,
    decode: Option<SparqlDecode>,
}

impl PreparedQuery {
    /// The compiled program (libraries included).
    pub fn program(&self) -> &Program {
        self.runner.program()
    }

    /// The output predicate.
    pub fn output(&self) -> Symbol {
        self.output
    }

    /// The language-classification report computed at prepare time.
    pub fn classification(&self) -> &ProgramClassification {
        &self.classification
    }

    /// The semantics this query was compiled for (`None` for raw Datalog
    /// queries, which have no SPARQL decoding).
    pub fn semantics(&self) -> Option<Semantics> {
        self.decode.as_ref().map(|d| d.semantics)
    }

    /// The chase configuration executions use.
    pub fn config(&self) -> ChaseConfig {
        self.runner.config()
    }

    /// Returns a variant with a different chase configuration. The
    /// compiled rules and stratification are reused; a new cache identity
    /// is assigned only when the configuration actually changes (a config
    /// change can change results).
    pub fn with_config(mut self, config: ChaseConfig) -> PreparedQuery {
        if self.runner.config() != config {
            self.runner.set_config(config);
            self.plan_id = NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed);
        }
        self
    }

    /// The chase outcome for this query over `session`, from cache when
    /// available.
    fn outcome(&self, session: &Session) -> Result<Arc<ChaseOutcome>> {
        let stats = &self.engine.inner.stats;
        stats.executions.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = session.cached_outcome(self.plan_id) {
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        stats.chase_runs.fetch_add(1, Ordering::Relaxed);
        let outcome = Arc::new(self.runner.run(&session.db)?);
        stats
            .atoms_derived
            .fetch_add(outcome.stats.derived as u64, Ordering::Relaxed);
        stats
            .join_probes
            .fetch_add(outcome.stats.probes, Ordering::Relaxed);
        stats
            .parallel_strata
            .fetch_add(outcome.stats.parallel_strata, Ordering::Relaxed);
        session.store_outcome(self.plan_id, outcome.clone());
        Ok(outcome)
    }

    /// Executes, materializing the answers (§3.2's `Q(D)`).
    pub fn execute(&self, session: &Session) -> Result<Answers> {
        let outcome = self.outcome(session)?;
        Ok(Answers::from_chase(&outcome, self.output))
    }

    /// Executes, streaming the answer tuples without materializing a set.
    /// Check [`AnswerIter::is_top`] before interpreting emptiness.
    pub fn execute_iter(&self, session: &Session) -> Result<AnswerIter> {
        let outcome = self.outcome(session)?;
        Ok(AnswerIter::new(outcome, self.output))
    }

    /// Executes and decodes into SPARQL mappings (`µ_{t,P}` of §5.1).
    /// Errors with `E-OTHER` for raw Datalog queries, which have no
    /// variable decoding.
    pub fn mappings(&self, session: &Session) -> Result<RegimeAnswers> {
        let decode = self.decode.as_ref().ok_or_else(|| {
            TriqError::Other(
                "prepared query has no SPARQL variable decoding (it was built \
                 from a Datalog program); use execute() instead"
                    .into(),
            )
        })?;
        let mut iter = self.execute_iter(session)?;
        if iter.is_top() {
            return Ok(RegimeAnswers::Top);
        }
        let mut out = MappingSet::new();
        for tuple in &mut iter {
            out.insert(decode_tuple_vars(&tuple, &decode.vars));
        }
        Ok(RegimeAnswers::Mappings(out))
    }

    /// Convenience: the sorted, deduplicated bindings of one variable
    /// (SPARQL-origin queries only).
    ///
    /// When the session data is inconsistent with the ontology semantics
    /// (`Q(D) = ⊤`, where *every* mapping is an answer), this returns an
    /// error rather than an empty list — a flat binding list cannot
    /// represent ⊤. Use [`PreparedQuery::mappings`] to handle ⊤
    /// explicitly.
    pub fn bindings_of(&self, session: &Session, var: &str) -> Result<Vec<Symbol>> {
        let v = VarId::new(var);
        match self.mappings(session)? {
            RegimeAnswers::Top => Err(TriqError::Other(
                "the session data is inconsistent with the ontology \
                 semantics (Q(D) = ⊤): every binding is an answer; use \
                 mappings() to handle ⊤"
                    .into(),
            )),
            RegimeAnswers::Mappings(ms) => {
                let mut out: Vec<Symbol> = ms.iter().filter_map(|m| m.get(v)).collect();
                out.sort();
                out.dedup();
                Ok(out)
            }
        }
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("plan_id", &self.plan_id)
            .field("output", &self.output)
            .field("rules", &self.runner.program().rules.len())
            .field("semantics", &self.semantics())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_rdf::parse_turtle;
    use triq_sparql::parse_pattern;

    fn g2() -> Graph {
        parse_turtle(
            "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman name \"Jeffrey Ullman\" .\n\
             dbAho is_coauthor_of dbUllman .\n\
             dbAho name \"Alfred Aho\" .",
        )
        .unwrap()
    }

    #[test]
    fn sparql_text_roundtrip() {
        let engine = Engine::new();
        let q = engine
            .prepare(Sparql(
                "SELECT ?X WHERE { ?Y is_author_of ?Z . ?Y name ?X }",
            ))
            .unwrap();
        let session = engine.load_graph(g2());
        let names = q.bindings_of(&session, "X").unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), "Jeffrey Ullman");
    }

    #[test]
    fn one_prepared_query_many_sessions() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?Y, name, ?X) -> query(?X).", "query"))
            .unwrap();
        let s1 = engine.load_graph(g2());
        let s2 = engine
            .load_turtle("someone name \"Somebody Else\" .")
            .unwrap();
        let s3 = engine.session();
        assert_eq!(q.execute(&s1).unwrap().len(), 2);
        assert!(q.execute(&s2).unwrap().contains(&["Somebody Else"]));
        assert!(q.execute(&s3).unwrap().is_empty());
    }

    #[test]
    fn session_cache_hits_and_invalidation() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?Y, name, ?X) -> q(?X).", "q"))
            .unwrap();
        let mut session = engine.load_graph(g2());
        assert_eq!(q.execute(&session).unwrap().len(), 2);
        let after_first = engine.stats();
        assert_eq!(q.execute(&session).unwrap().len(), 2);
        let after_second = engine.stats();
        assert_eq!(after_second.chase_runs, after_first.chase_runs);
        assert_eq!(after_second.cache_hits, after_first.cache_hits + 1);
        // Mutation invalidates.
        session.insert_triple("x", "name", "X New");
        assert_eq!(q.execute(&session).unwrap().len(), 3);
        let after_third = engine.stats();
        assert_eq!(after_third.chase_runs, after_first.chase_runs + 1);
    }

    #[test]
    fn streaming_matches_materialized() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?X, ?P, ?Y) -> pair(?X, ?Y).", "pair"))
            .unwrap();
        let session = engine.load_graph(g2());
        let materialized = q.execute(&session).unwrap();
        let mut streamed: Vec<Vec<Symbol>> = q.execute_iter(&session).unwrap().collect();
        streamed.sort();
        let expected: Vec<Vec<Symbol>> = materialized.tuples().iter().cloned().collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn semantics_selection_and_default() {
        let engine = Engine::builder()
            .default_semantics(Semantics::RegimeAll)
            .build();
        let pattern = parse_pattern("{ ?X eats _:B }").unwrap();
        let q_default = engine.prepare(&pattern).unwrap();
        assert_eq!(q_default.semantics(), Some(Semantics::RegimeAll));
        let q_pinned = engine.prepare((&pattern, Semantics::Plain)).unwrap();
        assert_eq!(q_pinned.semantics(), Some(Semantics::Plain));
    }

    #[test]
    fn output_in_body_is_rejected_with_code() {
        let engine = Engine::new();
        let err = engine.prepare(Datalog("q(?X) -> r(?X).", "q")).unwrap_err();
        assert_eq!(err.code(), "E-OUTPUT-IN-BODY");
    }

    #[test]
    fn bindings_of_errors_on_inconsistent_graph() {
        let engine = Engine::new();
        let session = engine
            .load_turtle(
                "cat owl:disjointWith dog .\n\
                 cat rdf:type owl:Class .\n\
                 dog rdf:type owl:Class .\n\
                 felix rdf:type cat .\n\
                 felix rdf:type dog .",
            )
            .unwrap();
        let q = engine
            .prepare((
                parse_pattern("{ ?X rdf:type cat }").unwrap(),
                Semantics::RegimeU,
            ))
            .unwrap();
        // mappings() reports ⊤ explicitly…
        assert!(q.mappings(&session).unwrap().is_top());
        // …while the flat binding list refuses to flatten it away.
        assert!(q.bindings_of(&session, "X").is_err());
    }

    #[test]
    fn with_config_keeps_identity_when_unchanged() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?X, ?P, ?Y) -> out(?X).", "out"))
            .unwrap();
        let session = engine.load_turtle("a p b .").unwrap();
        let same = q.clone().with_config(q.config());
        q.execute(&session).unwrap();
        let runs_before = engine.stats().chase_runs;
        // Same config → same cache identity → cache hit, no extra chase.
        same.execute(&session).unwrap();
        assert_eq!(engine.stats().chase_runs, runs_before);
        // A different config is a different plan and re-runs the chase.
        let deeper = q.clone().with_config(ChaseConfig {
            max_null_depth: 9,
            ..q.config()
        });
        deeper.execute(&session).unwrap();
        assert_eq!(engine.stats().chase_runs, runs_before + 1);
    }

    #[test]
    fn mappings_on_datalog_query_errors() {
        let engine = Engine::new();
        let q = engine
            .prepare(Datalog("triple(?X, ?P, ?Y) -> out(?X).", "out"))
            .unwrap();
        let session = engine.session();
        assert!(q.mappings(&session).is_err());
    }

    #[test]
    fn libraries_are_unioned_at_prepare_time() {
        let engine = Engine::builder()
            .library(crate::engine::same_as_regime_library())
            .build();
        let pattern = parse_pattern("{ ?Y is_author_of ?Z . ?Y name ?X }").unwrap();
        let q = engine.prepare((pattern, Semantics::RegimeU)).unwrap();
        let session = engine
            .load_turtle(
                "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman owl:sameAs yagoUllman .\n\
             yagoUllman name \"Jeffrey Ullman\" .",
            )
            .unwrap();
        let names = q.bindings_of(&session, "X").unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), "Jeffrey Ullman");
    }
}
