//! The TriQ 1.0 and TriQ-Lite 1.0 query types (Definitions 4.2 and 6.1),
//! with language membership enforced at construction time.

use triq_common::{intern, Result, Symbol, TriqError};
use triq_datalog::{
    classify_program, Answers, ChaseConfig, Database, Program, ProgramClassification, Query,
};
use triq_owl2ql::tau_db;
use triq_rdf::Graph;

/// A TriQ 1.0 query: a stratified *weakly-frontier-guarded* Datalog∃,¬s,⊥
/// query (Definition 4.2). Eval is ExpTime-complete in data complexity
/// (Theorem 4.4), so evaluation takes an explicit [`ChaseConfig`] budget.
#[derive(Clone, Debug)]
pub struct TriqQuery {
    query: Query,
    classification: ProgramClassification,
}

impl TriqQuery {
    /// Validates membership in TriQ 1.0 and wraps the query.
    pub fn new(program: Program, output: &str) -> Result<TriqQuery> {
        let classification = classify_program(&program);
        if !classification.is_triq_1_0() {
            return Err(TriqError::NotInLanguage {
                language: "TriQ 1.0",
                reason: classification.violations.join("; "),
            });
        }
        Ok(TriqQuery {
            query: Query::new(program, intern(output))?,
            classification,
        })
    }

    /// The underlying Datalog query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The classification report computed at construction.
    pub fn classification(&self) -> &ProgramClassification {
        &self.classification
    }

    /// Evaluates over a database.
    pub fn evaluate(&self, db: &Database, config: ChaseConfig) -> Result<Answers> {
        self.query.evaluate_with(db, config)
    }

    /// Evaluates over an RDF graph via `τ_db` (§5.1).
    pub fn evaluate_on_graph(&self, graph: &Graph) -> Result<Answers> {
        self.query
            .evaluate_with(&tau_db(graph), ChaseConfig::default())
    }

    /// The output predicate.
    pub fn output(&self) -> Symbol {
        self.query.output
    }
}

/// A TriQ-Lite 1.0 query: a stratified *warded* Datalog∃,¬sg,⊥ query with
/// grounded negation (Definition 6.1). Eval is PTime-complete in data
/// complexity (Theorem 6.7).
#[derive(Clone, Debug)]
pub struct TriqLiteQuery {
    query: Query,
    classification: ProgramClassification,
}

impl TriqLiteQuery {
    /// Validates membership in TriQ-Lite 1.0 and wraps the query.
    pub fn new(program: Program, output: &str) -> Result<TriqLiteQuery> {
        let classification = classify_program(&program);
        if !classification.is_triq_lite_1_0() {
            return Err(TriqError::NotInLanguage {
                language: "TriQ-Lite 1.0",
                reason: classification.violations.join("; "),
            });
        }
        Ok(TriqLiteQuery {
            query: Query::new(program, intern(output))?,
            classification,
        })
    }

    /// The underlying Datalog query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The classification report computed at construction.
    pub fn classification(&self) -> &ProgramClassification {
        &self.classification
    }

    /// Evaluates over a database with the default configuration.
    pub fn evaluate(&self, db: &Database) -> Result<Answers> {
        self.query.evaluate(db)
    }

    /// Evaluates with an explicit chase configuration.
    pub fn evaluate_with(&self, db: &Database, config: ChaseConfig) -> Result<Answers> {
        self.query.evaluate_with(db, config)
    }

    /// Evaluates over an RDF graph via `τ_db` (§5.1).
    pub fn evaluate_on_graph(&self, graph: &Graph) -> Result<Answers> {
        self.query.evaluate(&tau_db(graph))
    }

    /// The output predicate.
    pub fn output(&self) -> Symbol {
        self.query.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_datalog::parse_program;

    #[test]
    fn lite_accepts_warded_rejects_non_warded() {
        // Warded (the Theorem 7.1 witness Π plus an output rule).
        let warded =
            parse_program("p(?X) -> exists ?Y s(?X, ?Y).\n s(?X, ?Y) -> out(?X).").unwrap();
        assert!(TriqLiteQuery::new(warded, "out").is_ok());
        // Not warded (the harmful-escape program from the classifier
        // tests) — but still TriQ 1.0.
        let not_warded = parse_program(
            "p(?X) -> exists ?Y e(?X, ?Y).\n\
             e(?X, ?Y) -> f(?Y).\n\
             e(?X, ?Y), f(?Y) -> g(?Y).\n\
             g(?Y) -> out2(?Y).",
        )
        .unwrap();
        assert!(TriqLiteQuery::new(not_warded.clone(), "out2").is_err());
        assert!(TriqQuery::new(not_warded, "out2").is_ok());
    }

    #[test]
    fn clique_program_is_triq_but_not_lite() {
        let q = triq_datalog::builders::clique_query();
        assert!(TriqQuery::new(q.program.clone(), "yes").is_ok());
        assert!(TriqLiteQuery::new(q.program, "yes").is_err());
    }

    #[test]
    fn evaluate_on_graph_uses_tau_db() {
        let graph = triq_rdf::parse_turtle(
            "dbUllman is_author_of \"The Complete Book\" .\n\
             dbUllman name \"Jeffrey Ullman\" .",
        )
        .unwrap();
        let rules =
            parse_program("triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).")
                .unwrap();
        let q = TriqLiteQuery::new(rules, "query").unwrap();
        let ans = q.evaluate_on_graph(&graph).unwrap();
        assert!(ans.contains(&["Jeffrey Ullman"]));
    }

    #[test]
    fn error_messages_name_the_language() {
        let not_warded = parse_program(
            "p(?X) -> exists ?Y e(?X, ?Y).\n\
             e(?X, ?Y) -> f(?Y).\n\
             e(?X, ?Y), f(?Y) -> g(?Y).",
        )
        .unwrap();
        let err = TriqLiteQuery::new(not_warded, "g").unwrap_err();
        assert!(err.to_string().contains("TriQ-Lite 1.0"));
    }
}
