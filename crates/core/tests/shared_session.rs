//! Concurrency tests for [`SharedSession`]: snapshot isolation, reader
//! progress during an in-flight apply, and cross-plan consistency.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use triq::prelude::*;

const TC: &str = "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                  t(?X, ?Y) -> out(?X, ?Y).";

fn chain_session(engine: &Engine, n: usize) -> Session {
    let mut session = engine.session();
    for i in 0..n {
        session.add_fact("e", &[&format!("n{i}"), &format!("n{}", i + 1)]);
    }
    session
}

#[test]
fn shared_session_is_send_sync_and_clone() {
    fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<SharedSession>();
}

#[test]
fn readers_see_committed_snapshots_only() {
    let engine = Engine::new();
    let q = engine.prepare(Datalog(TC, "out")).unwrap();
    let shared = chain_session(&engine, 3).into_shared();
    assert_eq!(shared.execute(&q).unwrap().len(), 6);

    // A snapshot taken now keeps answering the old state even after
    // later deltas are applied and published.
    let before = shared.snapshot();
    let v0 = before.version();
    let applied = shared.apply(&Delta::new().insert("e", &["n3", "n4"]));
    assert_eq!(applied.inserted, 1);
    assert!(applied.version > v0);
    assert_eq!(before.try_execute(&q).unwrap().len(), 6, "old snapshot");
    assert_eq!(shared.execute(&q).unwrap().len(), 10, "new snapshot");
    assert_eq!(shared.version(), applied.version);
}

#[test]
fn snapshots_are_cross_plan_consistent_mid_update() {
    // Two plans over the same data: a snapshot must answer both at the
    // SAME version, even when taken while a writer races.
    let engine = Engine::new();
    let edges = engine
        .prepare(Datalog("e(?X, ?Y) -> edge(?X, ?Y).", "edge"))
        .unwrap();
    let reach = engine.prepare(Datalog(TC, "out")).unwrap();
    let shared = chain_session(&engine, 2).into_shared();
    shared.execute(&edges).unwrap();
    shared.execute(&reach).unwrap();

    let writer = {
        let shared = shared.clone();
        thread::spawn(move || {
            for i in 2..40 {
                shared
                    .apply(&Delta::new().insert("e", &[&format!("n{i}"), &format!("n{}", i + 1)]));
            }
        })
    };
    // Readers: every snapshot must be internally consistent — the edge
    // count and the closure size must correspond to the same chain
    // length (for a chain of k edges: k edges, k·(k+1)/2 closure pairs).
    for _ in 0..200 {
        let snap = shared.snapshot();
        let (Some(e), Some(t)) = (snap.try_execute(&edges), snap.try_execute(&reach)) else {
            panic!("both plans were materialized before the writer started");
        };
        let k = e.len();
        assert_eq!(
            t.len(),
            k * (k + 1) / 2,
            "snapshot v{} mixes plan states: {k} edges but {} closure pairs",
            snap.version(),
            t.len()
        );
    }
    writer.join().unwrap();
    let final_snap = shared.snapshot();
    assert_eq!(final_snap.try_execute(&edges).unwrap().len(), 40);
}

#[test]
fn readers_progress_during_a_long_apply() {
    // The acceptance shape: readers must never be blocked for the full
    // duration of an apply — publication is a pointer swap, and reads
    // hold no lock the writer takes. A large delta keeps the writer busy
    // while reader threads keep completing reads against the previous
    // published snapshot; at least some reads must finish strictly
    // inside the apply window.
    let engine = Engine::new();
    let q = engine.prepare(Datalog(TC, "out")).unwrap();
    let shared = chain_session(&engine, 2).into_shared();
    assert_eq!(shared.execute(&q).unwrap().len(), 3);

    let applying = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let reads_during_apply = Arc::new(AtomicUsize::new(0));

    let mut readers = Vec::new();
    for _ in 0..2 {
        let shared = shared.clone();
        let q = q.clone();
        let applying = applying.clone();
        let done = done.clone();
        let reads_during_apply = reads_during_apply.clone();
        readers.push(thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                let was_applying = applying.load(Ordering::SeqCst);
                let answers = shared.execute(&q).unwrap();
                assert!(answers.len() >= 3, "never an empty or partial state");
                // A read that started and finished while the apply was
                // still in flight proves readers are not serialized
                // behind the writer.
                if was_applying && applying.load(Ordering::SeqCst) {
                    reads_during_apply.fetch_add(1, Ordering::SeqCst);
                }
                thread::yield_now();
            }
        }));
    }

    // A delta big enough that its incremental application takes real
    // time (quadratic closure growth).
    let mut big = Delta::new();
    for i in 2..220 {
        big = big.insert("e", &[&format!("n{i}"), &format!("n{}", i + 1)]);
    }
    applying.store(true, Ordering::SeqCst);
    let applied = shared.apply(&big);
    applying.store(false, Ordering::SeqCst);
    done.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(applied.inserted, 218);
    assert_eq!(shared.execute(&q).unwrap().len(), 220 * 221 / 2);
    assert!(
        reads_during_apply.load(Ordering::SeqCst) > 0,
        "no read completed during the apply window — readers are being \
         blocked for the duration of the writer's work"
    );
}

#[test]
fn first_execution_of_a_new_plan_extends_the_snapshot() {
    let engine = Engine::new();
    let q1 = engine.prepare(Datalog(TC, "out")).unwrap();
    let shared = chain_session(&engine, 2).into_shared();
    shared.execute(&q1).unwrap();
    assert_eq!(shared.snapshot().plans(), 1);
    // Preparing and executing a second plan later must not disturb the
    // first plan's published outcome (same version, map extended).
    let v = shared.version();
    let q2 = engine
        .prepare(Datalog("e(?X, ?Y) -> edge(?X, ?Y).", "edge"))
        .unwrap();
    assert_eq!(shared.execute(&q2).unwrap().len(), 2);
    let snap = shared.snapshot();
    assert_eq!(snap.version(), v);
    assert_eq!(snap.plans(), 2);
    assert!(snap.try_execute(&q1).is_some());
}

#[test]
fn apply_routes_triples_through_the_graph() {
    let engine = Engine::new();
    let shared = engine
        .load_turtle("a knows b .\n b knows c .")
        .unwrap()
        .into_shared();
    let q = engine
        .prepare(Sparql("SELECT ?X WHERE { ?X knows ?Y }"))
        .unwrap();
    assert_eq!(shared.execute(&q).unwrap().len(), 2);
    let applied = shared.apply(
        &Delta::new()
            .insert("triple", &["c", "knows", "d"])
            .delete("triple", &["a", "knows", "b"]),
    );
    assert_eq!((applied.inserted, applied.deleted), (1, 1));
    let answers = shared.execute(&q).unwrap();
    assert_eq!(answers.len(), 2);
    assert!(answers.contains(&["c"]));
    assert!(!answers.contains(&["a"]));
    // SPARQL decoding works against snapshots too.
    let snap = shared.snapshot();
    match snap.try_mappings(&q).unwrap().unwrap() {
        RegimeAnswers::Mappings(ms) => assert_eq!(ms.len(), 2),
        RegimeAnswers::Top => panic!("consistent graph"),
    }
}

#[test]
fn degraded_view_is_dropped_not_served_stale() {
    // A budget the initial state fits but the delta pushes past: the
    // view's apply fails, the plan drops out of the snapshot, and the
    // next execution reports the failure (rather than serving a stale
    // or empty fixpoint).
    let engine = Engine::builder().max_atoms(20).build();
    let q = engine.prepare(Datalog(TC, "out")).unwrap();
    let shared = chain_session(&engine, 3).into_shared();
    assert_eq!(shared.execute(&q).unwrap().len(), 6);
    let mut big = Delta::new();
    for i in 3..30 {
        big = big.insert("e", &[&format!("n{i}"), &format!("n{}", i + 1)]);
    }
    shared.apply(&big);
    assert_eq!(shared.snapshot().plans(), 0, "failed view dropped");
    let err = shared.execute(&q).unwrap_err();
    assert_eq!(err.code(), "E-RESOURCE");
}
