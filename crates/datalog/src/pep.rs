//! Program expressive power (§7, Theorems 7.1/7.2).
//!
//! `Pep_L[Π]` collects triples `(D, Λ, t)` where `Λ` is a set of output
//! rules over a fresh output predicate and `t ∈ Q(D)` for `Q = (Π ∪ Λ,
//! p)`. Theorem 7.1 separates Datalog from warded Datalog∃ under this
//! notion via a three-line witness, reproduced here verbatim; experiment
//! E8 exercises it and verifies the coexistence property the proof relies
//! on for arbitrary Datalog programs.

use crate::chase::ChaseConfig;
use crate::instance::Database;
use crate::{parse_program, Program, Query};
use triq_common::{intern, Result};

/// The witness of Theorem 7.1: `Π = {p(X) → ∃Y s(X,Y)}`,
/// `Λ₁ = {s(X,Y) → q}`, `Λ₂ = {s(X,Y), p(Y) → q}`, `D = {p(c)}`.
pub struct PepWitness {
    /// The warded Datalog∃ program Π.
    pub pi: Program,
    /// Output rules Λ₁ (fires on the invented null).
    pub lambda1: Program,
    /// Output rules Λ₂ (requires the null to satisfy `p` — never true).
    pub lambda2: Program,
    /// The database `{p(c)}`.
    pub db: Database,
}

/// Builds the Theorem 7.1 witness.
pub fn theorem_7_1_witness() -> PepWitness {
    let pi = parse_program("p(?X) -> exists ?Y s(?X, ?Y).").expect("Π is well-formed");
    let lambda1 = parse_program("s(?X, ?Y) -> q().").expect("Λ1 is well-formed");
    let lambda2 = parse_program("s(?X, ?Y), p(?Y) -> q().").expect("Λ2 is well-formed");
    let mut db = Database::new();
    db.add_fact("p", &["c"]);
    PepWitness {
        pi,
        lambda1,
        lambda2,
        db,
    }
}

/// Evaluates `(Π ∪ Λ, q)` on `D` and reports whether the empty tuple `()`
/// is an answer.
pub fn empty_tuple_in_answer(pi: &Program, lambda: &Program, db: &Database) -> Result<bool> {
    let q = Query::new(pi.union(lambda), intern("q"))?;
    let ans = q.evaluate_with(db, ChaseConfig::default())?;
    Ok(ans.contains(&[]))
}

/// The coexistence property of the Theorem 7.1 proof: for a *Datalog*
/// program `Π'`, `() ∈ Q₁'(D)` implies `() ∈ Q₂'(D)` on the witness
/// database — because a Datalog program derives no nulls, any `s(a,b)`
/// it derives has `b ∈ dom(D) ∪ consts(Π')`, and on `D = {p(c)}` the only
/// candidate is `c` itself, which satisfies `p`. Returns the pair of
/// membership flags for an arbitrary candidate program.
pub fn coexistence_flags(datalog_pi: &Program, witness: &PepWitness) -> Result<(bool, bool)> {
    let in1 = empty_tuple_in_answer(datalog_pi, &witness.lambda1, &witness.db)?;
    let in2 = empty_tuple_in_answer(datalog_pi, &witness.lambda2, &witness.db)?;
    Ok((in1, in2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify_program;

    #[test]
    fn witness_separates_warded_from_datalog() {
        let w = theorem_7_1_witness();
        let c = classify_program(&w.pi);
        assert!(c.warded);
        assert!(!c.plain_datalog);
        // () ∈ Q1(D) and () ∉ Q2(D): the separation of Theorem 7.1.
        assert!(empty_tuple_in_answer(&w.pi, &w.lambda1, &w.db).unwrap());
        assert!(!empty_tuple_in_answer(&w.pi, &w.lambda2, &w.db).unwrap());
    }

    #[test]
    fn datalog_programs_exhibit_coexistence() {
        let w = theorem_7_1_witness();
        // A sample of Datalog programs over the schema {p/1, s/2}: in each
        // case () ∈ Q1'(D) implies () ∈ Q2'(D).
        let candidates = [
            "p(?X) -> s(?X, ?X).",
            "p(?X), p(?Y) -> s(?X, ?Y).",
            "p(?X) -> s(?X, ?X).\n s(?X, ?Y) -> s(?Y, ?X).",
            "p(?X), !p0(?X) -> s(?X, ?X).\n p(?X) -> aux(?X).",
        ];
        for src in candidates {
            let pi = parse_program(src).unwrap();
            assert!(classify_program(&pi).plain_datalog);
            let (in1, in2) = coexistence_flags(&pi, &w).unwrap();
            assert!(!in1 || in2, "coexistence violated by: {src}");
        }
        // And a program deriving no s at all: both absent.
        let pi = parse_program("p(?X) -> aux(?X).").unwrap();
        let (in1, in2) = coexistence_flags(&pi, &w).unwrap();
        assert!(!in1 && !in2);
    }
}
