//! Affected positions of a Datalog∃ program (§4.1).
//!
//! A position `p[i]` is *affected* if (1) an existentially quantified
//! variable occurs at it in some rule head, or (2) some rule has a variable
//! occurring in its body *only* at affected positions that is propagated to
//! the head at `p[i]`. Affected positions over-approximate where labeled
//! nulls may appear during the chase.

use crate::Program;
use std::collections::{HashMap, HashSet};
use triq_common::{Symbol, Term, VarId};

/// A position `p[i]` (0-based internally; the paper is 1-based).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pos {
    /// The predicate.
    pub pred: Symbol,
    /// The 0-based argument index.
    pub index: usize,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Display 1-based like the paper: p[1].
        write!(f, "{}[{}]", self.pred, self.index + 1)
    }
}

/// A set of positions.
pub type PositionSet = HashSet<Pos>;

/// Computes `affected(Π)` for the *positive, constraint-free* part of the
/// program handed in. Callers wanting the paper's `affected(ex(Π)⁺)` should
/// pass `program.positive_part()` — [`crate::classify_program`] does this
/// for you.
pub fn affected_positions(program: &Program) -> PositionSet {
    let mut affected: PositionSet = HashSet::new();
    // Base case: existential variables in heads.
    for rule in &program.rules {
        for head in &rule.head {
            for (i, t) in head.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    if rule.exist_vars.contains(v) {
                        affected.insert(Pos {
                            pred: head.pred,
                            index: i,
                        });
                    }
                }
            }
        }
    }
    // Inductive case, to fixpoint.
    loop {
        let mut changed = false;
        for rule in &program.rules {
            // Occurrences of each body variable (positive body only: the
            // definition is stated for Datalog∃ programs).
            let mut occurrences: HashMap<VarId, Vec<Pos>> = HashMap::new();
            for atom in &rule.body_pos {
                for (i, t) in atom.terms.iter().enumerate() {
                    if let Term::Var(v) = t {
                        occurrences.entry(*v).or_default().push(Pos {
                            pred: atom.pred,
                            index: i,
                        });
                    }
                }
            }
            for head in &rule.head {
                for (i, t) in head.terms.iter().enumerate() {
                    let Term::Var(v) = t else { continue };
                    let Some(occ) = occurrences.get(v) else {
                        continue; // existential — handled in the base case
                    };
                    if occ.iter().all(|p| affected.contains(p)) {
                        let pos = Pos {
                            pred: head.pred,
                            index: i,
                        };
                        changed |= affected.insert(pos);
                    }
                }
            }
        }
        if !changed {
            return affected;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use triq_common::intern;

    fn pos(pred: &str, one_based: usize) -> Pos {
        Pos {
            pred: intern(pred),
            index: one_based - 1,
        }
    }

    /// Example 4.1 of the paper, verbatim.
    #[test]
    fn example_4_1() {
        let p = parse_program(
            "p(?X, ?Y), s(?Y, ?Z) -> exists ?W t(?Y, ?X, ?W).\n\
             t(?X, ?Y, ?Z) -> exists ?W p(?W, ?Z).\n\
             t(?X, ?Y, ?Z) -> s(?X, ?Y).",
        )
        .unwrap();
        let aff = affected_positions(&p);
        // The paper: affected = {t[3], p[1], t[2], p[2], s[2]}; t[1] is NOT
        // affected because ?Y also occurs at s[1] ∉ affected.
        let expected: PositionSet = [
            pos("t", 3),
            pos("p", 1),
            pos("t", 2),
            pos("p", 2),
            pos("s", 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(aff, expected);
        assert!(!aff.contains(&pos("t", 1)));
    }

    #[test]
    fn plain_datalog_has_no_affected_positions() {
        let p = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y).\n\
             e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).",
        )
        .unwrap();
        assert!(affected_positions(&p).is_empty());
    }

    #[test]
    fn propagation_through_recursion() {
        // p[1] affected; r copies p into q, so q[1] affected too.
        let p = parse_program(
            "a(?X) -> exists ?Y p(?Y).\n\
             p(?X) -> q(?X).",
        )
        .unwrap();
        let aff = affected_positions(&p);
        assert!(aff.contains(&pos("p", 1)));
        assert!(aff.contains(&pos("q", 1)));
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(pos("p", 2).to_string(), "p[2]");
    }
}
