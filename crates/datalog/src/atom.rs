//! Atoms and built-in literals.

use std::fmt;
use triq_common::{NullId, Symbol, Term, VarId};

/// An atom `p(t₁, …, tₙ)` (§3.2). Predicate names are interned symbols;
/// terms may be constants, nulls or variables.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate `p`.
    pub pred: Symbol,
    /// The argument tuple `t₁, …, tₙ`.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(pred: Symbol, terms: Vec<Term>) -> Self {
        Atom { pred, terms }
    }

    /// Builds an atom, interning the predicate name.
    pub fn from_parts(pred: &str, terms: Vec<Term>) -> Self {
        Atom::new(Symbol::new(pred), terms)
    }

    /// The arity of the atom's predicate occurrence.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterator over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// Iterator over the nulls of the atom (with repetitions).
    pub fn nulls(&self) -> impl Iterator<Item = NullId> + '_ {
        self.terms.iter().filter_map(|t| t.as_null())
    }

    /// True iff the atom contains no variables.
    pub fn is_ground_or_null(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Applies a substitution, leaving unmapped variables in place.
    pub fn apply(&self, subst: &dyn Fn(VarId) -> Option<Term>) -> Atom {
        Atom {
            pred: self.pred,
            terms: self
                .terms
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => subst(v).unwrap_or(t),
                    other => other,
                })
                .collect(),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// A built-in comparison literal in a rule body.
///
/// The paper's appendix (omitted in the text) encodes SPARQL FILTER
/// conditions; built-in (in)equality over rule variables is the standard
/// engine-level realization and is equivalent to the Datalog¬s encoding via
/// a domain predicate (tested in `triq-translate`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `t₁ = t₂`.
    Eq(Term, Term),
    /// `t₁ != t₂`.
    Neq(Term, Term),
}

impl Builtin {
    /// The variables mentioned by the builtin.
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        let (a, b) = match *self {
            Builtin::Eq(a, b) | Builtin::Neq(a, b) => (a, b),
        };
        [a, b].into_iter().filter_map(|t| t.as_var())
    }

    /// Evaluates the builtin under a full substitution of its variables.
    pub fn holds(&self, subst: &dyn Fn(VarId) -> Option<Term>) -> bool {
        let resolve = |t: Term| match t {
            Term::Var(v) => subst(v).expect("builtin variable must be bound"),
            other => other,
        };
        match *self {
            Builtin::Eq(a, b) => resolve(a) == resolve(b),
            Builtin::Neq(a, b) => resolve(a) != resolve(b),
        }
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Builtin::Eq(a, b) => write!(f, "{a} = {b}"),
            Builtin::Neq(a, b) => write!(f, "{a} != {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::intern;

    fn v(name: &str) -> Term {
        Term::Var(VarId::new(name))
    }

    #[test]
    fn atom_accessors() {
        let a = Atom::from_parts("p", vec![v("X"), Term::constant("c"), v("X")]);
        assert_eq!(a.arity(), 3);
        assert_eq!(a.vars().count(), 2);
        assert!(!a.is_ground_or_null());
        assert_eq!(a.to_string(), "p(?X, c, ?X)");
    }

    #[test]
    fn apply_substitution() {
        let a = Atom::from_parts("p", vec![v("X"), v("Y")]);
        let b = a.apply(&|var| (var == VarId::new("X")).then(|| Term::constant("x")));
        assert_eq!(b.terms[0], Term::constant("x"));
        assert_eq!(b.terms[1], v("Y"));
    }

    #[test]
    fn builtin_semantics() {
        let x = Term::Const(intern("x"));
        let y = Term::Const(intern("y"));
        let subst = |var: VarId| Some(if var == VarId::new("X") { x } else { y });
        assert!(Builtin::Eq(v("X"), x).holds(&subst));
        assert!(!Builtin::Eq(v("X"), v("Y")).holds(&subst));
        assert!(Builtin::Neq(v("X"), v("Y")).holds(&subst));
        assert_eq!(Builtin::Neq(v("X"), v("Y")).vars().count(), 2);
    }
}
