//! The chase procedure (§3.2) with stratified negation, constraints and
//! provenance, implemented as a semi-naive fixpoint per stratum over the
//! columnar [`Instance`] store.
//!
//! The paper defines the semantics of a Datalog∃,¬s,⊥ program via the
//! (possibly infinite) chase `S₀ = chase(D, ex(Π)₀)`,
//! `Sᵢ = chase(S_{i-1}, (ex(Π)ᵢ)^{S_{i-1}})`. A real engine needs a
//! terminating realization; we provide two existential strategies:
//!
//! * [`ExistentialStrategy::Skolem`] — the semi-oblivious chase: the null
//!   created for an existential variable is a function of the rule and the
//!   frontier values, memoized, with a configurable *invention-depth* bound
//!   (a null built from depth-`d` nulls has depth `d+1`). This terminates
//!   on every program and is the workhorse; for the warded programs of
//!   §6 the *ground* atoms (which is all a query answer may contain)
//!   saturate at shallow depth, and the engine reports via
//!   [`ChaseStats::truncated`] whether the bound was ever hit.
//! * [`ExistentialStrategy::Restricted`] — the standard restricted chase:
//!   an existential rule fires only when its head is not already satisfied
//!   by an extension of the match. Fewer nulls, same ground semantics,
//!   but termination is not guaranteed in general, hence the same depth
//!   bound applies.
//!
//! Both strategies respect the paper's indefinite-grounding treatment of
//! nulls under negation: negated atoms are evaluated against the closed
//! lower strata (nulls compare by identity, as the grounding of §3.2
//! prescribes).
//!
//! # Execution model
//!
//! Rules are *compiled*: every rule variable becomes a slot index, and
//! every fixed term a [`TermId`], so a candidate match is a flat
//! `Vec<Option<TermId>>` — the join loop compares `u32`s against the
//! relation columns and allocates nothing per probed tuple.
//!
//! Within a stratum round, match *enumeration* is read-only (semi-naive
//! delta windows cap every candidate range at the round's start length),
//! so it is collected **morsel-parallel**: every rule's pivot windows are
//! split into fixed-size morsels of pivot atoms
//! ([`ChaseConfig::morsel_size`]), a `std::thread::scope` worker pool
//! drains the flat task list through a shared atomic cursor into
//! per-task flat buffers, and the buffers are merged back in task order.
//! Because the morsels partition each rule's match set disjointly and the
//! merged matches then pass through the same canonical per-rule sort the
//! sequential path uses, *application* (serial, in rule order) produces
//! byte-for-byte the same instance — identical [`AtomId`]s, nulls and
//! provenance — regardless of morsel size or worker count. A rule whose
//! pivot atom leads its join order additionally routes the leading scan
//! through the vectorized column kernels of [`crate::kernels`] when the
//! relation is dense and the filter is unselective enough
//! ([`ChaseStats::kernel_filter_rows`] counts the rows so screened).

use crate::instance::{AtomId, Database, Derivation, Instance, Relation};
use crate::kernels;
use crate::planner::{self, BoundOrder, JoinPlanner, ProbeKind, RulePlan};
use crate::{Atom, Builtin, Program, Rule, Stratification};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use triq_common::{Result, Symbol, Term, TermId, TriqError, VarId};
use triq_obs::{self as obs, Phase, Recorder, Timer};

/// How existential rules instantiate their head nulls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExistentialStrategy {
    /// Semi-oblivious (skolem) chase with memoized nulls.
    Skolem,
    /// Restricted chase: fire only if the head is not already satisfied.
    Restricted,
}

/// Chase configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaseConfig {
    /// Existential strategy.
    pub strategy: ExistentialStrategy,
    /// Maximum null invention depth; rule applications that would create a
    /// deeper null are skipped and [`ChaseStats::truncated`] is set.
    pub max_null_depth: u32,
    /// Hard budget on the total number of stored atoms.
    pub max_atoms: usize,
    /// Evaluate a round with morsel-parallel match collection once its
    /// delta window (new atoms since the previous round) holds at least
    /// this many atoms (`usize::MAX` forces sequential evaluation; `0`
    /// forces the morsel machinery even on one worker, for the
    /// schedule-equality tests). Parallelism never changes results —
    /// only wall-clock: tiny rounds stay on one thread where task
    /// dispatch would dominate.
    pub parallel_threshold: usize,
    /// Atoms per morsel: each rule's pivot window is split into tasks of
    /// at most this many pivot candidates, which workers steal
    /// independently. Smaller morsels balance better and bigger ones
    /// amortize task overhead; `0` is treated as `1`. The differential
    /// suites force extreme values (down to 1) to pin schedule
    /// independence.
    pub morsel_size: usize,
    /// Worker threads for morsel-parallel collection; `0` (the default)
    /// means one per available hardware thread.
    pub chase_threads: usize,
    /// Which join order the match loops follow. Plans never change
    /// results — the collected matches of a round are applied in a
    /// canonical order regardless of how they were enumerated — so this
    /// knob trades planning work against join work (and the
    /// [`JoinPlanner::ReverseOrder`] setting exists purely for the
    /// differential planner harness).
    pub planner: JoinPlanner,
    /// Whether the *facade* (`triq-core`'s `Engine`) may answer point
    /// queries by chasing the magic-set rewrite of the program instead
    /// of the program itself (see `crate::demand`). The chase proper
    /// ignores this field — it evaluates whatever program it is given —
    /// but it lives here so the knob rides along with every prepared
    /// plan, is covered by plan fingerprints, and survives the
    /// persistence round-trip.
    pub demand: crate::demand::DemandMode,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            strategy: ExistentialStrategy::Skolem,
            max_null_depth: 6,
            max_atoms: 10_000_000,
            parallel_threshold: 4096,
            morsel_size: 2048,
            chase_threads: 0,
            planner: JoinPlanner::CostBased,
            demand: crate::demand::DemandMode::Auto,
        }
    }
}

/// Counters describing a chase run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaseStats {
    /// Atoms derived beyond the database.
    pub derived: usize,
    /// Fixpoint rounds summed over strata.
    pub rounds: usize,
    /// Nulls invented.
    pub nulls: usize,
    /// Candidate tuples examined by the join loops (index probes).
    pub probes: u64,
    /// Strata whose rules were evaluated with parallel match collection.
    pub parallel_strata: usize,
    /// Morsel tasks executed by the parallel match collector (each task
    /// is one rule × pivot × window slice of at most
    /// [`ChaseConfig::morsel_size`] pivot candidates).
    pub morsel_batches: u64,
    /// Rows examined by the vectorized column filter kernels
    /// ([`crate::kernels`]) while enumerating leading-atom scans — the
    /// work that runs as chunked compare loops instead of per-row hash
    /// probes.
    pub kernel_filter_rows: u64,
    /// Rule join plans compiled from live statistics (first stats-driven
    /// planning of a rule within a run).
    pub plans_compiled: usize,
    /// Plans recomputed at stratum entry because relation cardinalities
    /// drifted past the planner's threshold.
    pub replans: usize,
    /// On-demand joint hash indexes built (rebuilds after tombstone or
    /// compaction invalidation count again).
    pub index_builds: usize,
    /// Probes served by a hash index (whole-tuple probes at fully-bound
    /// plan positions plus joint-index lookups) instead of posting-list
    /// scans.
    pub index_probes: u64,
    /// Whether some existential application was skipped because it would
    /// exceed `max_null_depth`. When `false`, the computed instance is the
    /// *exact* chase (it happened to be finite within the bound).
    pub truncated: bool,
}

/// The result of chasing a database with a program. `Clone` so the
/// incremental subsystem can snapshot a maintained outcome behind an
/// `Arc` and mutate its own copy.
#[derive(Clone, Debug)]
pub struct ChaseOutcome {
    /// The computed (finite) instance `Π(D)` (up to the depth bound).
    pub instance: Instance,
    /// Whether some constraint fired, i.e. `Π(D) = ⊤` (§3.2).
    pub inconsistent: bool,
    /// Counters.
    pub stats: ChaseStats,
}

// ---------------------------------------------------------------------------
// Compiled form: variables become slot indexes, fixed terms become TermIds.
// ---------------------------------------------------------------------------

/// A term of a compiled atom: a fixed ground value or a slot.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CTerm {
    Fixed(TermId),
    Slot(u16),
}

#[derive(Clone, Debug)]
pub(crate) struct CAtom {
    pub(crate) pred: Symbol,
    pub(crate) terms: Vec<CTerm>,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum CBuiltin {
    Eq(CTerm, CTerm),
    Neq(CTerm, CTerm),
}

/// A constraint body with slot-indexed variables.
#[derive(Clone, Debug)]
pub(crate) struct CompiledConstraint {
    n_slots: usize,
    atoms: Vec<CAtom>,
    builtins: Vec<CBuiltin>,
}

/// A rule with slot-indexed variables.
#[derive(Clone, Debug)]
pub(crate) struct CompiledRule {
    pub(crate) n_slots: usize,
    pub(crate) body_pos: Vec<CAtom>,
    pub(crate) body_neg: Vec<CAtom>,
    pub(crate) builtins: Vec<CBuiltin>,
    pub(crate) heads: Vec<CAtom>,
    /// Slots of frontier variables, in ascending `VarId` order (stable
    /// skolem keys).
    frontier_slots: Vec<u16>,
    /// Slots of the existential variables, in declaration order.
    pub(crate) exist_slots: Vec<u16>,
}

struct SlotMap {
    map: HashMap<VarId, u16>,
}

impl SlotMap {
    fn new() -> Self {
        SlotMap {
            map: HashMap::new(),
        }
    }

    fn slot(&mut self, v: VarId) -> u16 {
        let next = self.map.len() as u16;
        *self.map.entry(v).or_insert(next)
    }

    fn compile_atom(&mut self, atom: &Atom) -> CAtom {
        CAtom {
            pred: atom.pred,
            terms: atom.terms.iter().map(|&t| self.compile_term(t)).collect(),
        }
    }

    fn compile_term(&mut self, t: Term) -> CTerm {
        match t {
            Term::Var(v) => CTerm::Slot(self.slot(v)),
            other => CTerm::Fixed(TermId::from_term(other).expect("ground term")),
        }
    }
}

fn compile_constraint(c: &crate::Constraint) -> CompiledConstraint {
    let mut slot_map = SlotMap::new();
    let atoms: Vec<CAtom> = c.body.iter().map(|a| slot_map.compile_atom(a)).collect();
    let builtins: Vec<CBuiltin> = c
        .builtins
        .iter()
        .map(|b| match *b {
            Builtin::Eq(x, y) => CBuiltin::Eq(slot_map.compile_term(x), slot_map.compile_term(y)),
            Builtin::Neq(x, y) => CBuiltin::Neq(slot_map.compile_term(x), slot_map.compile_term(y)),
        })
        .collect();
    CompiledConstraint {
        n_slots: slot_map.map.len(),
        atoms,
        builtins,
    }
}

pub(crate) fn compile_rule(rule: &Rule) -> CompiledRule {
    let mut slots = SlotMap::new();
    let body_pos = rule
        .body_pos
        .iter()
        .map(|a| slots.compile_atom(a))
        .collect();
    let body_neg = rule
        .body_neg
        .iter()
        .map(|a| slots.compile_atom(a))
        .collect();
    let builtins = rule
        .builtins
        .iter()
        .map(|b| match *b {
            Builtin::Eq(x, y) => CBuiltin::Eq(slots.compile_term(x), slots.compile_term(y)),
            Builtin::Neq(x, y) => CBuiltin::Neq(slots.compile_term(x), slots.compile_term(y)),
        })
        .collect();
    let heads = rule.head.iter().map(|a| slots.compile_atom(a)).collect();
    let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
    frontier.sort_unstable();
    let frontier_slots = frontier.iter().map(|&v| slots.slot(v)).collect();
    let exist_slots = rule.exist_vars.iter().map(|&v| slots.slot(v)).collect();
    CompiledRule {
        n_slots: slots.map.len(),
        body_pos,
        body_neg,
        builtins,
        heads,
        frontier_slots,
        exist_slots,
    }
}

/// A slot assignment during matching (usually a strided slice of a flat
/// per-round buffer).
pub(crate) type Slots = [Option<TermId>];

#[inline]
pub(crate) fn resolve(t: CTerm, slots: &Slots) -> Option<TermId> {
    match t {
        CTerm::Fixed(v) => Some(v),
        CTerm::Slot(s) => slots[s as usize],
    }
}

/// The most selective candidate id slice for `atom` under `slots` within
/// `range` (smallest per-column posting list, falling back to the
/// relation's full extent). Ids are ascending, so the range restriction is
/// binary search. `rel` is the relation matching the atom's predicate and
/// arity (`None` when no such tuples exist).
fn candidates<'a>(
    rel: Option<&'a Relation>,
    atom: &CAtom,
    slots: &Slots,
    range: (AtomId, AtomId),
) -> &'a [AtomId] {
    let Some(rel) = rel else { return &[] };
    let mut best: &[AtomId] = rel.atom_ids();
    for (i, &t) in atom.terms.iter().enumerate() {
        if let Some(value) = resolve(t, slots) {
            let ids = rel.ids_by_column(i, value);
            if ids.len() < best.len() {
                best = ids;
            }
        }
    }
    // Window the ascending list: short lists take the branch-free linear
    // count kernel (one vectorized pass beats binary-search branching),
    // long ones binary-search.
    let (lo, hi) = if best.len() <= SHORT_LIST {
        (
            kernels::count_lt(best, range.0),
            kernels::count_lt(best, range.1),
        )
    } else {
        (
            best.partition_point(|&id| id < range.0),
            best.partition_point(|&id| id < range.1),
        )
    };
    &best[lo..hi]
}

/// Posting lists at most this long are windowed with the linear
/// [`kernels::count_lt`] kernel instead of binary search.
const SHORT_LIST: usize = 128;

/// Enumerates homomorphisms from `atoms` into `inst`, where atom `i` may
/// only match stored atoms with id in `ranges[i]`. Calls `on_match` for
/// every complete match; returning `false` stops the enumeration. Returns
/// the number of candidate tuples probed.
fn enumerate_matches(
    inst: &Instance,
    atoms: &[CAtom],
    ranges: &[(AtomId, AtomId)],
    slots: &mut Slots,
    on_match: &mut dyn FnMut(&Slots, &[AtomId]) -> bool,
) -> u64 {
    let rels: Vec<Option<&Relation>> = atoms
        .iter()
        .map(|a| inst.relation(a.pred, a.terms.len()))
        .collect();
    let mut chosen: Vec<AtomId> = vec![0; atoms.len()];
    let mut solved: Vec<bool> = vec![false; atoms.len()];
    let mut probes = 0u64;
    solve(
        inst,
        atoms,
        &rels,
        ranges,
        slots,
        &mut chosen,
        &mut solved,
        0,
        &mut probes,
        on_match,
    );
    probes
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn solve(
    inst: &Instance,
    atoms: &[CAtom],
    rels: &[Option<&Relation>],
    ranges: &[(AtomId, AtomId)],
    slots: &mut Slots,
    chosen: &mut Vec<AtomId>,
    solved: &mut Vec<bool>,
    depth: usize,
    probes: &mut u64,
    on_match: &mut dyn FnMut(&Slots, &[AtomId]) -> bool,
) -> bool {
    if depth == atoms.len() {
        return on_match(slots, chosen);
    }
    // Pick the unsolved atom with the fewest candidates (keeping the
    // winning slice — candidate selection is not recomputed).
    let mut pick = usize::MAX;
    let mut cands: &[AtomId] = &[];
    let mut pick_len = usize::MAX;
    for (i, atom) in atoms.iter().enumerate() {
        if solved[i] {
            continue;
        }
        let c = candidates(rels[i], atom, slots, ranges[i]);
        if c.len() < pick_len {
            pick = i;
            pick_len = c.len();
            cands = c;
            if c.is_empty() {
                break;
            }
        }
    }
    let atom = &atoms[pick];
    *probes += cands.len() as u64;
    if cands.is_empty() {
        return true;
    }
    solved[pick] = true;
    let rel = rels[pick].expect("an atom with candidates has a relation");
    let mut trail: Vec<u16> = Vec::with_capacity(atom.terms.len());
    for &id in cands {
        let row = inst.row_of(id);
        if !bind_row(rel, atom, row, slots, &mut trail) {
            continue;
        }
        chosen[pick] = id;
        let keep_going = solve(
            inst,
            atoms,
            rels,
            ranges,
            slots,
            chosen,
            solved,
            depth + 1,
            probes,
            on_match,
        );
        for s in trail.drain(..) {
            slots[s as usize] = None;
        }
        if !keep_going {
            solved[pick] = false;
            return false;
        }
    }
    solved[pick] = false;
    true
}

/// Unifies `atom`'s compiled pattern against stored row `row`, binding
/// free slots and pushing them onto `trail`. On mismatch every slot
/// bound here is unwound (trail drained) and `false` is returned. This
/// is the one candidate-verification loop both join solvers (`solve`
/// and `solve_ordered`) share — the binding/unwind semantics must never
/// diverge between the greedy and the planned path.
#[inline]
fn bind_row(
    rel: &Relation,
    atom: &CAtom,
    row: u32,
    slots: &mut Slots,
    trail: &mut Vec<u16>,
) -> bool {
    for (c, pat) in atom.terms.iter().enumerate() {
        let val = rel.value(c, row);
        let matched = match *pat {
            CTerm::Fixed(f) => f == val,
            CTerm::Slot(s) => match slots[s as usize] {
                Some(b) => b == val,
                None => {
                    slots[s as usize] = Some(val);
                    trail.push(s);
                    true
                }
            },
        };
        if !matched {
            for s in trail.drain(..) {
                slots[s as usize] = None;
            }
            return false;
        }
    }
    true
}

/// Like [`solve`], but following a precompiled [`BoundOrder`] instead of
/// picking adaptively: position `pos` probes atom `order.order[pos]` the
/// way `order.probes[pos]` prescribes. Fully-bound positions resolve with
/// one whole-tuple hash probe; joint-indexed positions look up their
/// candidate list in one hash (falling back to the per-column path when
/// the index was invalidated and not yet rebuilt). `index_probes` counts
/// the probes a hash index answered.
#[allow(clippy::too_many_arguments)]
fn solve_ordered(
    inst: &Instance,
    atoms: &[CAtom],
    rels: &[Option<&Relation>],
    ranges: &[(AtomId, AtomId)],
    order: &BoundOrder,
    pos: usize,
    slots: &mut Slots,
    chosen: &mut Vec<AtomId>,
    key_buf: &mut Vec<TermId>,
    probes: &mut u64,
    index_probes: &mut u64,
    on_match: &mut dyn FnMut(&Slots, &[AtomId]) -> bool,
) -> bool {
    if pos == atoms.len() {
        return on_match(slots, chosen);
    }
    let ai = order.order[pos] as usize;
    let atom = &atoms[ai];
    let range = ranges[ai];
    if order.probes[pos] == ProbeKind::Full {
        // Every column is bound: one O(1) hash probe decides the
        // position, and equality is guaranteed — no per-column loop, no
        // slot binding.
        let Some(rel) = rels[ai] else { return true };
        key_buf.clear();
        key_buf.extend(
            atom.terms
                .iter()
                .map(|&t| resolve(t, slots).expect("full-probe position is fully bound")),
        );
        *index_probes += 1;
        let Some(row) = rel.find_row(key_buf) else {
            return true;
        };
        let id = rel.row_to_id(row).expect("found rows are stored");
        if id < range.0 || id >= range.1 {
            return true;
        }
        *probes += 1;
        chosen[ai] = id;
        return solve_ordered(
            inst,
            atoms,
            rels,
            ranges,
            order,
            pos + 1,
            slots,
            chosen,
            key_buf,
            probes,
            index_probes,
            on_match,
        );
    }
    let cands: &[AtomId] = match &order.probes[pos] {
        ProbeKind::Joint(cols) => {
            let joint = rels[ai].and_then(|rel| {
                rel.joint_ids(
                    cols,
                    cols.iter().map(|&c| {
                        resolve(atom.terms[c as usize], slots).expect("joint columns are bound")
                    }),
                )
            });
            match joint {
                Some(ids) => {
                    *index_probes += 1;
                    let lo = ids.partition_point(|&id| id < range.0);
                    let hi = ids.partition_point(|&id| id < range.1);
                    &ids[lo..hi]
                }
                None => candidates(rels[ai], atom, slots, range),
            }
        }
        _ => candidates(rels[ai], atom, slots, range),
    };
    *probes += cands.len() as u64;
    if cands.is_empty() {
        return true;
    }
    let rel = rels[ai].expect("an atom with candidates has a relation");
    let mut trail: Vec<u16> = Vec::with_capacity(atom.terms.len());
    for &id in cands {
        let row = inst.row_of(id);
        if !bind_row(rel, atom, row, slots, &mut trail) {
            continue;
        }
        chosen[ai] = id;
        let keep_going = solve_ordered(
            inst,
            atoms,
            rels,
            ranges,
            order,
            pos + 1,
            slots,
            chosen,
            key_buf,
            probes,
            index_probes,
            on_match,
        );
        for s in trail.drain(..) {
            slots[s as usize] = None;
        }
        if !keep_going {
            return false;
        }
    }
    true
}

/// Encodes a compiled atom under a total slot assignment into `key`.
#[inline]
pub(crate) fn instantiate_into(atom: &CAtom, slots: &Slots, key: &mut Vec<TermId>) {
    key.clear();
    key.extend(
        atom.terms
            .iter()
            .map(|&t| resolve(t, slots).expect("unbound slot at instantiation")),
    );
}

/// One rule's collected matches for a round, stored flat (strided):
/// match `i` is `slots_flat[i*n_slots..][..n_slots]` plus
/// `ids_flat[i*n_body..][..n_body]` — two amortized allocations per rule
/// per round instead of two per match.
struct RuleMatches {
    count: usize,
    n_slots: usize,
    n_body: usize,
    slots_flat: Vec<Option<TermId>>,
    ids_flat: Vec<AtomId>,
    probes: u64,
    index_probes: u64,
    /// Morsel tasks merged into this rule's matches (0 on the
    /// sequential path).
    batches: u64,
    /// Rows the vectorized filter kernels examined.
    kernel_rows: u64,
}

/// A growing flat match buffer plus the counters accumulated while
/// filling it — what one morsel task produces, and what the per-rule
/// merge concatenates before canonicalization.
#[derive(Default)]
struct MatchAccum {
    count: usize,
    slots_flat: Vec<Option<TermId>>,
    ids_flat: Vec<AtomId>,
    probes: u64,
    index_probes: u64,
    kernel_rows: u64,
    batches: u64,
}

impl MatchAccum {
    /// Appends another accumulator's matches (in task order — the
    /// canonical sort in [`finish_rule_matches`] makes the final order
    /// schedule-independent).
    fn absorb(&mut self, other: MatchAccum) {
        self.count += other.count;
        self.slots_flat.extend_from_slice(&other.slots_flat);
        self.ids_flat.extend_from_slice(&other.ids_flat);
        self.probes += other.probes;
        self.index_probes += other.index_probes;
        self.kernel_rows += other.kernel_rows;
        self.batches += other.batches + 1;
    }
}

/// One unit of morsel-parallel work: match rule `rule_pos` (a position
/// into the round's `rule_indices`) with pivot atom `pivot` restricted
/// to candidate ids in `lo..hi` — a slice of at most
/// [`ChaseConfig::morsel_size`] pivot candidates. In the first round
/// (`delta_start == 0`) `pivot` is the rule's *split* atom instead.
struct MorselTask {
    rule_pos: u32,
    pivot: u32,
    lo: AtomId,
    hi: AtomId,
}

/// Per-rule scratch the match loops reuse across pivots (and one morsel
/// task allocates once): the solvers restore `slots`/`solved` on unwind,
/// so reuse is safe.
struct PivotScratch {
    ranges: Vec<(AtomId, AtomId)>,
    slots: Vec<Option<TermId>>,
    chosen: Vec<AtomId>,
    solved: Vec<bool>,
    key_buf: Vec<TermId>,
    /// Kernel selection vector (absolute row positions).
    sel: Vec<u32>,
    /// Kernel-materialized pivot candidate ids.
    pivot_ids: Vec<AtomId>,
}

impl PivotScratch {
    fn for_rule(rule: &CompiledRule) -> PivotScratch {
        let n = rule.body_pos.len();
        PivotScratch {
            ranges: vec![(0, 0); n],
            slots: vec![None; rule.n_slots],
            chosen: vec![0; n],
            solved: vec![false; n],
            key_buf: Vec::new(),
            sel: Vec::new(),
            pivot_ids: Vec::new(),
        }
    }
}

/// Minimum rows in a scan window before the kernel leading scan is worth
/// a vectorized pass (below one [`kernels::CHUNK`] the scalar loop wins).
const KERNEL_MIN_ROWS: usize = 64;
/// The kernel scan is skipped when some fixed column's posting list is
/// this many times smaller than the row window — the posting-list probe
/// touches far fewer rows than even a vectorized scan would.
const KERNEL_SELECTIVITY: usize = 4;

/// Computes the pivot atom's candidate ids for a window with the
/// vectorized column kernels: maps the id range to a contiguous row
/// range (dense relations only — no tombstones), filters the atom's
/// fixed columns and repeated-variable column pairs as chunked compare
/// passes, and gathers the surviving rows' ids into `pivot_ids`
/// (ascending). Returns `false` — leaving the caller on the posting-list
/// path — when the relation is missing or not dense, the atom has
/// nothing to filter on, the window is too small, or a posting list is
/// selective enough to beat a scan. The candidate *set* is exactly what
/// the posting path would enumerate-and-verify, so taking either path
/// never changes the match set.
fn kernel_pivot_ids(
    rel: Option<&Relation>,
    atom: &CAtom,
    range: (AtomId, AtomId),
    sel: &mut Vec<u32>,
    pivot_ids: &mut Vec<AtomId>,
    kernel_rows: &mut u64,
) -> bool {
    let Some(rel) = rel else { return false };
    if !rel.is_dense() {
        return false;
    }
    // The atom's filterable structure: fixed columns and repeated-slot
    // column pairs (first occurrence vs repeat).
    let mut fixed: Vec<(usize, TermId)> = Vec::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (c, &t) in atom.terms.iter().enumerate() {
        match t {
            CTerm::Fixed(v) => fixed.push((c, v)),
            CTerm::Slot(s) => {
                if let Some(first) = atom.terms[..c]
                    .iter()
                    .position(|&u| matches!(u, CTerm::Slot(s2) if s2 == s))
                {
                    pairs.push((first, c));
                }
            }
        }
    }
    if fixed.is_empty() && pairs.is_empty() {
        return false;
    }
    let row_ids = rel.row_ids();
    let r_lo = row_ids.partition_point(|&id| id < range.0);
    let r_hi = row_ids.partition_point(|&id| id < range.1);
    let window = r_hi - r_lo;
    if window < KERNEL_MIN_ROWS {
        return false;
    }
    for &(c, v) in &fixed {
        if rel.ids_by_column(c, v).len() * KERNEL_SELECTIVITY < window {
            return false;
        }
    }
    sel.clear();
    let base = r_lo as u32;
    if let Some(&(c0, v0)) = fixed.first() {
        kernels::filter_eq(&rel.col(c0)[r_lo..r_hi], v0, base, sel);
        *kernel_rows += window as u64;
        for &(c, v) in &fixed[1..] {
            *kernel_rows += sel.len() as u64;
            kernels::refine_eq(&rel.col(c)[r_lo..r_hi], v, base, sel);
        }
        for &(a, b) in &pairs {
            *kernel_rows += sel.len() as u64;
            kernels::refine_pair_eq(&rel.col(a)[r_lo..r_hi], &rel.col(b)[r_lo..r_hi], base, sel);
        }
    } else {
        let (a, b) = pairs[0];
        kernels::filter_pair_eq(&rel.col(a)[r_lo..r_hi], &rel.col(b)[r_lo..r_hi], base, sel);
        *kernel_rows += window as u64;
        for &(a, b) in &pairs[1..] {
            *kernel_rows += sel.len() as u64;
            kernels::refine_pair_eq(&rel.col(a)[r_lo..r_hi], &rel.col(b)[r_lo..r_hi], base, sel);
        }
    }
    pivot_ids.clear();
    kernels::gather(row_ids, sel, pivot_ids);
    true
}

/// Enumerates one pivot's matches of one rule within a round, appending
/// them (unsorted) to `out`. `pivot_range` restricts the pivot atom's
/// candidate ids — `(delta_start, prev_len)` for a whole pivot window,
/// or a morsel slice of it. For the first round (`delta_start == 0`)
/// there is a single call per rule and `pivot` names the *split* atom
/// whose scan the morsels partition; every other atom sees the full
/// `(0, prev_len)` window.
///
/// Read-only on the instance, so any number of calls (across pivots,
/// morsels, threads) may run concurrently; because the pivot windows of
/// different calls are disjoint, their match sets partition the round's
/// total match set — which is what makes morsel-parallel collection
/// exact, not approximate.
#[allow(clippy::too_many_arguments)]
fn match_one_pivot(
    inst: &Instance,
    rule: &CompiledRule,
    plan: Option<&RulePlan>,
    rels: &[Option<&Relation>],
    scratch: &mut PivotScratch,
    delta_start: AtomId,
    prev_len: AtomId,
    pivot: usize,
    pivot_range: (AtomId, AtomId),
    out: &mut MatchAccum,
) {
    let PivotScratch {
        ranges,
        slots,
        chosen,
        solved,
        key_buf,
        sel,
        pivot_ids,
    } = scratch;
    // Semi-naive windows: atoms before the pivot must be old, the pivot
    // must be in its (possibly morsel-restricted) delta slice, the rest
    // unconstrained but capped at prev_len so a round never consumes its
    // own output. First round: everything capped at prev_len.
    for (i, r) in ranges.iter_mut().enumerate() {
        *r = if i == pivot {
            pivot_range
        } else if delta_start == 0 || i > pivot {
            (0, prev_len)
        } else {
            (0, delta_start)
        };
    }
    let order = plan.map(|p| {
        if delta_start == 0 {
            &p.full
        } else {
            &p.pivots[pivot]
        }
    });
    let MatchAccum {
        count,
        slots_flat,
        ids_flat,
        probes,
        index_probes,
        kernel_rows,
        batches: _,
    } = out;
    let mut on_match = |s: &Slots, ids: &[AtomId]| {
        *count += 1;
        slots_flat.extend_from_slice(s);
        ids_flat.extend_from_slice(ids);
        true
    };
    // Kernel leading scan: when the pivot atom leads the join anyway
    // (always, under greedy; when the plan's order starts with it, under
    // a plan) and has fixed columns or repeated variables to filter on,
    // enumerate its candidates with the vectorized kernels and hand each
    // bound row to the remaining join. Only the enumeration of the same
    // candidate set changes — never the match set.
    let plan_leads_with_pivot = match order {
        None => true,
        Some(o) => {
            o.order[0] as usize == pivot && matches!(o.probes[0], ProbeKind::Scan | ProbeKind::Cols)
        }
    };
    let pa = &rule.body_pos[pivot];
    if plan_leads_with_pivot
        && kernel_pivot_ids(rels[pivot], pa, pivot_range, sel, pivot_ids, kernel_rows)
    {
        let rel = rels[pivot].expect("kernel scan implies the relation exists");
        *probes += pivot_ids.len() as u64;
        let mut trail: Vec<u16> = Vec::with_capacity(pa.terms.len());
        solved[pivot] = true;
        for &id in pivot_ids.iter() {
            let row = inst.row_of(id);
            if !bind_row(rel, pa, row, slots, &mut trail) {
                continue;
            }
            chosen[pivot] = id;
            let keep_going = match order {
                Some(order) => solve_ordered(
                    inst,
                    &rule.body_pos,
                    rels,
                    ranges,
                    order,
                    1,
                    slots,
                    chosen,
                    key_buf,
                    probes,
                    index_probes,
                    &mut on_match,
                ),
                None => solve(
                    inst,
                    &rule.body_pos,
                    rels,
                    ranges,
                    slots,
                    chosen,
                    solved,
                    1,
                    probes,
                    &mut on_match,
                ),
            };
            for s in trail.drain(..) {
                slots[s as usize] = None;
            }
            if !keep_going {
                break;
            }
        }
        solved[pivot] = false;
        return;
    }
    match order {
        Some(order) => {
            solve_ordered(
                inst,
                &rule.body_pos,
                rels,
                ranges,
                order,
                0,
                slots,
                chosen,
                key_buf,
                probes,
                index_probes,
                &mut on_match,
            );
        }
        None => {
            solve(
                inst,
                &rule.body_pos,
                rels,
                ranges,
                slots,
                chosen,
                solved,
                0,
                probes,
                &mut on_match,
            );
        }
    }
}

/// Canonicalizes an accumulated match buffer into [`RuleMatches`]:
/// distinct matches always have distinct chosen-id tuples (the windows
/// of different pivots are disjoint, morsels partition each window, and
/// within a slice the enumeration visits each candidate combination
/// once), so sorting by those tuples yields one schedule-independent
/// order. Enumeration often already emits in this order (single-atom
/// bodies always do), so check before paying for the permutation.
fn finish_rule_matches(rule: &CompiledRule, accum: MatchAccum, rec: &dyn Recorder) -> RuleMatches {
    let _sort = Timer::start(rec, Phase::ChaseSort);
    let n = rule.body_pos.len();
    let MatchAccum {
        count,
        mut slots_flat,
        mut ids_flat,
        probes,
        index_probes,
        kernel_rows,
        batches,
    } = accum;
    let already_sorted =
        || (1..count).all(|i| ids_flat[(i - 1) * n..i * n] <= ids_flat[i * n..(i + 1) * n]);
    if count > 1 && n > 0 && !already_sorted() {
        let mut perm: Vec<u32> = (0..count as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            ids_flat[a * n..(a + 1) * n].cmp(&ids_flat[b * n..(b + 1) * n])
        });
        let n_slots = rule.n_slots;
        let mut sorted_slots: Vec<Option<TermId>> = Vec::with_capacity(slots_flat.len());
        let mut sorted_ids: Vec<AtomId> = Vec::with_capacity(ids_flat.len());
        for &i in &perm {
            let i = i as usize;
            sorted_slots.extend_from_slice(&slots_flat[i * n_slots..(i + 1) * n_slots]);
            sorted_ids.extend_from_slice(&ids_flat[i * n..(i + 1) * n]);
        }
        slots_flat = sorted_slots;
        ids_flat = sorted_ids;
    }
    RuleMatches {
        count,
        n_slots: rule.n_slots,
        n_body: n,
        slots_flat,
        ids_flat,
        probes,
        index_probes,
        batches,
        kernel_rows,
    }
}

/// Collects the semi-naive matches of one rule within a round, through
/// the rule's compiled [`RulePlan`] (or the adaptive greedy pick when
/// `plan` is `None`). Read-only on the instance: every candidate range is
/// capped at `prev_len`, so the result is independent of any same-round
/// insertions — which is what makes per-rule parallel collection exact,
/// not approximate.
///
/// The returned matches are in **canonical order** (sorted by their
/// chosen body-atom ids). The match *set* of a round is a function of the
/// instance and the windows alone, so canonicalizing the apply order
/// makes the chase's output — AtomIds, null numbering, provenance, all of
/// it — independent of the join order the planner picked. That is the
/// invariant `tests/differential_planner.rs` pins byte-for-byte.
fn collect_rule_matches(
    inst: &Instance,
    rule: &CompiledRule,
    plan: Option<&RulePlan>,
    delta_start: AtomId,
    prev_len: AtomId,
    rec: &dyn Recorder,
) -> RuleMatches {
    let n = rule.body_pos.len();
    let rels: Vec<Option<&Relation>> = rule
        .body_pos
        .iter()
        .map(|a| inst.relation(a.pred, a.terms.len()))
        .collect();
    let mut scratch = PivotScratch::for_rule(rule);
    let mut accum = MatchAccum::default();
    for pivot in 0..n {
        if delta_start == 0 && pivot > 0 {
            break; // first round: single full join
        }
        match_one_pivot(
            inst,
            rule,
            plan,
            &rels,
            &mut scratch,
            delta_start,
            prev_len,
            pivot,
            (delta_start, prev_len),
            &mut accum,
        );
    }
    finish_rule_matches(rule, accum, rec)
}

/// The skolem memoization retained across incremental delta applications:
/// (rule index, frontier values) → the null ids invented for the rule's
/// existential variables. Resuming a chase **must** reuse this map — a
/// fresh one would re-invent nulls for frontiers that already fired,
/// producing atoms a from-scratch chase would never contain.
pub(crate) type SkolemMemo = HashMap<(usize, Box<[TermId]>), Vec<TermId>>;

pub(crate) struct Engine<'a> {
    compiled: &'a [CompiledRule],
    constraints: &'a [CompiledConstraint],
    config: ChaseConfig,
    /// Hardware threads, sampled once per chase run (the per-round hot
    /// loop must not re-query the scheduler).
    hw_threads: usize,
    /// Per-rule join plans, index-aligned with `compiled`. Seeded from
    /// the runner's build-time heuristic plans and re-planned at stratum
    /// entry from live statistics (see [`Engine::plan_stratum`]). Unused
    /// under [`JoinPlanner::Greedy`].
    plans: Vec<RulePlan>,
    pub(crate) instance: Instance,
    pub(crate) stats: ChaseStats,
    /// Skolem memo: (rule, frontier values) → existential null ids.
    pub(crate) skolem: SkolemMemo,
    /// Scratch row for head instantiation / negative checks.
    key_buf: Vec<TermId>,
    /// Telemetry hook: phase timings and spans. The no-op default costs
    /// one virtual call + branch per *round*-granularity site; the
    /// innermost probe loops carry no hooks at all.
    rec: &'a dyn Recorder,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        compiled: &'a [CompiledRule],
        constraints: &'a [CompiledConstraint],
        plans: Vec<RulePlan>,
        seed: Instance,
        config: ChaseConfig,
        rec: &'a dyn Recorder,
    ) -> Self {
        debug_assert_eq!(plans.len(), compiled.len());
        Engine {
            compiled,
            constraints,
            config,
            hw_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            plans,
            instance: seed,
            stats: ChaseStats::default(),
            skolem: HashMap::new(),
            key_buf: Vec::new(),
            rec,
        }
    }

    /// The plan `collect_rule_matches` should follow for rule `ri`
    /// (`None` = the adaptive greedy pick). Cost-based plans defer to
    /// the greedy pick when they have nothing to offer (short bodies
    /// with no hash-indexed probe positions — see
    /// [`RulePlan::worthwhile`]); the forced-reverse test mode never
    /// defers.
    fn plan_for(&self, ri: usize) -> Option<&RulePlan> {
        match self.config.planner {
            JoinPlanner::Greedy => None,
            JoinPlanner::ReverseOrder => Some(&self.plans[ri]),
            JoinPlanner::CostBased => {
                let plan = &self.plans[ri];
                plan.worthwhile.then_some(plan)
            }
        }
    }

    /// Stratum-entry planning: (re-)compiles the join plan of every rule
    /// in the stratum from live relation statistics when cardinalities
    /// have drifted past the planner's threshold, and makes sure every
    /// joint hash index the plans want exists (tombstones invalidate
    /// them wholesale, so this also re-builds after deletion phases).
    fn plan_stratum(&mut self, rule_indices: &[usize]) {
        if self.config.planner == JoinPlanner::Greedy {
            return;
        }
        let mut replanned = false;
        for &ri in rule_indices {
            let rule = &self.compiled[ri];
            match self.config.planner {
                JoinPlanner::Greedy => unreachable!("checked above"),
                JoinPlanner::ReverseOrder => {
                    // Data-free by design: compiled once, never re-planned.
                    if !self.plans[ri].from_stats {
                        let mut plan = planner::plan_rule_reversed(rule);
                        plan.from_stats = true;
                        self.plans[ri] = plan;
                        self.stats.plans_compiled += 1;
                        replanned = true;
                    }
                }
                JoinPlanner::CostBased => {
                    // The drift gate governs *all* re-planning: the
                    // build-time heuristic plan (snapshot all-zero)
                    // keeps serving tiny relations — below the drift
                    // floor the order genuinely doesn't matter — and is
                    // replaced by a stats-driven plan exactly when
                    // cardinalities move past the threshold.
                    let plan = &self.plans[ri];
                    let counts = planner::body_row_counts(rule, &self.instance);
                    if planner::drifted(&plan.snapshot, &counts) {
                        if plan.from_stats {
                            self.stats.replans += 1;
                        } else {
                            self.stats.plans_compiled += 1;
                        }
                        self.plans[ri] =
                            planner::plan_rule_timed(rule, Some(&self.instance), self.rec);
                        replanned = true;
                    }
                }
            }
        }
        // Retire indexes no plan (of *any* rule) wants anymore: a stale
        // one would hold its relation's index cap and pay per-insert
        // maintenance forever in an insert-only workload. Only a re-plan
        // can change the wanted union, so this scan is skipped on the
        // common no-drift entry.
        if replanned {
            let wanted: Vec<(Symbol, usize, Box<[u8]>)> = self
                .plans
                .iter()
                .flat_map(|p| p.wanted_indexes.iter().cloned())
                .collect();
            self.instance.retain_joint_indexes(&wanted);
        }
        // Make sure every index this stratum's plans want exists (freed
        // cap slots above are claimable; tombstone invalidation between
        // strata re-triggers builds here too).
        for &ri in rule_indices {
            for (pred, arity, cols) in &self.plans[ri].wanted_indexes {
                // Time the build only when it happens: the common
                // already-built probe must not read the clock.
                let t = self.rec.enabled().then(std::time::Instant::now);
                if self.instance.ensure_joint_index(*pred, *arity, cols) {
                    self.stats.index_builds += 1;
                    if let Some(t) = t {
                        self.rec
                            .phase(Phase::IndexBuild, t.elapsed().as_nanos() as u64);
                    }
                }
            }
        }
    }

    /// Destructures the engine into its retained state (instance, run
    /// counters, skolem memo, stats-driven join plans) — the pieces a
    /// [`crate::incremental`] materialized view keeps alive between
    /// delta applications (retained plans only re-plan on drift instead
    /// of from scratch at every apply).
    pub(crate) fn into_parts(self) -> (Instance, ChaseStats, SkolemMemo, Vec<RulePlan>) {
        (self.instance, self.stats, self.skolem, self.plans)
    }

    /// Restores a retained skolem memo before resuming a chase.
    pub(crate) fn set_skolem(&mut self, memo: SkolemMemo) {
        self.skolem = memo;
    }

    pub(crate) fn builtin_holds(b: CBuiltin, slots: &Slots) -> bool {
        match b {
            CBuiltin::Eq(x, y) => resolve(x, slots) == resolve(y, slots),
            CBuiltin::Neq(x, y) => resolve(x, slots) != resolve(y, slots),
        }
    }

    pub(crate) fn check_negatives_and_builtins(&mut self, rule_idx: usize, slots: &Slots) -> bool {
        let rule = &self.compiled[rule_idx];
        for &b in &rule.builtins {
            if !Self::builtin_holds(b, slots) {
                return false;
            }
        }
        for neg in &rule.body_neg {
            instantiate_into(neg, slots, &mut self.key_buf);
            if self.instance.contains_ids(neg.pred, &self.key_buf) {
                return false;
            }
        }
        true
    }

    /// Applies one rule match; `slots` is mutated to hold existential
    /// values during head instantiation and restored afterwards.
    pub(crate) fn apply(
        &mut self,
        rule_idx: usize,
        slots: &mut Slots,
        body_ids: &[AtomId],
    ) -> Result<()> {
        let rule = &self.compiled[rule_idx];
        if !rule.exist_slots.is_empty() {
            let frontier_vals: Box<[TermId]> = rule
                .frontier_slots
                .iter()
                .map(|&s| slots[s as usize].expect("frontier slot bound"))
                .collect();
            match self.config.strategy {
                ExistentialStrategy::Skolem => {
                    if let Some(known) = self.skolem.get(&(rule_idx, frontier_vals.clone())) {
                        for (&s, &t) in rule.exist_slots.iter().zip(known.iter()) {
                            slots[s as usize] = Some(t);
                        }
                    } else {
                        let depth = self.instance.next_depth_ids(&frontier_vals);
                        if depth > self.config.max_null_depth {
                            self.stats.truncated = true;
                            return Ok(());
                        }
                        let mut nulls = Vec::with_capacity(rule.exist_slots.len());
                        for &s in &rule.exist_slots {
                            let null = TermId::from_null(self.instance.fresh_null(depth));
                            self.stats.nulls += 1;
                            slots[s as usize] = Some(null);
                            nulls.push(null);
                        }
                        self.skolem.insert((rule_idx, frontier_vals), nulls);
                    }
                }
                ExistentialStrategy::Restricted => {
                    // Is the head already satisfied by some extension?
                    let cap = self.instance.len() as AtomId;
                    let ranges = vec![(0, cap); rule.heads.len()];
                    let mut satisfied = false;
                    self.stats.probes += enumerate_matches(
                        &self.instance,
                        &rule.heads,
                        &ranges,
                        slots,
                        &mut |_, _| {
                            satisfied = true;
                            false
                        },
                    );
                    if satisfied {
                        return Ok(());
                    }
                    let depth = self.instance.next_depth_ids(&frontier_vals);
                    if depth > self.config.max_null_depth {
                        self.stats.truncated = true;
                        return Ok(());
                    }
                    for &s in &rule.exist_slots {
                        let null = TermId::from_null(self.instance.fresh_null(depth));
                        self.stats.nulls += 1;
                        slots[s as usize] = Some(null);
                    }
                }
            }
        }
        for head in &self.compiled[rule_idx].heads {
            instantiate_into(head, slots, &mut self.key_buf);
            let (_, fresh) = self.instance.insert_ids(
                head.pred,
                &self.key_buf,
                Some(Derivation {
                    rule: rule_idx,
                    body: body_ids.to_vec(),
                }),
            );
            if fresh {
                self.stats.derived += 1;
                if self.instance.len() > self.config.max_atoms {
                    return Err(TriqError::ResourceExhausted(format!(
                        "chase exceeded the atom budget of {}",
                        self.config.max_atoms
                    )));
                }
                // Amortized ambient-deadline poll beside the atom budget:
                // a request-scoped wall-clock limit installed by the
                // serving layer (thread-local, not part of ChaseConfig —
                // it must not split the plan fingerprint). Checked every
                // 1024 fresh derivations so huge apply batches cannot
                // overshoot a deadline by a whole round.
                if self.stats.derived & 1023 == 0 {
                    triq_common::deadline::check()?;
                }
            }
        }
        // Clear existential slots for the next application of this rule.
        let rule = &self.compiled[rule_idx];
        for &s in &rule.exist_slots {
            slots[s as usize] = None;
        }
        Ok(())
    }

    /// Morsel workers for this run: the configured thread count, or one
    /// per hardware thread when unset.
    fn morsel_workers(&self) -> usize {
        if self.config.chase_threads > 0 {
            self.config.chase_threads
        } else {
            self.hw_threads
        }
    }

    /// The body atom whose scan the first (full-join) round splits into
    /// morsels: the one with the largest live extent below `prev_len`
    /// (most rows to split; ties break on the lowest body index, keeping
    /// the task list deterministic). Restricting any *single* atom's id
    /// range partitions the rule's match set, so the choice affects
    /// balance, never results. `None` when no atom has candidates — the
    /// rule cannot match this round.
    fn split_atom(&self, rule: &CompiledRule, prev_len: AtomId) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (extent, atom index)
        for (i, atom) in rule.body_pos.iter().enumerate() {
            let extent = self
                .instance
                .relation(atom.pred, atom.terms.len())
                .map_or(0, |rel| rel.atom_ids().partition_point(|&id| id < prev_len));
            if best.is_none_or(|(b, _)| extent > b) {
                best = Some((extent, i));
            }
        }
        match best {
            Some((extent, i)) if extent > 0 => Some(i),
            _ => None,
        }
    }

    /// Builds the round's morsel task list: for every rule, every pivot
    /// (the split atom alone in the first round), the pivot atom's live
    /// ids inside the delta window are chunked into slices of at most
    /// `morsel_size`, each becoming one independent task. The task
    /// ranges partition each pivot's window exactly, so the tasks' match
    /// sets partition the round's — any schedule reassembles the same
    /// round.
    fn morsel_tasks(
        &self,
        rule_indices: &[usize],
        delta_start: AtomId,
        prev_len: AtomId,
    ) -> Vec<MorselTask> {
        let morsel = self.config.morsel_size.max(1);
        let mut tasks: Vec<MorselTask> = Vec::new();
        for (pos, &ri) in rule_indices.iter().enumerate() {
            let rule = &self.compiled[ri];
            let n = rule.body_pos.len();
            if n == 0 {
                continue; // bodyless rules derive nothing (no pivot scan)
            }
            let (pivot_lo, pivot_hi) = if delta_start == 0 {
                match self.split_atom(rule, prev_len) {
                    Some(split) => (split, split + 1),
                    None => continue,
                }
            } else {
                (0, n)
            };
            for pivot in pivot_lo..pivot_hi {
                let atom = &rule.body_pos[pivot];
                let Some(rel) = self.instance.relation(atom.pred, atom.terms.len()) else {
                    continue;
                };
                let ids = rel.atom_ids();
                let lo_idx = ids.partition_point(|&id| id < delta_start);
                let hi_idx = ids.partition_point(|&id| id < prev_len);
                let extent = &ids[lo_idx..hi_idx];
                if extent.is_empty() {
                    continue; // the pivot atom has no candidates: no matches
                }
                let mut start = delta_start;
                let mut k = morsel;
                while k < extent.len() {
                    tasks.push(MorselTask {
                        rule_pos: pos as u32,
                        pivot: pivot as u32,
                        lo: start,
                        hi: extent[k],
                    });
                    start = extent[k];
                    k += morsel;
                }
                tasks.push(MorselTask {
                    rule_pos: pos as u32,
                    pivot: pivot as u32,
                    lo: start,
                    hi: prev_len,
                });
            }
        }
        tasks
    }

    /// Collects one round's matches for every rule of the stratum.
    ///
    /// When the round's delta window reaches `parallel_threshold` and
    /// more than one worker is available (`parallel_threshold == 0`
    /// forces the machinery even on one worker, for the
    /// schedule-equality tests), the round is split into **morsel
    /// tasks** — rule × pivot × window slice — which scoped workers
    /// steal off a shared cursor into private flat buffers; the buffers
    /// are then merged per rule in task order and canonicalized exactly
    /// like the sequential path's, so a single hot recursive rule now
    /// scales with cores instead of pinning one. Otherwise every rule is
    /// collected sequentially. Either way the returned matches are
    /// byte-identical; the flag reports whether the morsel path ran.
    fn collect_round(
        &self,
        rule_indices: &[usize],
        delta_start: AtomId,
        prev_len: AtomId,
    ) -> (Vec<RuleMatches>, bool) {
        // The delta window is the work available this round; first round
        // (delta_start == 0) the whole instance is the window. Cheap
        // rejections first — the common case is a sequential round.
        let window = (prev_len - delta_start) as usize;
        let forced = self.config.parallel_threshold == 0;
        let workers = self.morsel_workers();
        let parallel = window >= self.config.parallel_threshold && (workers >= 2 || forced);
        let sequential = |taken: bool| {
            let collected = rule_indices
                .iter()
                .map(|&ri| {
                    let _rule = Timer::start(self.rec, Phase::ChaseRuleMatch);
                    collect_rule_matches(
                        &self.instance,
                        &self.compiled[ri],
                        self.plan_for(ri),
                        delta_start,
                        prev_len,
                        self.rec,
                    )
                })
                .collect::<Vec<_>>();
            (collected, taken)
        };
        if !parallel {
            return sequential(false);
        }
        let tasks = self.morsel_tasks(rule_indices, delta_start, prev_len);
        if tasks.is_empty() {
            return sequential(false);
        }
        let n_workers = workers.min(tasks.len()).max(1);
        if n_workers == 1 {
            // One available worker (forced single-thread or a 1-core
            // host): run the task list inline — same morsel boundaries,
            // same task order, but no spawn and no merge copies, so a
            // forced-morsel schedule stays within noise of the
            // sequential path.
            let mut merged: Vec<MatchAccum> = Vec::new();
            merged.resize_with(rule_indices.len(), MatchAccum::default);
            let mut scratch: Option<(u32, Vec<Option<&Relation>>, PivotScratch)> = None;
            for task in &tasks {
                let ri = rule_indices[task.rule_pos as usize];
                let rule = &self.compiled[ri];
                if !matches!(&scratch, Some((rp, ..)) if *rp == task.rule_pos) {
                    let rels = rule
                        .body_pos
                        .iter()
                        .map(|a| self.instance.relation(a.pred, a.terms.len()))
                        .collect();
                    scratch = Some((task.rule_pos, rels, PivotScratch::for_rule(rule)));
                }
                let (_, rels, scr) = scratch.as_mut().expect("scratch was just ensured");
                let accum = &mut merged[task.rule_pos as usize];
                match_one_pivot(
                    &self.instance,
                    rule,
                    self.plan_for(ri),
                    rels,
                    scr,
                    delta_start,
                    prev_len,
                    task.pivot as usize,
                    (task.lo, task.hi),
                    accum,
                );
                accum.batches += 1;
            }
            // The forced single worker drained every task.
            self.rec.phase(Phase::MorselDrain, tasks.len() as u64);
            let collected = rule_indices
                .iter()
                .zip(merged)
                .map(|(&ri, accum)| finish_rule_matches(&self.compiled[ri], accum, self.rec))
                .collect();
            return (collected, true);
        }
        let cursor = AtomicUsize::new(0);
        let mut outs: Vec<Option<MatchAccum>> = Vec::new();
        outs.resize_with(tasks.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_workers);
            for _ in 0..n_workers {
                let tasks = &tasks;
                let cursor = &cursor;
                let this = &*self;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, MatchAccum)> = Vec::new();
                    loop {
                        let t = cursor.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks.len() {
                            break;
                        }
                        let task = &tasks[t];
                        let ri = rule_indices[task.rule_pos as usize];
                        let rule = &this.compiled[ri];
                        let rels: Vec<Option<&Relation>> = rule
                            .body_pos
                            .iter()
                            .map(|a| this.instance.relation(a.pred, a.terms.len()))
                            .collect();
                        let mut scratch = PivotScratch::for_rule(rule);
                        let mut accum = MatchAccum::default();
                        match_one_pivot(
                            &this.instance,
                            rule,
                            this.plan_for(ri),
                            &rels,
                            &mut scratch,
                            delta_start,
                            prev_len,
                            task.pivot as usize,
                            (task.lo, task.hi),
                            &mut accum,
                        );
                        local.push((t, accum));
                    }
                    local
                }));
            }
            for h in handles {
                let local = h.join().expect("morsel worker must not panic");
                // Per-worker drain count: how evenly the shared cursor
                // spread the round's tasks across workers.
                self.rec.phase(Phase::MorselDrain, local.len() as u64);
                for (t, accum) in local {
                    outs[t] = Some(accum);
                }
            }
        });
        // Merge per rule in task order (tasks are emitted rule-major,
        // pivot-minor, window-ascending), then canonicalize — the same
        // sort the sequential path applies, over the same match set.
        let mut merged: Vec<MatchAccum> = Vec::new();
        merged.resize_with(rule_indices.len(), MatchAccum::default);
        for (task, accum) in tasks.iter().zip(outs) {
            let accum = accum.expect("every morsel task was executed");
            merged[task.rule_pos as usize].absorb(accum);
        }
        let collected = rule_indices
            .iter()
            .zip(merged)
            .map(|(&ri, accum)| finish_rule_matches(&self.compiled[ri], accum, self.rec))
            .collect();
        (collected, true)
    }

    /// Runs the rules of one stratum to fixpoint (semi-naive), starting
    /// from the beginning of the instance.
    fn run_stratum(&mut self, rule_indices: &[usize]) -> Result<()> {
        self.run_stratum_from(rule_indices, 0)
    }

    /// Runs the rules of one stratum to fixpoint, treating only atoms
    /// with id ≥ `initial_delta_start` as new. With `0` this is the full
    /// stratum evaluation; the incremental subsystem resumes a finished
    /// chase by passing the pre-delta id watermark, so the first round
    /// pivots exclusively on the freshly inserted atoms.
    pub(crate) fn run_stratum_from(
        &mut self,
        rule_indices: &[usize],
        initial_delta_start: AtomId,
    ) -> Result<()> {
        // Stratum entry: (re-)plan the stratum's rules against live
        // statistics and build any joint indexes the plans request.
        self.plan_stratum(rule_indices);
        let mut went_parallel = false;
        let mut delta_start: AtomId = initial_delta_start;
        loop {
            // Honor an ambient read deadline (installed by the serving
            // layer on this thread) between rounds; E-RESOURCE here maps
            // to 503 like any other exhausted budget.
            triq_common::deadline::check()?;
            self.stats.rounds += 1;
            let prev_len = self.instance.len() as AtomId;
            if delta_start == prev_len && delta_start != 0 {
                break;
            }
            // Phase 1 (read-only, parallelizable): enumerate matches.
            let (per_rule, was_parallel) = {
                let _match = Timer::start(self.rec, Phase::ChaseMatch);
                self.collect_round(rule_indices, delta_start, prev_len)
            };
            went_parallel |= was_parallel;
            // Phase 2 (serial, in rule order): filter and apply — the
            // same order the purely sequential schedule applies them in.
            let _apply = Timer::start(self.rec, Phase::ChaseApply);
            for (&ri, mut rm) in rule_indices.iter().zip(per_rule) {
                self.stats.probes += rm.probes;
                self.stats.index_probes += rm.index_probes;
                self.stats.morsel_batches += rm.batches;
                self.stats.kernel_filter_rows += rm.kernel_rows;
                for i in 0..rm.count {
                    let slots = &mut rm.slots_flat[i * rm.n_slots..(i + 1) * rm.n_slots];
                    let ids = &rm.ids_flat[i * rm.n_body..(i + 1) * rm.n_body];
                    if self.check_negatives_and_builtins(ri, slots) {
                        self.apply(ri, slots, ids)?;
                    }
                }
            }
            if self.instance.len() as AtomId == prev_len {
                break;
            }
            delta_start = prev_len;
        }
        // Count each stratum at most once, however many rounds went wide.
        if went_parallel {
            self.stats.parallel_strata += 1;
        }
        Ok(())
    }

    pub(crate) fn check_constraints(&mut self) -> bool {
        for c in self.constraints {
            let cap = self.instance.len() as AtomId;
            let ranges = vec![(0, cap); c.atoms.len()];
            let mut slots: Vec<Option<TermId>> = vec![None; c.n_slots];
            let mut fired = false;
            self.stats.probes += enumerate_matches(
                &self.instance,
                &c.atoms,
                &ranges,
                &mut slots,
                &mut |s, _| {
                    if c.builtins.iter().all(|&b| Self::builtin_holds(b, s)) {
                        fired = true;
                        false
                    } else {
                        true
                    }
                },
            );
            if fired {
                return true;
            }
        }
        false
    }
}

/// Rejects a stratification that does not describe `program` — a stale
/// one computed before rules were added, or with out-of-range strata —
/// which would otherwise silently skip rules during the chase.
fn check_stratification(program: &Program, strat: &Stratification) -> Result<()> {
    if strat.rule_stratum.len() != program.rules.len() {
        return Err(TriqError::InvalidProgram(format!(
            "stratification covers {} rules but the program has {} — it was \
             computed for a different program",
            strat.rule_stratum.len(),
            program.rules.len()
        )));
    }
    if let Some(&bad) = strat.rule_stratum.iter().find(|&&s| s > strat.max_stratum) {
        return Err(TriqError::InvalidProgram(format!(
            "stratification assigns stratum {bad} beyond its max_stratum {}",
            strat.max_stratum
        )));
    }
    Ok(())
}

/// Groups rule indices by stratum, in ascending stratum order. The
/// stratification must already have passed [`check_stratification`].
fn rules_by_stratum(program: &Program, strat: &Stratification) -> Vec<Vec<usize>> {
    let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); strat.max_stratum + 1];
    for (i, &s) in strat
        .rule_stratum
        .iter()
        .enumerate()
        .take(program.rules.len())
    {
        grouped[s].push(i);
    }
    grouped
}

/// One full chase over an already-compiled program.
fn run_compiled(
    compiled: &[CompiledRule],
    constraints: &[CompiledConstraint],
    strata_rules: &[Vec<usize>],
    plans: &[RulePlan],
    seed: Instance,
    config: ChaseConfig,
    rec: &dyn Recorder,
) -> Result<ChaseOutcome> {
    let mut engine = chase_to_fixpoint(
        compiled,
        constraints,
        strata_rules,
        plans,
        seed,
        config,
        rec,
    )?;
    let inconsistent = engine.check_constraints();
    let (instance, stats, _, _) = engine.into_parts();
    Ok(ChaseOutcome {
        inconsistent,
        stats,
        instance,
    })
}

/// Runs every stratum of a compiled program to fixpoint over `seed` and
/// returns the engine **with its retained state** (instance, counters,
/// skolem memo) — shared by the one-shot chase above (which consumes it
/// into a [`ChaseOutcome`]) and by `crate::incremental`'s initial
/// materialization (which keeps the memo alive). Constraints are *not*
/// checked here; callers do that on the returned engine.
pub(crate) fn chase_to_fixpoint<'a>(
    compiled: &'a [CompiledRule],
    constraints: &'a [CompiledConstraint],
    strata_rules: &[Vec<usize>],
    plans: &[RulePlan],
    seed: Instance,
    config: ChaseConfig,
    rec: &'a dyn Recorder,
) -> Result<Engine<'a>> {
    let mut engine = Engine::new(compiled, constraints, plans.to_vec(), seed, config, rec);
    for (s, indices) in strata_rules.iter().enumerate() {
        if !indices.is_empty() {
            let _span = obs::span(rec, "stratum", s as u64);
            let _t = Timer::start(rec, Phase::ChaseStratum);
            engine.run_stratum(indices)?;
        }
    }
    Ok(engine)
}

/// A prepared chase: stratification and rule compilation are paid **once**
/// at construction, and [`ChaseRunner::run`] can then be called any number
/// of times against different databases. This is the execution backend of
/// prepared queries — the one-shot [`chase`] / [`chase_stratified`]
/// functions re-derive this state on every call. Cloning copies the
/// compiled state without re-deriving it.
#[derive(Clone, Debug)]
pub struct ChaseRunner {
    program: Program,
    strat: Stratification,
    compiled: Vec<CompiledRule>,
    constraints: Vec<CompiledConstraint>,
    strata_rules: Vec<Vec<usize>>,
    /// Build-time join plans (data-free heuristic: constants first).
    /// Every run starts from these; the engine re-plans per stratum from
    /// live statistics as data arrives.
    plans: Vec<RulePlan>,
    config: ChaseConfig,
    /// Telemetry hook for every run (and the incremental maintenance
    /// built on this runner). Defaults to the zero-cost no-op;
    /// [`ChaseRunner::set_recorder`] installs a live one. Kept out of
    /// [`ChaseConfig`] deliberately — the config stays `Copy + Eq`.
    rec: Arc<dyn Recorder>,
}

impl ChaseRunner {
    /// Validates and stratifies `program`, then compiles its rules into
    /// the slot-indexed form the join loop consumes.
    pub fn new(program: Program, config: ChaseConfig) -> Result<ChaseRunner> {
        program.validate()?;
        let strat = crate::stratify(&program)?;
        ChaseRunner::with_stratification(program, strat, config)
    }

    /// Like [`ChaseRunner::new`] with a precomputed stratification. The
    /// program is not re-validated, but the stratification must match it
    /// (same rule count, in-range strata) — a stale one, e.g. computed
    /// before extra rules were unioned in, is rejected rather than
    /// silently skipping rules.
    pub fn with_stratification(
        program: Program,
        strat: Stratification,
        config: ChaseConfig,
    ) -> Result<ChaseRunner> {
        check_stratification(&program, &strat)?;
        let compiled: Vec<CompiledRule> = program.rules.iter().map(compile_rule).collect();
        let constraints: Vec<CompiledConstraint> =
            program.constraints.iter().map(compile_constraint).collect();
        let strata_rules = rules_by_stratum(&program, &strat);
        let plans = planner::initial_plans(&compiled);
        Ok(ChaseRunner {
            program,
            strat,
            compiled,
            constraints,
            strata_rules,
            plans,
            config,
            rec: Arc::new(obs::Noop),
        })
    }

    /// The prepared program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The slot-compiled rules (for the incremental maintenance engine).
    pub(crate) fn compiled(&self) -> &[CompiledRule] {
        &self.compiled
    }

    /// The compiled constraints.
    pub(crate) fn compiled_constraints(&self) -> &[CompiledConstraint] {
        &self.constraints
    }

    /// Rule indices grouped by stratum, ascending.
    pub(crate) fn strata_rules(&self) -> &[Vec<usize>] {
        &self.strata_rules
    }

    /// The build-time heuristic join plans (per rule).
    pub(crate) fn initial_plans(&self) -> &[RulePlan] {
        &self.plans
    }

    /// The cached stratification.
    pub fn stratification(&self) -> &Stratification {
        &self.strat
    }

    /// The chase configuration used by [`ChaseRunner::run`].
    pub fn config(&self) -> ChaseConfig {
        self.config
    }

    /// Replaces the chase configuration (the compiled rules are kept).
    pub fn set_config(&mut self, config: ChaseConfig) {
        self.config = config;
    }

    /// Installs a telemetry recorder: every subsequent run (and the
    /// incremental maintenance built on this runner) reports phase
    /// timings and spans through it. The default no-op recorder makes
    /// the hooks branch-cheap and the chase output is byte-identical
    /// either way (`tests/telemetry_parity.rs`).
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.rec = rec;
    }

    /// The installed telemetry recorder (no-op unless
    /// [`ChaseRunner::set_recorder`] was called).
    pub fn recorder(&self) -> &dyn Recorder {
        &*self.rec
    }

    /// Chases `db`, computing `Π(D)` and testing the constraints.
    pub fn run(&self, db: &Database) -> Result<ChaseOutcome> {
        self.run_seed(db.to_instance())
    }

    /// Chases an explicit seed instance (which may already contain nulls).
    pub fn run_seed(&self, seed: Instance) -> Result<ChaseOutcome> {
        run_compiled(
            &self.compiled,
            &self.constraints,
            &self.strata_rules,
            &self.plans,
            seed,
            self.config,
            &*self.rec,
        )
    }
}

/// Chases `db` with `program` under `config`, computing the stratified
/// semantics `Π(D)` of §3.2 (up to the configured depth bound) and then
/// testing the constraints.
///
/// This one-shot entry point re-stratifies and re-compiles the program on
/// every call; use a [`ChaseRunner`] to pay that cost once.
pub fn chase(db: &Database, program: &Program, config: ChaseConfig) -> Result<ChaseOutcome> {
    let strat: Stratification = crate::stratify(program)?;
    chase_stratified(db, program, &strat, config)
}

/// Like [`chase`] but with a precomputed stratification.
pub fn chase_stratified(
    db: &Database,
    program: &Program,
    strat: &Stratification,
    config: ChaseConfig,
) -> Result<ChaseOutcome> {
    check_stratification(program, strat)?;
    let compiled: Vec<CompiledRule> = program.rules.iter().map(compile_rule).collect();
    let constraints: Vec<CompiledConstraint> =
        program.constraints.iter().map(compile_constraint).collect();
    let strata_rules = rules_by_stratum(program, strat);
    let plans = planner::initial_plans(&compiled);
    run_compiled(
        &compiled,
        &constraints,
        &strata_rules,
        &plans,
        db.to_instance(),
        config,
        obs::noop(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::GroundAtom;
    use crate::parse_program;
    use triq_common::intern;

    fn run(program: &str, facts: &[(&str, &[&str])]) -> ChaseOutcome {
        let p = parse_program(program).unwrap();
        let mut db = Database::new();
        for (pred, args) in facts {
            db.add_fact(pred, args);
        }
        chase(&db, &p, ChaseConfig::default()).unwrap()
    }

    fn has(out: &ChaseOutcome, pred: &str, args: &[&str]) -> bool {
        let terms: Vec<Term> = args.iter().map(|a| Term::constant(a)).collect();
        out.instance.contains_terms(intern(pred), &terms)
    }

    #[test]
    fn transitive_closure() {
        let out = run(
            "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).",
            &[("e", &["a", "b"]), ("e", &["b", "c"]), ("e", &["c", "d"])],
        );
        assert!(has(&out, "t", &["a", "d"]));
        assert!(has(&out, "t", &["b", "d"]));
        assert!(!has(&out, "t", &["d", "a"]));
        assert_eq!(out.instance.atoms_of(intern("t")).count(), 6);
        assert!(!out.stats.truncated);
        assert!(out.stats.probes > 0, "probe counter must tick");
    }

    #[test]
    fn stratified_negation_min_max() {
        // The Πaux fragment of Example 4.3.
        let out = run(
            "succ(?X, ?Y) -> less(?X, ?Y).\n\
             succ(?X, ?Y), less(?Y, ?Z) -> less(?X, ?Z).\n\
             less(?X, ?Y) -> not_max(?X).\n\
             less(?X, ?Y) -> not_min(?Y).\n\
             less(?X, ?Y), !not_min(?X) -> zero(?X).\n\
             less(?Y, ?X), !not_max(?X) -> max(?X).",
            &[
                ("succ", &["0", "1"]),
                ("succ", &["1", "2"]),
                ("succ", &["2", "3"]),
            ],
        );
        assert!(has(&out, "zero", &["0"]));
        assert!(!has(&out, "zero", &["1"]));
        assert!(has(&out, "max", &["3"]));
        assert!(!has(&out, "max", &["2"]));
    }

    #[test]
    fn existential_skolem_memoizes() {
        let out = run(
            "person(?X) -> exists ?Y parent(?X, ?Y).",
            &[("person", &["alice"])],
        );
        // One null for alice, and re-running the rule adds nothing.
        assert_eq!(out.stats.nulls, 1);
        assert_eq!(out.instance.atoms_of(intern("parent")).count(), 1);
    }

    #[test]
    fn existential_cycle_is_depth_bounded() {
        let p = parse_program(
            "person(?X) -> exists ?Y parent(?X, ?Y).\n\
             parent(?X, ?Y) -> person(?Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("person", &["alice"]);
        let out = chase(
            &db,
            &p,
            ChaseConfig {
                max_null_depth: 4,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        assert!(out.stats.truncated);
        assert_eq!(out.stats.nulls, 4);
        // alice's ancestors: parent(alice, n1) ... parent(n3, n4).
        assert_eq!(out.instance.atoms_of(intern("parent")).count(), 4);
    }

    #[test]
    fn restricted_chase_reuses_witnesses() {
        // alice already has a parent; restricted chase creates no null.
        let p = parse_program("person(?X) -> exists ?Y parent(?X, ?Y).").unwrap();
        let mut db = Database::new();
        db.add_fact("person", &["alice"]);
        db.add_fact("parent", &["alice", "bob"]);
        let out = chase(
            &db,
            &p,
            ChaseConfig {
                strategy: ExistentialStrategy::Restricted,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.stats.nulls, 0);
        // Skolem, by contrast, invents one.
        let out2 = chase(&db, &p, ChaseConfig::default()).unwrap();
        assert_eq!(out2.stats.nulls, 1);
    }

    #[test]
    fn multi_head_existential_shares_null() {
        let out = run(
            "coauthor(?X, ?Y) -> exists ?Z author_of(?X, ?Z), author_of(?Y, ?Z).",
            &[("coauthor", &["aho", "ullman"])],
        );
        assert_eq!(out.stats.nulls, 1);
        let atoms: Vec<GroundAtom> = out.instance.atoms_of(intern("author_of")).collect();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].terms[1], atoms[1].terms[1]);
    }

    #[test]
    fn constraints_fire() {
        let out = run(
            "type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.",
            &[
                ("type", &["a", "c1"]),
                ("type", &["a", "c2"]),
                ("disj", &["c1", "c2"]),
            ],
        );
        assert!(out.inconsistent);
        let out2 = run(
            "type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.",
            &[("type", &["a", "c1"]), ("disj", &["c1", "c2"])],
        );
        assert!(!out2.inconsistent);
    }

    #[test]
    fn builtins_filter_matches() {
        let out = run(
            "e(?X, ?Y), ?X != ?Y -> nonloop(?X, ?Y).\n\
             e(?X, ?Y), ?X = ?Y -> loop(?X).",
            &[("e", &["a", "a"]), ("e", &["a", "b"])],
        );
        assert!(has(&out, "nonloop", &["a", "b"]));
        assert!(!has(&out, "nonloop", &["a", "a"]));
        assert!(has(&out, "loop", &["a"]));
    }

    #[test]
    fn atom_budget_is_enforced() {
        let p = parse_program("e(?X, ?Y), e(?Y, ?Z) -> e(?X, ?Z).").unwrap();
        let mut db = Database::new();
        for i in 0..50 {
            db.add_fact("e", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        let res = chase(
            &db,
            &p,
            ChaseConfig {
                max_atoms: 100,
                ..ChaseConfig::default()
            },
        );
        assert!(matches!(res, Err(TriqError::ResourceExhausted(_))));
    }

    #[test]
    fn negation_sees_closed_lower_stratum() {
        // q must be fully computed before r's negation consults it.
        let out = run(
            "e(?X, ?Y) -> q(?Y).\n\
             e(?X, ?Y), q(?Y), e(?Y, ?Z) -> q(?Z).\n\
             n(?X), !q(?X) -> r(?X).",
            &[
                ("e", &["a", "b"]),
                ("e", &["b", "c"]),
                ("n", &["a"]),
                ("n", &["b"]),
                ("n", &["c"]),
            ],
        );
        assert!(has(&out, "r", &["a"]));
        assert!(!has(&out, "r", &["b"]));
        assert!(!has(&out, "r", &["c"]));
    }

    #[test]
    fn repeated_variables_in_atoms_join_correctly() {
        let out = run(
            "e(?X, ?X) -> selfloop(?X).\n\
             t(?X, ?Y, ?X) -> wrap(?X, ?Y).",
            &[
                ("e", &["a", "a"]),
                ("e", &["a", "b"]),
                ("t", &["a", "b", "a"]),
                ("t", &["a", "b", "c"]),
            ],
        );
        assert!(has(&out, "selfloop", &["a"]));
        assert_eq!(out.instance.atoms_of(intern("selfloop")).count(), 1);
        assert!(has(&out, "wrap", &["a", "b"]));
        assert_eq!(out.instance.atoms_of(intern("wrap")).count(), 1);
    }

    #[test]
    fn stale_stratification_is_rejected() {
        let p1 = parse_program("e(?X, ?Y) -> t(?X, ?Y).").unwrap();
        let strat = crate::stratify(&p1).unwrap();
        // Union in an extra rule after stratifying: the old stratification
        // no longer covers the program and must be rejected, not silently
        // skip the new rule.
        let p2 = p1.union(&parse_program("t(?X, ?Y) -> reach(?X).").unwrap());
        let err =
            ChaseRunner::with_stratification(p2.clone(), strat.clone(), ChaseConfig::default())
                .unwrap_err();
        assert!(matches!(err, TriqError::InvalidProgram(_)), "{err}");
        let db = Database::new();
        assert!(chase_stratified(&db, &p2, &strat, ChaseConfig::default()).is_err());
        // A matching stratification is accepted.
        let fresh = crate::stratify(&p2).unwrap();
        assert!(ChaseRunner::with_stratification(p2, fresh, ChaseConfig::default()).is_ok());
    }

    #[test]
    fn chase_runner_reuses_compiled_state_across_databases() {
        let p = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
             n(?X), !t(?X, ?X) -> acyclic(?X).",
        )
        .unwrap();
        let runner = ChaseRunner::new(p.clone(), ChaseConfig::default()).unwrap();
        for facts in [
            vec![
                ("e", vec!["a", "b"]),
                ("e", vec!["b", "c"]),
                ("n", vec!["a"]),
            ],
            vec![("e", vec!["x", "x"]), ("n", vec!["x"])],
            vec![("n", vec!["lonely"])],
        ] {
            let mut db = Database::new();
            for (pred, args) in &facts {
                db.add_fact(pred, args);
            }
            let prepared = runner.run(&db).unwrap();
            let oneshot = chase(&db, &p, ChaseConfig::default()).unwrap();
            assert_eq!(prepared.instance.len(), oneshot.instance.len());
            for (_, atom) in oneshot.instance.iter() {
                assert!(prepared.instance.contains(&atom));
            }
        }
    }

    #[test]
    fn constants_in_rule_bodies_restrict_matches() {
        let out = run(
            "e(a, ?Y) -> from_a(?Y).",
            &[("e", &["a", "b"]), ("e", &["c", "d"])],
        );
        assert!(has(&out, "from_a", &["b"]));
        assert!(!has(&out, "from_a", &["d"]));
    }

    #[test]
    fn planner_counters_tick_and_modes_agree() {
        // A star join big enough to trigger a joint-index build, plus a
        // fully-bound cycle probe for the tuple-hash path.
        let mut db = Database::new();
        for i in 0..600u32 {
            db.add_fact(
                "hub",
                &[
                    &format!("a{}", i % 16),
                    &format!("b{}", i % 16),
                    &format!("c{i}"),
                ],
            );
        }
        for i in 0..16u32 {
            db.add_fact("s1", &[&format!("a{i}")]);
            db.add_fact("s2", &[&format!("b{i}")]);
        }
        let p = parse_program(
            "s1(?A), s2(?B), hub(?A, ?B, ?C) -> out(?C).\n\
             s1(?A), s2(?B), hub(?A, ?B, ?C), out(?C) -> both(?A, ?B).",
        )
        .unwrap();
        let cost = chase(&db, &p, ChaseConfig::default()).unwrap();
        assert!(cost.stats.plans_compiled >= 2, "both rules planned");
        assert!(cost.stats.index_builds >= 1, "joint index built");
        assert!(cost.stats.index_probes > 0, "hash probes served");
        let greedy = chase(
            &db,
            &p,
            ChaseConfig {
                planner: JoinPlanner::Greedy,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(greedy.stats.plans_compiled, 0);
        assert_eq!(greedy.stats.index_builds, 0);
        assert_eq!(greedy.stats.index_probes, 0);
        // Byte-identical output regardless of mode (the differential
        // suite covers this broadly; this is the smoke-level pin).
        assert_eq!(cost.instance.len(), greedy.instance.len());
        for (id, atom) in greedy.instance.iter() {
            assert_eq!(cost.instance.find(&atom), Some(id));
        }
        // The planner did its job: far fewer candidates examined.
        assert!(
            cost.stats.probes < greedy.stats.probes / 2,
            "planner-on probes {} vs greedy {}",
            cost.stats.probes,
            greedy.stats.probes
        );
    }

    #[test]
    fn morsel_schedules_are_byte_identical_and_counters_tick() {
        // One hot recursive rule per stratum-mate — including the shape
        // rule-level parallelism could never split (a single rule doing
        // all the work) — plus a constant-filtered rule and a repeated-
        // variable rule so the kernel leading scan fires. Forced morsel
        // schedules at extreme morsel sizes and worker counts must be
        // byte-identical to the sequential run.
        let program = "e(?X, ?Y) -> t(?X, ?Y).\n\
                       e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                       e(hub, ?Y) -> from_hub(?Y).\n\
                       e(?X, ?X) -> selfloop(?X).";
        let p = parse_program(program).unwrap();
        let mut db = Database::new();
        for i in 0..120u32 {
            db.add_fact("e", &[&format!("n{i}"), &format!("n{}", (i + 1) % 120)]);
            // Half the edges leave the hub: the hub posting list is
            // unselective enough that the kernel scan beats it.
            db.add_fact(
                "e",
                &[if i % 2 == 0 { "hub" } else { "spoke" }, &format!("n{i}")],
            );
        }
        db.add_fact("e", &["hub", "hub"]);
        let sequential = chase(
            &db,
            &p,
            ChaseConfig {
                parallel_threshold: usize::MAX,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sequential.stats.morsel_batches, 0, "sequential: no morsels");
        assert!(
            sequential.stats.kernel_filter_rows > 0,
            "kernels are orthogonal to parallelism and fire sequentially too"
        );
        for (morsel_size, chase_threads) in [(1, 2), (7, 3), (2048, 1)] {
            let forced = chase(
                &db,
                &p,
                ChaseConfig {
                    parallel_threshold: 0,
                    morsel_size,
                    chase_threads,
                    ..ChaseConfig::default()
                },
            )
            .unwrap();
            let ctx = format!("morsel_size {morsel_size}, chase_threads {chase_threads}");
            assert!(forced.stats.morsel_batches > 0, "batches tick ({ctx})");
            assert!(forced.stats.parallel_strata >= 1, "{ctx}");
            assert_eq!(forced.instance.len(), sequential.instance.len(), "{ctx}");
            for (id, atom) in sequential.instance.iter() {
                assert_eq!(forced.instance.find(&atom), Some(id), "{ctx}");
                assert_eq!(
                    forced.instance.derivation(id),
                    sequential.instance.derivation(id),
                    "{ctx}"
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_schedules_agree() {
        // Many independent rules in one stratum, forced down both paths.
        let program = "e(?X, ?Y) -> t(?X, ?Y).\n\
                       e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                       e(?X, ?Y) -> s(?Y, ?X).\n\
                       s(?X, ?Y), s(?Y, ?Z) -> s(?X, ?Z).\n\
                       e(?X, ?X) -> selfloop(?X).\n\
                       t(?X, ?Y) -> reach(?X).";
        let p = parse_program(program).unwrap();
        let mut db = Database::new();
        for i in 0..40u32 {
            db.add_fact("e", &[&format!("n{i}"), &format!("n{}", (i + 1) % 40)]);
        }
        let sequential = chase(
            &db,
            &p,
            ChaseConfig {
                parallel_threshold: usize::MAX,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        let parallel = chase(
            &db,
            &p,
            ChaseConfig {
                parallel_threshold: 0,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sequential.stats.parallel_strata, 0);
        assert!(parallel.stats.parallel_strata >= 1);
        assert_eq!(parallel.instance.len(), sequential.instance.len());
        // Identical contents *and* identical AtomIds (schedule equality,
        // not just set equality) — provenance depends on it.
        for (id, atom) in sequential.instance.iter() {
            assert_eq!(parallel.instance.find(&atom), Some(id));
            assert_eq!(
                parallel.instance.derivation(id),
                sequential.instance.derivation(id)
            );
        }
    }
}
