//! Binary snapshot codec for the chase state: columnar [`Instance`]s,
//! [`Database`]s, the skolem memo and whole [`MaterializedView`]s.
//!
//! The encoding builds on the primitives in [`triq_common::codec`] and is
//! deterministic: a relation's `Vec<TermId>` columns are written as raw
//! little-endian `u32` slices (the "nearly verbatim" bulk path), and the
//! atom directory is written in global id order, so the same logical
//! state always produces the same bytes.
//!
//! What is — and is not — serialized:
//!
//! * **Tombstones are compacted away.** An instance that has seen
//!   deletions is encoded through [`Instance::compacted`], which keeps
//!   null ids, depths, supports and (re-pointed) provenance intact. The
//!   decoded instance is therefore always dense.
//! * **Indexes and statistics are rebuilt, not stored.** Decode replays
//!   every row through [`Instance::insert_ids`], which reconstructs the
//!   tuple-hash table, per-column posting lists and the insert-monotone
//!   [`triq_common::RelationStats`] exactly as the original inserts did
//!   (the sketches are deterministic functions of the insert sequence).
//!   Joint indexes are planner-requested and rebuild lazily.
//! * **Symbols are snapshot-relative.** Every constant is an index into
//!   the snapshot's interner table; decode translates through a
//!   [`SymbolRemap`]. Labeled nulls are instance-local and pass through.
//!
//! A [`MaterializedView`] snapshot additionally carries its program
//! *text* and [`ChaseConfig`], from which the view's compiled runner is
//! rebuilt (the program `Display` form round-trips through the parser —
//! pinned by the display-roundtrip tests). The pair also yields the
//! durable [`plan_fingerprint`] used to match restored views to prepared
//! queries across process restarts.

use crate::chase::{ChaseOutcome, ChaseRunner, ChaseStats, SkolemMemo};
use crate::demand::DemandMode;
use crate::incremental::MaterializedView;
use crate::instance::{AtomId, Database, Derivation, Instance};
use crate::parser::parse_program;
use crate::planner::JoinPlanner;
use crate::program::Program;
use crate::{ChaseConfig, ExistentialStrategy};
use std::sync::Arc;
use triq_common::codec::{Decoder, Encoder, SymbolRemap};
use triq_common::{Result, Symbol, TermId, TriqError};

fn corrupt(what: &str) -> TriqError {
    TriqError::Persist(format!("corrupt snapshot: {what}"))
}

// ---------------------------------------------------------------------------
// Instance / Database
// ---------------------------------------------------------------------------

/// Encodes an instance. Tombstoned atoms are compacted away first, so
/// the byte stream (and the decoded instance) is always dense.
pub fn encode_instance(enc: &mut Encoder, inst: &Instance) {
    let compacted_owned;
    let inst = if inst.dead_len() > 0 {
        compacted_owned = inst.compacted().0;
        &compacted_owned
    } else {
        inst
    };
    // Null invention depths (indexed by NullId) must precede the rows:
    // decode seeds them before re-inserting so each atom's depth is
    // recomputed exactly.
    enc.u32_slice(inst.null_depths().iter().copied());
    // Relation directory: predicate, arity, then the columns verbatim.
    let rels = inst.relations_slice();
    enc.varint(rels.len() as u64);
    for rel in rels {
        enc.varint(u64::from(rel.pred().index()));
        enc.varint(rel.arity() as u64);
        for col in rel.columns() {
            enc.u32_slice(col.iter().map(|t| t.raw()));
        }
    }
    // Atom directory in global id order: which relation the atom's row
    // lives in (rows are consumed in order per relation), its support
    // counter, and its provenance.
    enc.varint(inst.len() as u64);
    for id in 0..inst.len() as AtomId {
        enc.varint(u64::from(inst.rel_index_of(id)));
        enc.varint(u64::from(inst.support(id)));
        match inst.derivation(id) {
            None => enc.u8(0),
            Some(d) => {
                enc.u8(1);
                enc.varint(d.rule as u64);
                enc.varint(d.body.len() as u64);
                for &b in &d.body {
                    enc.varint(u64::from(b));
                }
            }
        }
    }
}

/// Decodes an instance written by [`encode_instance`], translating
/// constants through `remap`. The columns are adopted verbatim and the
/// indexes, sketches and depths are rebuilt through the bulk path
/// (`Instance::bulk_load`) — pre-sized single passes producing the
/// same state replaying every insert would, without the per-row
/// hash-table growth.
pub fn decode_instance(dec: &mut Decoder<'_>, remap: &SymbolRemap) -> Result<Instance> {
    let null_depths = dec.u32_slice()?;
    let nrels = dec.len_capped(dec.remaining())?;
    let mut rels = Vec::with_capacity(nrels);
    for _ in 0..nrels {
        let pred = remap
            .symbol(u32::try_from(dec.varint()?).map_err(|_| corrupt("predicate id overflow"))?)?;
        let arity = dec.len_capped(u16::MAX as usize)?;
        let mut cols: Vec<Vec<TermId>> = Vec::with_capacity(arity);
        for c in 0..arity {
            let raw = dec.u32_slice()?;
            let col: Result<Vec<TermId>> = raw.into_iter().map(|w| remap.term(w)).collect();
            let col = col?;
            if c > 0 && col.len() != cols[0].len() {
                return Err(corrupt("ragged relation columns"));
            }
            cols.push(col);
        }
        rels.push((pred, arity, cols));
    }
    let natoms = dec.len_capped(dec.remaining())?;
    let mut directory = Vec::with_capacity(natoms);
    for id in 0..natoms {
        let rel_idx = dec.len_capped(nrels.saturating_sub(1))? as u32;
        let support =
            u32::try_from(dec.varint()?).map_err(|_| corrupt("support counter overflow"))?;
        let derivation = match dec.u8()? {
            0 => None,
            1 => {
                let rule = dec.len_capped(u32::MAX as usize)?;
                let blen = dec.len_capped(dec.remaining())?;
                let mut body = Vec::with_capacity(blen);
                for _ in 0..blen {
                    let b = dec.varint()?;
                    if b >= id as u64 {
                        return Err(corrupt("provenance references a later atom"));
                    }
                    body.push(b as AtomId);
                }
                Some(Derivation { rule, body })
            }
            _ => return Err(corrupt("bad derivation tag")),
        };
        directory.push((rel_idx, support, derivation));
    }
    Instance::bulk_load(null_depths, rels, directory).map_err(corrupt)
}

/// Encodes a database (its live facts; removals are compacted away).
pub fn encode_database(enc: &mut Encoder, db: &Database) {
    encode_instance(enc, db.instance_ref());
}

/// Decodes a database written by [`encode_database`].
pub fn decode_database(dec: &mut Decoder<'_>, remap: &SymbolRemap) -> Result<Database> {
    Ok(Database::from_instance(decode_instance(dec, remap)?))
}

// ---------------------------------------------------------------------------
// Skolem memo
// ---------------------------------------------------------------------------

fn encode_memo(enc: &mut Encoder, memo: &SkolemMemo) {
    let mut entries: Vec<_> = memo.iter().collect();
    // Canonical order: the memo is a hash map, the stream must not be.
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    enc.varint(entries.len() as u64);
    for ((rule, frontier), nulls) in entries {
        enc.varint(*rule as u64);
        enc.u32_slice(frontier.iter().map(|t| t.raw()));
        enc.u32_slice(nulls.iter().map(|t| t.raw()));
    }
}

fn decode_memo(dec: &mut Decoder<'_>, remap: &SymbolRemap) -> Result<SkolemMemo> {
    let n = dec.len_capped(dec.remaining())?;
    let mut memo = SkolemMemo::with_capacity(n);
    for _ in 0..n {
        let rule = dec.len_capped(u32::MAX as usize)?;
        let frontier: Result<Vec<TermId>> = dec
            .u32_slice()?
            .into_iter()
            .map(|w| remap.term(w))
            .collect();
        let nulls: Result<Vec<TermId>> = dec
            .u32_slice()?
            .into_iter()
            .map(|w| remap.term(w))
            .collect();
        if memo
            .insert((rule, frontier?.into_boxed_slice()), nulls?)
            .is_some()
        {
            return Err(corrupt("duplicate skolem memo key"));
        }
    }
    Ok(memo)
}

// ---------------------------------------------------------------------------
// ChaseConfig + plan fingerprint
// ---------------------------------------------------------------------------

/// Encodes a chase configuration.
pub fn encode_config(enc: &mut Encoder, config: &ChaseConfig) {
    enc.u8(match config.strategy {
        ExistentialStrategy::Skolem => 0,
        ExistentialStrategy::Restricted => 1,
    });
    enc.u8(match config.planner {
        JoinPlanner::CostBased => 0,
        JoinPlanner::Greedy => 1,
        JoinPlanner::ReverseOrder => 2,
    });
    enc.varint(u64::from(config.max_null_depth));
    enc.varint(config.max_atoms as u64);
    enc.varint(config.parallel_threshold as u64);
    enc.varint(config.morsel_size as u64);
    enc.varint(config.chase_threads as u64);
    enc.u8(match config.demand {
        DemandMode::Auto => 0,
        DemandMode::Off => 1,
        DemandMode::Force => 2,
    });
}

/// Decodes a chase configuration written by [`encode_config`].
pub fn decode_config(dec: &mut Decoder<'_>) -> Result<ChaseConfig> {
    let strategy = match dec.u8()? {
        0 => ExistentialStrategy::Skolem,
        1 => ExistentialStrategy::Restricted,
        _ => return Err(corrupt("unknown existential strategy")),
    };
    let planner = match dec.u8()? {
        0 => JoinPlanner::CostBased,
        1 => JoinPlanner::Greedy,
        2 => JoinPlanner::ReverseOrder,
        _ => return Err(corrupt("unknown join planner")),
    };
    let max_null_depth =
        u32::try_from(dec.varint()?).map_err(|_| corrupt("max_null_depth overflow"))?;
    let max_atoms = usize::try_from(dec.varint()?).map_err(|_| corrupt("max_atoms overflow"))?;
    let parallel_threshold =
        usize::try_from(dec.varint()?).map_err(|_| corrupt("parallel_threshold overflow"))?;
    let morsel_size =
        usize::try_from(dec.varint()?).map_err(|_| corrupt("morsel_size overflow"))?;
    let chase_threads =
        usize::try_from(dec.varint()?).map_err(|_| corrupt("chase_threads overflow"))?;
    let demand = match dec.u8()? {
        0 => DemandMode::Auto,
        1 => DemandMode::Off,
        2 => DemandMode::Force,
        _ => return Err(corrupt("unknown demand mode")),
    };
    Ok(ChaseConfig {
        strategy,
        max_null_depth,
        max_atoms,
        parallel_threshold,
        morsel_size,
        chase_threads,
        planner,
        demand,
    })
}

/// A durable identity for a compiled plan: FNV-1a over the program's
/// canonical `Display` text and the encoded [`ChaseConfig`].
///
/// Unlike the facade's in-process plan ids, this survives restarts — it
/// is how recovery matches a snapshot's views to freshly prepared
/// queries. Two prepares collide iff they print the same program and run
/// the same configuration, in which case they *are* the same plan.
pub fn plan_fingerprint(program: &Program, config: &ChaseConfig) -> u64 {
    let mut enc = Encoder::new();
    encode_config(&mut enc, config);
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in program
        .to_string()
        .bytes()
        .chain(enc.bytes().iter().copied())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------------
// MaterializedView
// ---------------------------------------------------------------------------

/// The durable identity of a live view — [`plan_fingerprint`] over its
/// compiled program and chase configuration. Matches the fingerprint
/// [`decode_view`] returns for the view's encoding.
pub fn view_fingerprint(view: &MaterializedView) -> u64 {
    plan_fingerprint(view.runner().program(), &view.runner().config())
}

/// Encodes a materialized view: program text, configuration,
/// inconsistency flag, the maintained instance and the skolem memo. The
/// base database is *not* included — it belongs to the session snapshot
/// (every view over one session shares it).
pub fn encode_view(enc: &mut Encoder, view: &MaterializedView) {
    enc.str(&view.runner().program().to_string());
    encode_config(enc, &view.runner().config());
    enc.u8(u8::from(view.outcome().inconsistent));
    encode_instance(enc, &view.outcome().instance);
    encode_memo(enc, view.skolem_ref());
}

/// Decodes a view written by [`encode_view`], re-attaching it to `base`
/// (the session database at the snapshot's version). The runner is
/// recompiled from the stored program text; reverse provenance and join
/// plans are rebuilt. Returns the view plus its [`plan_fingerprint`].
pub fn decode_view(
    dec: &mut Decoder<'_>,
    remap: &SymbolRemap,
    base: Database,
) -> Result<(MaterializedView, u64)> {
    let text = dec.str()?;
    let config = decode_config(dec)?;
    let program = parse_program(text)
        .map_err(|e| corrupt(&format!("stored program does not re-parse: {e}")))?;
    let fingerprint = plan_fingerprint(&program, &config);
    let runner = ChaseRunner::new(program, config)
        .map_err(|e| corrupt(&format!("stored program does not recompile: {e}")))?;
    let inconsistent = match dec.u8()? {
        0 => false,
        1 => true,
        _ => return Err(corrupt("bad inconsistency flag")),
    };
    let instance = decode_instance(dec, remap)?;
    let skolem = decode_memo(dec, remap)?;
    // The encoding carries the instance but not the base the view was
    // chased over, and the caller re-attaches the *session* database —
    // which can be a strict subset of that base (the demand rewrite
    // chases over `D ∪ {seed}`). Every underived fully-ground atom of
    // the instance is by construction an extensional input, so re-assert
    // any the session database lacks: a later full-rebuild fallback must
    // recompute the same fixpoint.
    let mut base = base;
    for (id, atom) in instance.iter() {
        if instance.derivation(id).is_some() || !atom.is_fully_ground() {
            continue;
        }
        let args: Vec<Symbol> = atom.terms.iter().map(|t| t.as_const().unwrap()).collect();
        base.add_row(atom.pred, &args);
    }
    let outcome = Arc::new(ChaseOutcome {
        instance,
        inconsistent,
        stats: ChaseStats::default(),
    });
    Ok((
        MaterializedView::restore(runner, base, outcome, skolem),
        fingerprint,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::codec::encode_interner;
    use triq_common::Delta;

    fn remap_for(bytes: &[u8]) -> (SymbolRemap, usize) {
        let mut dec = Decoder::new(bytes);
        let remap = SymbolRemap::decode(&mut dec).unwrap();
        let consumed = bytes.len() - dec.remaining();
        (remap, consumed)
    }

    /// Encode with the interner table prefix, decode through the remap.
    fn round_trip_instance(inst: &Instance) -> Instance {
        let mut enc = Encoder::new();
        encode_interner(&mut enc);
        encode_instance(&mut enc, inst);
        let bytes = enc.into_bytes();
        let (remap, consumed) = remap_for(&bytes);
        let mut dec = Decoder::new(&bytes[consumed..]);
        let out = decode_instance(&mut dec, &remap).unwrap();
        assert!(dec.is_exhausted());
        out
    }

    fn assert_instances_equal(a: &Instance, b: &Instance) {
        assert_eq!(a.live_len(), b.live_len());
        assert_eq!(b.dead_len(), 0, "decoded instances are dense");
        assert_eq!(a.null_count(), b.null_count());
        for (id, atom) in b.iter() {
            let orig = a.find(&atom).expect("decoded atom exists in original");
            assert_eq!(a.support(orig), b.support(id));
            assert_eq!(a.depth(orig), b.depth(id));
            assert_eq!(
                a.derivation(orig).is_some(),
                b.derivation(id).is_some(),
                "provenance presence preserved"
            );
        }
    }

    #[test]
    fn empty_instance_round_trips() {
        let inst = Instance::new();
        let out = round_trip_instance(&inst);
        assert!(out.is_empty());
    }

    #[test]
    fn facts_nulls_and_provenance_round_trip() {
        let mut inst = Instance::new();
        let a = inst.insert_fact("e", &["a", "b"]);
        let b = inst.insert_fact("e", &["b", "c"]);
        // A null at depth 1 and a derived atom mentioning it.
        let null = inst.fresh_null(1);
        let t = triq_common::intern("t");
        let key = [
            TermId::from_const(triq_common::intern("a")),
            TermId::from_null(null),
        ];
        let (d, fresh) = inst.insert_ids(
            t,
            &key,
            Some(Derivation {
                rule: 3,
                body: vec![a, b],
            }),
        );
        assert!(fresh);
        // Bump a support counter via a duplicate insert.
        inst.insert_fact("e", &["a", "b"]);
        assert_eq!(inst.support(a), 2);
        assert_eq!(inst.depth(d), 1);

        let out = round_trip_instance(&inst);
        assert_instances_equal(&inst, &out);
        let out_d = out.find_ids(t, &key).unwrap();
        assert_eq!(
            out.derivation(out_d).unwrap(),
            &Derivation {
                rule: 3,
                body: vec![a, b]
            }
        );
    }

    #[test]
    fn tombstoned_instances_are_compacted_on_encode() {
        let mut inst = Instance::new();
        let a = inst.insert_fact("p", &["x"]);
        inst.insert_fact("p", &["y"]);
        inst.insert_fact("q", &["x", "y"]);
        inst.tombstone(a);
        assert_eq!(inst.dead_len(), 1);
        let out = round_trip_instance(&inst);
        assert_eq!(out.live_len(), 2);
        assert_eq!(out.dead_len(), 0);
        assert_instances_equal(&inst, &out);
    }

    #[test]
    fn truncated_or_mangled_streams_error_cleanly() {
        let mut inst = Instance::new();
        inst.insert_fact("e", &["a", "b"]);
        let mut enc = Encoder::new();
        encode_interner(&mut enc);
        encode_instance(&mut enc, &inst);
        let bytes = enc.into_bytes();
        let (remap, consumed) = remap_for(&bytes);
        for cut in [consumed, consumed + 1, bytes.len() - 1] {
            let mut dec = Decoder::new(&bytes[consumed..cut]);
            match decode_instance(&mut dec, &remap) {
                Ok(out) => assert!(out.is_empty(), "a prefix may decode as empty"),
                Err(e) => assert_eq!(e.code(), "E-PERSIST"),
            }
        }
    }

    #[test]
    fn config_round_trips_and_rejects_junk() {
        for config in [
            ChaseConfig::default(),
            ChaseConfig {
                strategy: ExistentialStrategy::Restricted,
                max_null_depth: 3,
                max_atoms: 123,
                parallel_threshold: usize::MAX,
                morsel_size: 1,
                chase_threads: 7,
                planner: JoinPlanner::ReverseOrder,
                demand: DemandMode::Force,
            },
        ] {
            let mut enc = Encoder::new();
            encode_config(&mut enc, &config);
            let bytes = enc.into_bytes();
            assert_eq!(decode_config(&mut Decoder::new(&bytes)).unwrap(), config);
        }
        assert_eq!(
            decode_config(&mut Decoder::new(&[9, 0, 0, 0, 0]))
                .unwrap_err()
                .code(),
            "E-PERSIST"
        );
    }

    #[test]
    fn fingerprint_separates_programs_and_configs() {
        let p1 = parse_program("e(?X, ?Y) -> t(?X, ?Y).").unwrap();
        let p2 = parse_program("e(?X, ?Y) -> s(?X, ?Y).").unwrap();
        let c1 = ChaseConfig::default();
        let c2 = ChaseConfig {
            max_null_depth: 7,
            ..ChaseConfig::default()
        };
        assert_eq!(plan_fingerprint(&p1, &c1), plan_fingerprint(&p1, &c1));
        assert_ne!(plan_fingerprint(&p1, &c1), plan_fingerprint(&p2, &c1));
        assert_ne!(plan_fingerprint(&p1, &c1), plan_fingerprint(&p1, &c2));
    }

    #[test]
    fn view_round_trips_and_keeps_maintaining() {
        let program = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
             t(?X, ?Y) -> ex(?X).\n ex(?X) -> exists ?N holder(?X, ?N).",
        )
        .unwrap();
        let runner = ChaseRunner::new(program, ChaseConfig::default()).unwrap();
        let mut db = Database::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.add_fact("e", &[x, y]);
        }
        let mut view = MaterializedView::new(runner, db).unwrap();
        view.apply(&Delta::new().insert("e", &["d", "e"])).unwrap();

        let mut enc = Encoder::new();
        encode_interner(&mut enc);
        encode_view(&mut enc, &view);
        let bytes = enc.into_bytes();
        let (remap, consumed) = remap_for(&bytes);
        let mut dec = Decoder::new(&bytes[consumed..]);
        let (mut restored, fp) = decode_view(&mut dec, &remap, view.database().clone()).unwrap();
        assert!(dec.is_exhausted());
        assert_eq!(
            fp,
            plan_fingerprint(view.runner().program(), &view.runner().config())
        );
        assert_instances_equal(view.instance(), restored.instance());

        // The restored view must keep maintaining incrementally and agree
        // with the original under the same mutations.
        let delta = Delta::new()
            .insert("e", &["e", "f"])
            .delete("e", &["a", "b"]);
        view.apply(&delta).unwrap();
        restored.apply(&delta).unwrap();
        assert_eq!(view.instance().live_len(), restored.instance().live_len());
        for (_, atom) in view.instance().iter() {
            if atom.is_fully_ground() {
                assert!(restored.instance().contains(&atom));
            }
        }
    }
}
