//! Queries `Q = (Π, p)` and their evaluation `Q(D)` (§3.2).

use crate::chase::{chase, ChaseConfig, ChaseOutcome};
use crate::instance::{AtomId, Database};
use crate::Program;
use std::collections::BTreeSet;
use std::sync::Arc;
use triq_common::{Result, Symbol, TriqError};

/// A Datalog∃,¬s,⊥ query `(Π, p)`: a stratified program plus an output
/// predicate that does not occur in any rule body (§3.2).
#[derive(Clone, Debug)]
pub struct Query {
    /// The query program Π.
    pub program: Program,
    /// The output predicate `p`.
    pub output: Symbol,
}

impl Query {
    /// Builds and validates a query: the program must be well-formed and
    /// stratified, and `output` must not occur in any rule body.
    pub fn new(program: Program, output: Symbol) -> Result<Query> {
        program.validate()?;
        crate::stratify(&program)?;
        if program.occurs_in_body(output) {
            return Err(TriqError::OutputInBody(format!(
                "output predicate {output} occurs in a rule body (§3.2 \
                 forbids this)"
            )));
        }
        Ok(Query { program, output })
    }

    /// Evaluates the query with the default chase configuration.
    pub fn evaluate(&self, db: &Database) -> Result<Answers> {
        self.evaluate_with(db, ChaseConfig::default())
    }

    /// Evaluates the query with an explicit chase configuration.
    pub fn evaluate_with(&self, db: &Database, config: ChaseConfig) -> Result<Answers> {
        let outcome = chase(db, &self.program, config)?;
        Ok(Answers::from_chase(&outcome, self.output))
    }

    /// Evaluates and also returns the chase outcome (for provenance /
    /// diagnostics).
    pub fn evaluate_full(
        &self,
        db: &Database,
        config: ChaseConfig,
    ) -> Result<(Answers, ChaseOutcome)> {
        let outcome = chase(db, &self.program, config)?;
        let answers = Answers::from_chase(&outcome, self.output);
        Ok((answers, outcome))
    }
}

/// The evaluation `Q(D)`: either ⊤ (inconsistency) or a set of constant
/// tuples (§3.2 — tuples mentioning nulls are not answers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answers {
    /// `Q(D) = ⊤`: the database is inconsistent with the program.
    Top,
    /// `Q(D) ⊆ Uⁿ`.
    Tuples(BTreeSet<Vec<Symbol>>),
}

impl Answers {
    /// Extracts the answers to `output` from a chase outcome: ⊤ when the
    /// outcome is inconsistent, otherwise all fully-ground tuples of the
    /// output predicate.
    pub fn from_chase(outcome: &ChaseOutcome, output: Symbol) -> Answers {
        if outcome.inconsistent {
            return Answers::Top;
        }
        // Decode straight off the columnar rows: tuples mentioning nulls
        // are skipped, everything else becomes constants exactly once.
        let tuples = outcome
            .instance
            .ids_by_pred(output)
            .iter()
            .filter_map(|&id| outcome.instance.const_tuple(id))
            .collect();
        Answers::Tuples(tuples)
    }

    /// True iff `Q(D) = ⊤`.
    pub fn is_top(&self) -> bool {
        matches!(self, Answers::Top)
    }

    /// The answer tuples (empty for ⊤ — check [`Answers::is_top`] first).
    pub fn tuples(&self) -> &BTreeSet<Vec<Symbol>> {
        static EMPTY: std::sync::OnceLock<BTreeSet<Vec<Symbol>>> = std::sync::OnceLock::new();
        match self {
            Answers::Top => EMPTY.get_or_init(BTreeSet::new),
            Answers::Tuples(t) => t,
        }
    }

    /// Membership test for a tuple of constant names.
    pub fn contains(&self, tuple: &[&str]) -> bool {
        let t: Vec<Symbol> = tuple.iter().map(|s| Symbol::new(s)).collect();
        self.tuples().contains(&t)
    }

    /// Number of answer tuples.
    pub fn len(&self) -> usize {
        self.tuples().len()
    }

    /// True iff there are no answers (and no inconsistency).
    pub fn is_empty(&self) -> bool {
        self.tuples().is_empty()
    }

    /// The decision problem Eval of §3.2:
    /// "does `Q(D) ≠ ⊤` imply `t ∈ Q(D)`?".
    pub fn eval_decision(&self, tuple: &[&str]) -> bool {
        self.is_top() || self.contains(tuple)
    }
}

/// A streaming view of `Q(D)`: yields the answer tuples one by one
/// without materializing them into a [`BTreeSet`].
///
/// Tuples are yielded in chase-derivation order (not sorted); each tuple
/// is yielded exactly once because the chase instance is a set. Atoms
/// mentioning labeled nulls are skipped, per §3.2. When the outcome is
/// inconsistent ([`AnswerIter::is_top`]), the iterator is empty — check
/// `is_top` before interpreting emptiness as "no answers".
pub struct AnswerIter {
    outcome: Arc<ChaseOutcome>,
    ids: Vec<AtomId>,
    pos: usize,
    top: bool,
}

impl AnswerIter {
    /// Streams the answers to `output` out of a (shared) chase outcome.
    pub fn new(outcome: Arc<ChaseOutcome>, output: Symbol) -> AnswerIter {
        let top = outcome.inconsistent;
        let ids = if top {
            Vec::new()
        } else {
            outcome.instance.ids_by_pred(output).to_vec()
        };
        AnswerIter {
            outcome,
            ids,
            pos: 0,
            top,
        }
    }

    /// True iff `Q(D) = ⊤` (the iterator yields nothing in that case).
    pub fn is_top(&self) -> bool {
        self.top
    }

    /// The underlying chase outcome.
    pub fn outcome(&self) -> &ChaseOutcome {
        &self.outcome
    }
}

impl Iterator for AnswerIter {
    type Item = Vec<Symbol>;

    fn next(&mut self) -> Option<Vec<Symbol>> {
        while self.pos < self.ids.len() {
            let id = self.ids[self.pos];
            self.pos += 1;
            if let Some(tuple) = self.outcome.instance.const_tuple(id) {
                return Some(tuple);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.ids.len() - self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, parse_query};

    #[test]
    fn query_rejects_output_in_body() {
        let p = parse_program("q(?X) -> r(?X).").unwrap();
        assert!(Query::new(p.clone(), Symbol::new("q")).is_err());
        assert!(Query::new(p, Symbol::new("r")).is_ok());
    }

    #[test]
    fn paper_query_1_author_names() {
        // Query (2) of §2: authors' names.
        let q = parse_query(
            "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X).",
            "query",
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("triple", &["dbUllman", "is_author_of", "The Complete Book"]);
        db.add_fact("triple", &["dbUllman", "name", "Jeffrey Ullman"]);
        let ans = q.evaluate(&db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&["Jeffrey Ullman"]));
        assert!(ans.eval_decision(&["Jeffrey Ullman"]));
        assert!(!ans.eval_decision(&["Alfred Aho"]));
    }

    #[test]
    fn transport_reachability_example() {
        // §2's recursive transport query. The paper's informal rules use
        // `query` recursively; §3.2 requires the output predicate not to
        // occur in rule bodies, so we add one output rule.
        let q = parse_query(
            "triple(?X, partOf, transportService) -> ts(?X).\n\
             triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).\n\
             ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).\n\
             ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).\n\
             conn(?X, ?Y) -> query(?X, ?Y).",
            "query",
        )
        .unwrap();
        let mut db = Database::new();
        for (s, p, o) in [
            ("TheAirline", "partOf", "transportService"),
            ("BritishAirways", "partOf", "transportService"),
            ("Renfe", "partOf", "transportService"),
            ("A311", "partOf", "TheAirline"),
            ("BA201", "partOf", "BritishAirways"),
            ("R502", "partOf", "Renfe"),
            ("Oxford", "A311", "London"),
            ("London", "BA201", "Madrid"),
            ("Madrid", "R502", "Valladolid"),
        ] {
            db.add_fact("triple", &[s, p, o]);
        }
        let ans = q.evaluate(&db).unwrap();
        assert!(ans.contains(&["Oxford", "Valladolid"]));
        assert!(ans.contains(&["London", "Valladolid"]));
        assert!(!ans.contains(&["Valladolid", "Oxford"]));
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn nulls_are_not_answers() {
        let q = parse_query("p(?X) -> exists ?Y out(?X, ?Y).", "out").unwrap();
        let mut db = Database::new();
        db.add_fact("p", &["a"]);
        let ans = q.evaluate(&db).unwrap();
        assert!(ans.is_empty());
        assert!(!ans.is_top());
    }

    #[test]
    fn top_dominates() {
        let q = parse_query("a(?X), b(?X) -> false.\n a(?X) -> out(?X).", "out").unwrap();
        let mut db = Database::new();
        db.add_fact("a", &["x"]);
        db.add_fact("b", &["x"]);
        let ans = q.evaluate(&db).unwrap();
        assert!(ans.is_top());
        assert!(ans.eval_decision(&["anything"]));
    }
}
