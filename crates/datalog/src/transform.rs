//! Program transformations from the complexity proofs:
//!
//! * [`eliminate_constraints`] — the `Π⊥` construction of Theorem 4.4:
//!   constraints become rules deriving `p(⋆, …, ⋆)` for the output
//!   predicate `p`, so that `Q(D) = ⊤ iff (⋆,…,⋆) ∈ Q'(D)`;
//! * [`instantiate_harmless`] — the `inst(ρ)` construction: harmless
//!   variables are replaced by database constants in all possible ways,
//!   turning a weakly-guarded program into a guarded one with the same
//!   answers over that database (the database-dependent reduction inside
//!   the Theorem 4.4 upper bound).

use crate::classify::rule_variable_classes;
use crate::instance::Database;
use crate::positions::affected_positions;
use crate::{Atom, Program, Query, Rule};
use std::collections::BTreeSet;
use triq_common::{intern, Result, Symbol, Term, VarId};

/// The special constant ⋆ used by the `Π⊥` construction (distinct from
/// the translation's answer-⋆ by name).
pub fn constraint_star() -> Symbol {
    intern("~constraint-star~")
}

/// Theorem 4.4's `Π⊥`: rewrites `Q = (Π, p)` into the constraint-free
/// `Q' = (ex(Π) ∪ Π⊥, p)` where each constraint `a₁,…,aₙ → ⊥` becomes
/// `a₁,…,aₙ → p(⋆,…,⋆)`. Then for every tuple `t` of constants,
/// `Q(D) ≠ ⊤ implies t ∈ Q(D)` iff `(⋆,…,⋆) ∉ Q'(D) implies t ∈ Q'(D)`.
pub fn eliminate_constraints(query: &Query) -> Result<(Query, Vec<Symbol>)> {
    let arity = query
        .program
        .schema()
        .get(&query.output)
        .copied()
        .unwrap_or(0);
    let star_tuple = vec![constraint_star(); arity];
    let mut program = query.program.without_constraints();
    for c in &query.program.constraints {
        program.rules.push(Rule {
            body_pos: c.body.clone(),
            body_neg: Vec::new(),
            builtins: c.builtins.clone(),
            exist_vars: Vec::new(),
            head: vec![Atom::new(
                query.output,
                star_tuple.iter().map(|&s| Term::Const(s)).collect(),
            )],
        });
    }
    Ok((Query::new(program, query.output)?, star_tuple))
}

/// Theorem 4.4's `inst(ρ)`: replaces every `ex(Π)⁺`-harmless variable of
/// every rule with constants of `dom(D)`, in all possible ways. For a
/// weakly-guarded input the result is guarded; the answers over `D` are
/// unchanged. The blow-up is `|dom(D)|^{#harmless}` per rule — polynomial
/// in the database for a fixed program, exactly as the proof argues.
pub fn instantiate_harmless(program: &Program, db: &Database) -> Program {
    let positive = program.positive_part();
    let affected = affected_positions(&positive);
    let domain: Vec<Symbol> = db.domain().into_iter().collect();
    let mut out = Program {
        rules: Vec::new(),
        constraints: program.constraints.clone(),
    };
    for rule in &program.rules {
        let classes = rule_variable_classes(rule, &affected);
        let harmless: Vec<VarId> = classes.harmless.iter().copied().collect();
        if harmless.is_empty() || domain.is_empty() {
            out.rules.push(rule.clone());
            continue;
        }
        // Enumerate dom(D)^{|harmless|} assignments.
        let mut assignments: Vec<Vec<(VarId, Symbol)>> = vec![Vec::new()];
        for &v in &harmless {
            let mut next = Vec::with_capacity(assignments.len() * domain.len());
            for partial in &assignments {
                for &c in &domain {
                    let mut a = partial.clone();
                    a.push((v, c));
                    next.push(a);
                }
            }
            assignments = next;
        }
        for assignment in assignments {
            let subst = |v: VarId| -> Option<Term> {
                assignment
                    .iter()
                    .find(|(w, _)| *w == v)
                    .map(|(_, c)| Term::Const(*c))
            };
            out.rules.push(Rule {
                body_pos: rule.body_pos.iter().map(|a| a.apply(&subst)).collect(),
                body_neg: rule.body_neg.iter().map(|a| a.apply(&subst)).collect(),
                builtins: rule
                    .builtins
                    .iter()
                    .map(|b| apply_builtin(b, &subst))
                    .collect(),
                exist_vars: rule.exist_vars.clone(),
                head: rule.head.iter().map(|a| a.apply(&subst)).collect(),
            });
        }
    }
    out
}

fn apply_builtin(b: &crate::Builtin, subst: &dyn Fn(VarId) -> Option<Term>) -> crate::Builtin {
    let ap = |t: Term| match t {
        Term::Var(v) => subst(v).unwrap_or(t),
        other => other,
    };
    match *b {
        crate::Builtin::Eq(x, y) => crate::Builtin::Eq(ap(x), ap(y)),
        crate::Builtin::Neq(x, y) => crate::Builtin::Neq(ap(x), ap(y)),
    }
}

/// Checks that every rule of `program` is guarded (some positive body atom
/// contains all body variables) — the target class of
/// [`instantiate_harmless`].
pub fn is_guarded(program: &Program) -> bool {
    program.rules.iter().all(|rule| {
        let body_vars: BTreeSet<VarId> = rule.body_vars();
        rule.body_pos.iter().any(|a| {
            let av: BTreeSet<VarId> = a.vars().collect();
            body_vars.iter().all(|v| av.contains(v))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::ChaseConfig;
    use crate::{classify_program, parse_program, parse_query, Answers};

    #[test]
    fn pi_bottom_encodes_inconsistency() {
        let q = parse_query("a(?X), b(?X) -> false.\n a(?X) -> out(?X).", "out").unwrap();
        let (q2, star_tuple) = eliminate_constraints(&q).unwrap();
        assert!(q2.program.constraints.is_empty());
        let mut db = Database::new();
        db.add_fact("a", &["x"]);
        db.add_fact("b", &["x"]);
        // Original: ⊤. Transformed: (⋆) is derived.
        assert!(q.evaluate(&db).unwrap().is_top());
        let ans = q2.evaluate(&db).unwrap();
        let star: Vec<&str> = star_tuple.iter().map(|s| s.as_str()).collect();
        assert!(ans.contains(&star));
        // Consistent database: both agree, no ⋆.
        let mut db2 = Database::new();
        db2.add_fact("a", &["y"]);
        assert!(!q.evaluate(&db2).unwrap().is_top());
        let ans2 = q2.evaluate(&db2).unwrap();
        assert!(!ans2.contains(&star));
        assert!(ans2.contains(&["y"]));
    }

    #[test]
    fn instantiation_makes_weakly_guarded_programs_guarded() {
        // Weakly guarded but not guarded: harmless ?A joins outside the
        // guard. (?X harmful via p[1]; guard q(?X,?A) holds it.)
        let program = parse_program(
            "b(?A) -> exists ?Y p(?Y).\n\
             p(?X), q(?X, ?A), r(?A, ?B) -> s(?X, ?A).",
        )
        .unwrap();
        let c = classify_program(&program);
        assert!(c.weakly_guarded);
        assert!(!c.guarded);
        let mut db = Database::new();
        db.add_fact("b", &["c1"]);
        db.add_fact("q", &["c1", "c2"]);
        db.add_fact("r", &["c2", "c1"]);
        db.add_fact("p", &["c1"]);
        let instantiated = instantiate_harmless(&program, &db);
        assert!(is_guarded(&instantiated), "{instantiated}");
        // Answers coincide.
        let q1 = Query::new(program, intern("s")).unwrap();
        let q2 = Query::new(instantiated, intern("s")).unwrap();
        let a1 = q1.evaluate_with(&db, ChaseConfig::default()).unwrap();
        let a2 = q2.evaluate_with(&db, ChaseConfig::default()).unwrap();
        assert_eq!(a1, a2);
        assert!(matches!(a1, Answers::Tuples(ref t) if t.len() == 1));
    }

    #[test]
    fn instantiation_size_is_dom_to_the_harmless() {
        let program = parse_program("p(?X), q(?A) -> s(?X, ?A).").unwrap();
        let mut db = Database::new();
        db.add_fact("p", &["c1"]);
        db.add_fact("q", &["c2"]);
        db.add_fact("q", &["c3"]);
        let instantiated = instantiate_harmless(&program, &db);
        // 2 harmless vars × |dom| = 3 ⇒ 9 instantiated rules.
        assert_eq!(instantiated.rules.len(), 9);
        let q1 = Query::new(program, intern("s")).unwrap();
        let q2 = Query::new(instantiated, intern("s")).unwrap();
        assert_eq!(q1.evaluate(&db).unwrap(), q2.evaluate(&db).unwrap());
    }

    #[test]
    fn rules_without_harmless_vars_pass_through() {
        let program =
            parse_program("p(?X) -> exists ?Y p2(?X, ?Y).\n p2(?X, ?Y) -> p3(?Y).").unwrap();
        // ?Y in rule 2 is harmful (p2[2] affected); ?X harmless.
        let mut db = Database::new();
        db.add_fact("p", &["a"]);
        let inst = instantiate_harmless(&program, &db);
        // Rule 1: ?X harmless → 1 instantiation (|dom| = 1). Rule 2: ?X
        // harmless → 1 instantiation. Total still 2 rules, now ground in
        // their harmless positions.
        assert_eq!(inst.rules.len(), 2);
        assert!(inst.rules[0].body_pos[0].terms[0].is_const());
    }
}
