//! Stratification of Datalog∃,¬ programs (§3.2).
//!
//! A stratification is a function µ : sch(Π) → [0, ℓ] with µ(head) ≥ µ(p)
//! for positive body predicates p and µ(head) > µ(p) for negated ones. We
//! compute the *canonical* (minimal) stratification when one exists: µ(p) =
//! the maximum number of negative edges on any path into p in the predicate
//! dependency graph. Π is stratified iff no cycle goes through a negative
//! edge.

use crate::Program;
use std::cell::Cell;
use std::collections::HashMap;
use triq_common::{Result, Symbol, TriqError};

thread_local! {
    /// Per-thread count of [`stratify`] invocations. Test probe for the
    /// prepare-once contract: preparing a query stratifies, executing it
    /// must not. Thread-local so concurrently running tests cannot
    /// perturb each other's readings.
    static STRATIFY_RUNS: Cell<usize> = const { Cell::new(0) };
}

/// Number of times [`stratify`] has run **on the current thread**.
pub fn stratify_run_count() -> usize {
    STRATIFY_RUNS.with(Cell::get)
}

/// The result of stratifying a program.
#[derive(Clone, Debug)]
pub struct Stratification {
    /// µ : predicate → stratum.
    pub strata: HashMap<Symbol, usize>,
    /// ℓ: the largest stratum index.
    pub max_stratum: usize,
    /// For each rule (by index in `Program::rules`), the stratum of its head
    /// predicate(s) — multi-head rules are required to have all heads in the
    /// same stratum, which our canonical µ guarantees only if forced; we
    /// place the rule at the max of its head strata and lift the others.
    pub rule_stratum: Vec<usize>,
}

impl Stratification {
    /// The stratum of a predicate (predicates never appearing in the
    /// program default to stratum 0).
    pub fn stratum_of(&self, pred: Symbol) -> usize {
        self.strata.get(&pred).copied().unwrap_or(0)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Edge {
    Positive,
    Negative,
}

/// Computes a stratification of `ex(Π)` (constraints are ignored, as the
/// paper defines stratifiedness via `ex(Π)`). Returns an error when the
/// program is not stratified.
pub fn stratify(program: &Program) -> Result<Stratification> {
    STRATIFY_RUNS.with(|c| c.set(c.get() + 1));
    // Dependency edges body-pred -> head-pred.
    let mut preds: Vec<Symbol> = Vec::new();
    let mut index: HashMap<Symbol, usize> = HashMap::new();
    let touch = |p: Symbol, preds: &mut Vec<Symbol>, index: &mut HashMap<Symbol, usize>| {
        *index.entry(p).or_insert_with(|| {
            preds.push(p);
            preds.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize, Edge)> = Vec::new();
    for rule in &program.rules {
        for h in &rule.head {
            let hi = touch(h.pred, &mut preds, &mut index);
            for b in &rule.body_pos {
                let bi = touch(b.pred, &mut preds, &mut index);
                edges.push((bi, hi, Edge::Positive));
            }
            for b in &rule.body_neg {
                let bi = touch(b.pred, &mut preds, &mut index);
                edges.push((bi, hi, Edge::Negative));
            }
        }
    }
    for c in &program.constraints {
        for b in &c.body {
            touch(b.pred, &mut preds, &mut index);
        }
    }

    let n = preds.len();
    // Bellman-Ford-style longest path counting negative edges. A change
    // after n*(#neg edges)+n iterations means a negative cycle.
    let mut mu = vec![0usize; n];
    let neg_edges = edges.iter().filter(|e| e.2 == Edge::Negative).count();
    let max_iters = n.saturating_mul(neg_edges.max(1)) + n + 1;
    let mut changed = true;
    let mut iters = 0usize;
    while changed {
        changed = false;
        iters += 1;
        if iters > max_iters {
            return Err(TriqError::Unstratifiable(
                "negation occurs in a recursive cycle".into(),
            ));
        }
        for &(from, to, kind) in &edges {
            let required = match kind {
                Edge::Positive => mu[from],
                Edge::Negative => mu[from] + 1,
            };
            if mu[to] < required {
                if required > n {
                    return Err(TriqError::Unstratifiable(
                        "negation occurs in a recursive cycle".into(),
                    ));
                }
                mu[to] = required;
                changed = true;
            }
        }
    }

    let strata: HashMap<Symbol, usize> =
        preds.iter().enumerate().map(|(i, &p)| (p, mu[i])).collect();
    let max_stratum = strata.values().copied().max().unwrap_or(0);
    let rule_stratum = program
        .rules
        .iter()
        .map(|r| {
            r.head
                .iter()
                .map(|h| strata[&h.pred])
                .max()
                .expect("rule has a head")
        })
        .collect();
    Ok(Stratification {
        strata,
        max_stratum,
        rule_stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use triq_common::intern;

    #[test]
    fn positive_recursion_is_one_stratum() {
        let p = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y).\n\
             e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.max_stratum, 0);
        assert_eq!(s.stratum_of(intern("t")), 0);
    }

    #[test]
    fn negation_forces_higher_stratum() {
        let p = parse_program(
            "succ(?X, ?Y) -> less(?X, ?Y).\n\
             succ(?X, ?Y), less(?Y, ?Z) -> less(?X, ?Z).\n\
             less(?X, ?Y) -> not_max(?X).\n\
             less(?Y, ?X), !not_max(?X) -> max(?X).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of(intern("less")), 0);
        assert_eq!(s.stratum_of(intern("not_max")), 0);
        assert_eq!(s.stratum_of(intern("max")), 1);
        assert_eq!(s.max_stratum, 1);
        assert_eq!(s.rule_stratum, vec![0, 0, 0, 1]);
    }

    #[test]
    fn chained_negation_stacks_strata() {
        let p = parse_program(
            "base(?X) -> a(?X).\n\
             base(?X), !a(?X) -> b(?X).\n\
             base(?X), !b(?X) -> c(?X).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of(intern("a")), 0);
        assert_eq!(s.stratum_of(intern("b")), 1);
        assert_eq!(s.stratum_of(intern("c")), 2);
    }

    #[test]
    fn negative_cycle_is_rejected() {
        let p = parse_program(
            "base(?X), !q(?X) -> p(?X).\n\
             base(?X), !p(?X) -> q(?X).",
        )
        .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn negation_inside_positive_cycle_is_rejected() {
        let p = parse_program(
            "e(?X, ?Y), p(?Y) -> q(?X).\n\
             e(?X, ?Y), !q(?Y) -> p(?X).",
        )
        .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn edb_only_constraint_predicates_are_registered() {
        let p = parse_program("a(?X), b(?X) -> false.").unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of(intern("a")), 0);
    }
}
