//! Vectorizable column kernels for the columnar store.
//!
//! The [`crate::Instance`] relations are column-major `Vec<TermId>`
//! (PR 2) precisely so the innermost compare/filter loops of the chase
//! could become chunked `u32` kernels. This module holds those kernels:
//! equality and range filters producing **selection vectors** (ascending
//! row positions), conjunctive refinement of an existing selection, a
//! gather for materializing ids out of a selection, and branch-free
//! counting primitives the planner uses for exact selectivity.
//!
//! Every kernel is written as an iterator-free chunked loop over fixed
//! [`CHUNK`]-wide blocks plus a scalar tail — the shape LLVM
//! auto-vectorizes on every target without `unsafe`, intrinsics, or new
//! dependencies. Filters do a branch-free *count* pass per block first
//! and only fall into the write loop when the block has hits, so sparse
//! selections stay at SIMD speed.
//!
//! Kernels never allocate when the caller pre-reserves output capacity
//! (`tests/probe_alloc.rs` pins that), and they never inspect
//! [`TermId`] semantics — a column of constants and nulls is filtered on
//! the packed representation, which is exactly term identity (the
//! comparison the paper's indefinite grounding prescribes for nulls).
//!
//! Selection vectors hold **absolute** row positions: a kernel scanning
//! the slice `col[base..]` with offset `base` emits `base + i`, so a
//! caller can filter a row *window* of a relation and index other
//! columns of the same relation with the result.

use triq_common::TermId;

/// Rows per vectorized block. 64 `u32`s = one or two cache lines per
/// column — wide enough to fill 128/256/512-bit lanes, small enough that
/// the per-block hit test rarely straddles a selectivity boundary.
pub const CHUNK: usize = 64;

/// Appends to `out` the absolute positions `base + i` of every row of
/// `col` equal to `value`, in ascending order.
pub fn filter_eq(col: &[TermId], value: TermId, base: u32, out: &mut Vec<u32>) {
    let n = col.len();
    let mut i = 0usize;
    while i + CHUNK <= n {
        let mut hits = 0u32;
        for j in 0..CHUNK {
            hits += (col[i + j] == value) as u32;
        }
        if hits > 0 {
            for j in 0..CHUNK {
                if col[i + j] == value {
                    out.push(base + (i + j) as u32);
                }
            }
        }
        i += CHUNK;
    }
    while i < n {
        if col[i] == value {
            out.push(base + i as u32);
        }
        i += 1;
    }
}

/// Appends to `out` the absolute positions `base + i` of every element
/// of `xs` in the half-open range `lo..hi`, in ascending order.
pub fn filter_range(xs: &[u32], lo: u32, hi: u32, base: u32, out: &mut Vec<u32>) {
    let n = xs.len();
    let mut i = 0usize;
    while i + CHUNK <= n {
        let mut hits = 0u32;
        for j in 0..CHUNK {
            let x = xs[i + j];
            hits += (x >= lo && x < hi) as u32;
        }
        if hits > 0 {
            for j in 0..CHUNK {
                let x = xs[i + j];
                if x >= lo && x < hi {
                    out.push(base + (i + j) as u32);
                }
            }
        }
        i += CHUNK;
    }
    while i < n {
        let x = xs[i];
        if x >= lo && x < hi {
            out.push(base + i as u32);
        }
        i += 1;
    }
}

/// Conjunctive refinement: retains in `sel` only the positions `p` with
/// `col[p - base] == value`. The selection stays ascending. In-place and
/// allocation-free (a compaction walk, never a re-collect).
pub fn refine_eq(col: &[TermId], value: TermId, base: u32, sel: &mut Vec<u32>) {
    let mut kept = 0usize;
    let mut i = 0usize;
    let n = sel.len();
    while i < n {
        let p = sel[i];
        let keep = col[(p - base) as usize] == value;
        sel[kept] = p;
        kept += keep as usize;
        i += 1;
    }
    sel.truncate(kept);
}

/// Conjunctive refinement on a repeated variable: retains in `sel` only
/// the positions `p` where columns `a` and `b` agree
/// (`a[p - base] == b[p - base]`).
pub fn refine_pair_eq(a: &[TermId], b: &[TermId], base: u32, sel: &mut Vec<u32>) {
    let mut kept = 0usize;
    let mut i = 0usize;
    let n = sel.len();
    while i < n {
        let p = sel[i];
        let r = (p - base) as usize;
        let keep = a[r] == b[r];
        sel[kept] = p;
        kept += keep as usize;
        i += 1;
    }
    sel.truncate(kept);
}

/// Appends to `out` the positions `base + i` of every row where columns
/// `a` and `b` agree — the leading-pass form of [`refine_pair_eq`], for
/// atoms whose only filter is a repeated variable (e.g. `e(?X, ?X)`).
pub fn filter_pair_eq(a: &[TermId], b: &[TermId], base: u32, out: &mut Vec<u32>) {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + CHUNK <= n {
        let mut hits = 0u32;
        for j in 0..CHUNK {
            hits += (a[i + j] == b[i + j]) as u32;
        }
        if hits > 0 {
            for j in 0..CHUNK {
                if a[i + j] == b[i + j] {
                    out.push(base + (i + j) as u32);
                }
            }
        }
        i += CHUNK;
    }
    while i < n {
        if a[i] == b[i] {
            out.push(base + i as u32);
        }
        i += 1;
    }
}

/// Gather: appends `src[p]` for every position `p` in `sel` (absolute
/// positions into `src`) — the match-buffer fill step that turns a
/// selection over a relation's row window into the corresponding
/// `AtomId`s (or any other per-row `u32` payload).
pub fn gather(src: &[u32], sel: &[u32], out: &mut Vec<u32>) {
    let n = sel.len();
    let mut i = 0usize;
    while i + CHUNK <= n {
        for j in 0..CHUNK {
            out.push(src[sel[i + j] as usize]);
        }
        i += CHUNK;
    }
    while i < n {
        out.push(src[sel[i] as usize]);
        i += 1;
    }
}

/// Branch-free count of elements strictly below `bound`. On an
/// **ascending** slice this equals `xs.partition_point(|&x| x < bound)` —
/// the linear form beats the binary search on short posting lists, where
/// the chase's candidate windowing spends most of its time.
pub fn count_lt(xs: &[u32], bound: u32) -> usize {
    let n = xs.len();
    let mut count = 0usize;
    let mut i = 0usize;
    while i + CHUNK <= n {
        let mut c = 0u32;
        for j in 0..CHUNK {
            c += (xs[i + j] < bound) as u32;
        }
        count += c as usize;
        i += CHUNK;
    }
    while i < n {
        count += (xs[i] < bound) as usize;
        i += 1;
    }
    count
}

/// Branch-free count of rows equal to `value` — the planner's exact
/// selectivity pre-filter for fixed terms over small dense relations
/// (where one linear pass is cheaper than being wrong about a
/// sketch-estimated distinct count).
pub fn count_eq(col: &[TermId], value: TermId) -> usize {
    let n = col.len();
    let mut count = 0usize;
    let mut i = 0usize;
    while i + CHUNK <= n {
        let mut c = 0u32;
        for j in 0..CHUNK {
            c += (col[i + j] == value) as u32;
        }
        count += c as usize;
        i += CHUNK;
    }
    while i < n {
        count += (col[i] == value) as usize;
        i += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use triq_common::{intern, NullId};

    fn tid(x: u32) -> TermId {
        // Map the low bit to constant-vs-null so columns mix both kinds;
        // interned indices keep constants within the symbol space.
        if x.is_multiple_of(2) {
            TermId::from_const(intern(&format!("k{}", x % 17)))
        } else {
            TermId::from_null(NullId(x % 13))
        }
    }

    fn scalar_filter_eq(col: &[TermId], v: TermId, base: u32) -> Vec<u32> {
        (0..col.len())
            .filter(|&i| col[i] == v)
            .map(|i| base + i as u32)
            .collect()
    }

    #[test]
    fn empty_inputs_do_nothing() {
        let mut out = Vec::new();
        filter_eq(&[], tid(0), 5, &mut out);
        filter_range(&[], 0, 10, 0, &mut out);
        filter_pair_eq(&[], &[], 0, &mut out);
        gather(&[], &[], &mut out);
        assert!(out.is_empty());
        assert_eq!(count_lt(&[], 3), 0);
        assert_eq!(count_eq(&[], tid(0)), 0);
        let mut sel = Vec::new();
        refine_eq(&[], tid(0), 0, &mut sel);
        assert!(sel.is_empty());
    }

    #[test]
    fn all_match_and_exact_chunk_boundaries() {
        for n in [CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK, 3 * CHUNK + 7] {
            let v = tid(4);
            let col = vec![v; n];
            let mut out = Vec::new();
            filter_eq(&col, v, 100, &mut out);
            let want: Vec<u32> = (0..n as u32).map(|i| 100 + i).collect();
            assert_eq!(out, want, "n={n}");
            assert_eq!(count_eq(&col, v), n);
            let raw: Vec<u32> = (0..n as u32).collect();
            assert_eq!(count_lt(&raw, n as u32 + 1), n);
            assert_eq!(count_lt(&raw, 0), 0);
        }
    }

    #[test]
    fn gather_pulls_through_selection() {
        let src: Vec<u32> = (0..200u32).map(|i| i * 3).collect();
        let sel: Vec<u32> = vec![0, 7, 63, 64, 65, 199];
        let mut out = Vec::new();
        gather(&src, &sel, &mut out);
        assert_eq!(out, vec![0, 21, 189, 192, 195, 597]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn filter_eq_matches_scalar(raw in prop::collection::vec(0u32..40, 0..300), pick in 0u32..40, base in 0u32..1000) {
            let col: Vec<TermId> = raw.iter().map(|&x| tid(x)).collect();
            let v = tid(pick);
            let mut out = vec![0u32; 3]; // dirty prefix must survive
            let mut want = vec![0u32; 3];
            filter_eq(&col, v, base, &mut out);
            want.extend(scalar_filter_eq(&col, v, base));
            prop_assert_eq!(out, want);
        }

        #[test]
        fn filter_range_matches_scalar(xs in prop::collection::vec(0u32..500, 0..300), lo in 0u32..500, span in 0u32..200) {
            let hi = lo.saturating_add(span);
            let mut out = Vec::new();
            filter_range(&xs, lo, hi, 10, &mut out);
            let want: Vec<u32> = (0..xs.len())
                .filter(|&i| xs[i] >= lo && xs[i] < hi)
                .map(|i| 10 + i as u32)
                .collect();
            prop_assert_eq!(out, want);
        }

        #[test]
        fn conjunctive_filter_matches_scalar(
            a in prop::collection::vec(0u32..12, 0..300),
            b_seed in 0u32..12,
            pick_a in 0u32..12,
            pick_b in 0u32..12,
        ) {
            // Two columns of equal length; conjunctive = filter then refine.
            let col_a: Vec<TermId> = a.iter().map(|&x| tid(x)).collect();
            let col_b: Vec<TermId> = a.iter().map(|&x| tid(x.wrapping_mul(7).wrapping_add(b_seed) % 12)).collect();
            let (va, vb) = (tid(pick_a), tid(pick_b));
            let mut sel = Vec::new();
            filter_eq(&col_a, va, 50, &mut sel);
            refine_eq(&col_b, vb, 50, &mut sel);
            let want: Vec<u32> = (0..col_a.len())
                .filter(|&i| col_a[i] == va && col_b[i] == vb)
                .map(|i| 50 + i as u32)
                .collect();
            prop_assert_eq!(sel, want);
        }

        #[test]
        fn pair_eq_paths_agree(raw in prop::collection::vec(0u32..8, 0..300)) {
            let a: Vec<TermId> = raw.iter().map(|&x| tid(x)).collect();
            let b: Vec<TermId> = raw.iter().rev().map(|&x| tid(x)).collect();
            // Leading-pass form vs refine over the full selection.
            let mut lead = Vec::new();
            filter_pair_eq(&a, &b, 0, &mut lead);
            let mut refined: Vec<u32> = (0..a.len() as u32).collect();
            refine_pair_eq(&a, &b, 0, &mut refined);
            prop_assert_eq!(lead, refined);
        }

        #[test]
        fn count_lt_matches_partition_point(raw in prop::collection::vec(0u32..1000, 0..300), bound in 0u32..1000) {
            let mut xs = raw;
            xs.sort_unstable();
            prop_assert_eq!(count_lt(&xs, bound), xs.partition_point(|&x| x < bound));
        }

        #[test]
        fn count_eq_matches_filter_len(raw in prop::collection::vec(0u32..20, 0..300), pick in 0u32..20) {
            let col: Vec<TermId> = raw.iter().map(|&x| tid(x)).collect();
            let v = tid(pick);
            let mut out = Vec::new();
            filter_eq(&col, v, 0, &mut out);
            prop_assert_eq!(count_eq(&col, v), out.len());
        }
    }
}
