//! Rules, constraints and programs (§3.2).

use crate::{Atom, Builtin};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use triq_common::{Result, Symbol, TriqError, VarId};

/// A Datalog∃,¬ rule
/// `a₁, …, aₙ, ¬b₁, …, ¬bₘ → ∃?Y₁ … ∃?Yₖ c₁, …, c_r` (§3.2).
///
/// Following footnote 6 of the paper we allow several head atoms; the
/// normalization into single-head rules is available via
/// [`Rule::split_head`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Positive body atoms `body⁺(ρ)`.
    pub body_pos: Vec<Atom>,
    /// Negated body atoms `body⁻(ρ)`.
    pub body_neg: Vec<Atom>,
    /// Built-in (in)equality literals.
    pub builtins: Vec<Builtin>,
    /// Existentially quantified head variables `?Y₁, …, ?Yₖ`.
    pub exist_vars: Vec<VarId>,
    /// Head atoms.
    pub head: Vec<Atom>,
}

impl Rule {
    /// Builds a positive single-head Datalog rule (no ∃, no ¬).
    pub fn plain(body: Vec<Atom>, head: Atom) -> Self {
        Rule {
            body_pos: body,
            body_neg: Vec::new(),
            builtins: Vec::new(),
            exist_vars: Vec::new(),
            head: vec![head],
        }
    }

    /// All variables occurring in the positive body.
    pub fn body_pos_vars(&self) -> BTreeSet<VarId> {
        self.body_pos.iter().flat_map(|a| a.vars()).collect()
    }

    /// All variables occurring in the (full) body.
    pub fn body_vars(&self) -> BTreeSet<VarId> {
        self.body_pos
            .iter()
            .chain(self.body_neg.iter())
            .flat_map(|a| a.vars())
            .collect()
    }

    /// All universally quantified variables occurring in the head
    /// (the *frontier* of the rule).
    pub fn frontier(&self) -> BTreeSet<VarId> {
        let body = self.body_pos_vars();
        self.head
            .iter()
            .flat_map(|a| a.vars())
            .filter(|v| body.contains(v))
            .collect()
    }

    /// Validates the syntactic side conditions (1)–(5) of §3.2.
    pub fn validate(&self) -> Result<()> {
        if self.body_pos.is_empty() {
            return Err(TriqError::InvalidProgram(format!(
                "rule {self} has an empty positive body (condition n ≥ 1)"
            )));
        }
        let pos_vars = self.body_pos_vars();
        for b in &self.body_neg {
            for v in b.vars() {
                if !pos_vars.contains(&v) {
                    return Err(TriqError::InvalidProgram(format!(
                        "negated atom {b} in rule {self} uses variable {v} \
                         not bound by the positive body (condition 3)"
                    )));
                }
            }
        }
        for bi in &self.builtins {
            for v in bi.vars() {
                if !pos_vars.contains(&v) {
                    return Err(TriqError::InvalidProgram(format!(
                        "builtin {bi} in rule {self} uses unbound variable {v}"
                    )));
                }
            }
        }
        for ev in &self.exist_vars {
            if pos_vars.contains(ev) || self.body_neg.iter().any(|a| a.vars().any(|v| v == *ev)) {
                return Err(TriqError::InvalidProgram(format!(
                    "existential variable {ev} of rule {self} also occurs in \
                     the body (condition 4)"
                )));
            }
        }
        for h in &self.head {
            for v in h.vars() {
                if !pos_vars.contains(&v) && !self.exist_vars.contains(&v) {
                    return Err(TriqError::InvalidProgram(format!(
                        "head variable {v} of rule {self} is neither frontier \
                         nor existential (condition 5)"
                    )));
                }
            }
            if h.terms.iter().any(|t| t.is_null()) {
                return Err(TriqError::InvalidProgram(format!(
                    "rule {self} mentions a labeled null"
                )));
            }
        }
        if self.head.is_empty() {
            return Err(TriqError::InvalidProgram(format!(
                "rule {self} has no head atom"
            )));
        }
        Ok(())
    }

    /// True iff the rule has existential head variables.
    pub fn is_existential(&self) -> bool {
        !self.exist_vars.is_empty()
    }

    /// Splits a multi-head rule into single-head rules sharing the body
    /// (only valid when no existential variable is shared between head
    /// atoms; otherwise the rule is kept intact — see footnote 6 and ref. \[12\]).
    pub fn split_head(&self) -> Vec<Rule> {
        if self.head.len() <= 1 || !self.exist_vars.is_empty() {
            return vec![self.clone()];
        }
        self.head
            .iter()
            .map(|h| Rule {
                head: vec![h.clone()],
                ..self.clone()
            })
            .collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            Ok(())
        };
        for a in &self.body_pos {
            sep(f)?;
            write!(f, "{a}")?;
        }
        for a in &self.body_neg {
            sep(f)?;
            write!(f, "!{a}")?;
        }
        for b in &self.builtins {
            sep(f)?;
            write!(f, "{b}")?;
        }
        f.write_str(" -> ")?;
        if !self.exist_vars.is_empty() {
            f.write_str("exists")?;
            for v in &self.exist_vars {
                write!(f, " {v}")?;
            }
            f.write_str(" ")?;
        }
        for (i, h) in self.head.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{h}")?;
        }
        Ok(())
    }
}

/// A constraint `a₁, …, aₙ → ⊥` (§3.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Body atoms.
    pub body: Vec<Atom>,
    /// Built-in literals.
    pub builtins: Vec<Builtin>,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        for b in &self.builtins {
            write!(f, ", {b}")?;
        }
        f.write_str(" -> false")
    }
}

/// A Datalog∃,¬,⊥ program: a finite set of rules and constraints (§3.2).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Program {
    /// The Datalog∃,¬ rules (`ex(Π)` in the paper).
    pub rules: Vec<Rule>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Builds and validates a program.
    pub fn from_rules(rules: Vec<Rule>, constraints: Vec<Constraint>) -> Result<Self> {
        let p = Program { rules, constraints };
        p.validate()?;
        Ok(p)
    }

    /// Concatenates two programs (the paper's `Π ∪ Π'`).
    pub fn union(&self, other: &Program) -> Program {
        let mut p = self.clone();
        p.rules.extend(other.rules.iter().cloned());
        p.constraints.extend(other.constraints.iter().cloned());
        p
    }

    /// Validates all rules and checks arity coherence across the program
    /// (`sch(Π)` assigns each predicate a single arity).
    pub fn validate(&self) -> Result<()> {
        for r in &self.rules {
            r.validate()?;
        }
        for c in &self.constraints {
            if c.body.is_empty() {
                return Err(TriqError::InvalidProgram(
                    "constraint with empty body".into(),
                ));
            }
        }
        let mut arities: HashMap<Symbol, usize> = HashMap::new();
        let mut check = |a: &Atom| -> Result<()> {
            match arities.insert(a.pred, a.arity()) {
                Some(prev) if prev != a.arity() => Err(TriqError::InvalidProgram(format!(
                    "predicate {} used with arities {} and {}",
                    a.pred,
                    prev,
                    a.arity()
                ))),
                _ => Ok(()),
            }
        };
        for a in self.all_atoms() {
            check(a)?;
        }
        Ok(())
    }

    /// Every atom occurring anywhere in the program.
    pub fn all_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.rules
            .iter()
            .flat_map(|r| {
                r.body_pos
                    .iter()
                    .chain(r.body_neg.iter())
                    .chain(r.head.iter())
            })
            .chain(self.constraints.iter().flat_map(|c| c.body.iter()))
    }

    /// `sch(Π)`: the predicates occurring in the program, with arities.
    pub fn schema(&self) -> HashMap<Symbol, usize> {
        self.all_atoms().map(|a| (a.pred, a.arity())).collect()
    }

    /// The predicates that occur in some rule head (IDB predicates).
    pub fn head_predicates(&self) -> BTreeSet<Symbol> {
        self.rules
            .iter()
            .flat_map(|r| r.head.iter().map(|a| a.pred))
            .collect()
    }

    /// True iff `pred` occurs in the body of some rule or constraint.
    pub fn occurs_in_body(&self, pred: Symbol) -> bool {
        self.rules
            .iter()
            .flat_map(|r| r.body_pos.iter().chain(r.body_neg.iter()))
            .chain(self.constraints.iter().flat_map(|c| c.body.iter()))
            .any(|a| a.pred == pred)
    }

    /// `ex(Π)`: the program without its constraints.
    pub fn without_constraints(&self) -> Program {
        Program {
            rules: self.rules.clone(),
            constraints: Vec::new(),
        }
    }

    /// `Π⁺`: the program without negated atoms and constraints (used by the
    /// guardedness machinery, §4.2).
    pub fn positive_part(&self) -> Program {
        Program {
            rules: self
                .rules
                .iter()
                .map(|r| Rule {
                    body_neg: Vec::new(),
                    ..r.clone()
                })
                .collect(),
            constraints: Vec::new(),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}.")?;
        }
        for c in &self.constraints {
            writeln!(f, "{c}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::Term;

    fn v(n: u32) -> Term {
        Term::Var(VarId(n))
    }

    #[test]
    fn validate_rejects_unsafe_negation() {
        let r = Rule {
            body_pos: vec![Atom::from_parts("p", vec![v(0)])],
            body_neg: vec![Atom::from_parts("q", vec![v(1)])],
            builtins: vec![],
            exist_vars: vec![],
            head: vec![Atom::from_parts("r", vec![v(0)])],
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_rejects_unbound_head_var() {
        let r = Rule::plain(
            vec![Atom::from_parts("p", vec![v(0)])],
            Atom::from_parts("q", vec![v(1)]),
        );
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_accepts_existential() {
        let r = Rule {
            body_pos: vec![Atom::from_parts("p", vec![v(0)])],
            body_neg: vec![],
            builtins: vec![],
            exist_vars: vec![VarId(1)],
            head: vec![Atom::from_parts("q", vec![v(0), v(1)])],
        };
        assert!(r.validate().is_ok());
        assert!(r.is_existential());
        assert_eq!(r.frontier(), BTreeSet::from([VarId(0)]));
    }

    #[test]
    fn program_arity_check() {
        let p = Program {
            rules: vec![
                Rule::plain(
                    vec![Atom::from_parts("p", vec![v(0)])],
                    Atom::from_parts("q", vec![v(0)]),
                ),
                Rule::plain(
                    vec![Atom::from_parts("p", vec![v(0), v(1)])],
                    Atom::from_parts("r", vec![v(0)]),
                ),
            ],
            constraints: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn split_head_shares_body() {
        let r = Rule {
            body_pos: vec![Atom::from_parts("p", vec![v(0)])],
            body_neg: vec![],
            builtins: vec![],
            exist_vars: vec![],
            head: vec![
                Atom::from_parts("q", vec![v(0)]),
                Atom::from_parts("r", vec![v(0)]),
            ],
        };
        let split = r.split_head();
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].head[0].pred.as_str(), "q");
        assert_eq!(split[1].head[0].pred.as_str(), "r");
    }
}
