//! The unbounded ground-connection property (UGCP, §6.2).
//!
//! The *ground connection* of a null `z` in an instance `I` is the set of
//! constants that jointly appear with `z` in some atom of `I`; `mgc(n)` is
//! the maximum ground-connection size over all nulls of `Π(Dₙ)`. A
//! Datalog∃ language has the UGCP if some fixed program and database
//! family make `mgc` unbounded. Lemma 6.5 shows every "good candidate"
//! language has the UGCP; Lemma 6.6 shows nearly frontier-guarded Datalog∃
//! does not — experiment E6 measures both sides.

use crate::instance::Instance;
use std::collections::{HashMap, HashSet};
use triq_common::{NullId, Symbol};

/// `gc(z, I)`: all constants that appear together with `z` in an atom.
pub fn ground_connection(instance: &Instance, z: NullId) -> HashSet<Symbol> {
    let mut gc = HashSet::new();
    for (_, atom) in instance.iter() {
        if atom.terms.iter().any(|t| t.as_null() == Some(z)) {
            for t in atom.terms.iter() {
                if let Some(c) = t.as_const() {
                    gc.insert(c);
                }
            }
        }
    }
    gc
}

/// `mgc(I) = max_z |gc(z, I)|` (0 when the instance has no nulls).
pub fn max_ground_connection(instance: &Instance) -> usize {
    let mut per_null: HashMap<NullId, HashSet<Symbol>> = HashMap::new();
    for (_, atom) in instance.iter() {
        let nulls: Vec<NullId> = atom.terms.iter().filter_map(|t| t.as_null()).collect();
        if nulls.is_empty() {
            continue;
        }
        let consts: Vec<Symbol> = atom.terms.iter().filter_map(|t| t.as_const()).collect();
        for z in nulls {
            per_null
                .entry(z)
                .or_default()
                .extend(consts.iter().copied());
        }
    }
    per_null.values().map(HashSet::len).max().unwrap_or(0)
}

/// A *warded* program that exhibits the UGCP on chain databases: it
/// invents one null per `start` constant and then connects the null to
/// every constant reachable along `next` edges — the Datalog∃ analogue of
/// the ontology family in the proof of Lemma 6.5.
///
/// Database family `D_n`: `start(c)`, `next(a_1, a_2), …, next(a_{n-1},
/// a_n)`, `first(a_1)`. Then `Π(D_n)` contains `tag(z, a_i)` for all i, so
/// `mgc(n) ≥ n`.
pub fn warded_ugcp_program() -> crate::Program {
    crate::parse_program(
        "start(?X) -> exists ?Z witness(?X, ?Z).\n\
         witness(?X, ?Z), first(?A) -> tag(?Z, ?A).\n\
         tag(?Z, ?A), next(?A, ?B) -> tag(?Z, ?B).",
    )
    .expect("UGCP program is well-formed")
}

/// A *nearly frontier-guarded* program over the same schema. By
/// Lemma 6.6 its `mgc` is bounded by a constant independent of `n` — nulls
/// can only co-occur with constants present at their invention atom.
pub fn nfg_ugcp_program() -> crate::Program {
    crate::parse_program(
        "start(?X) -> exists ?Z witness(?X, ?Z).\n\
         witness(?X, ?Z) -> seen(?X).\n\
         seen(?A), next(?A, ?B) -> seen(?B).",
    )
    .expect("NFG program is well-formed")
}

/// The chain database `D_n` used by both programs.
pub fn chain_database(n: usize) -> crate::Database {
    let mut db = crate::Database::new();
    db.add_fact("start", &["c"]);
    db.add_fact("first", &["a1"]);
    for i in 1..n {
        db.add_fact("next", &[&format!("a{i}"), &format!("a{}", i + 1)]);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase, ChaseConfig};
    use crate::classify_program;

    #[test]
    fn warded_program_has_unbounded_mgc() {
        let program = warded_ugcp_program();
        let c = classify_program(&program);
        assert!(c.warded, "{:?}", c.violations);
        for n in [2usize, 5, 9] {
            let db = chain_database(n);
            let out = chase(&db, &program, ChaseConfig::default()).unwrap();
            // witness(c, z) plus tag(z, a_1..a_n): gc(z) = {c, a_1..a_n},
            // i.e. mgc = n + 1, growing linearly with n.
            assert_eq!(max_ground_connection(&out.instance), n + 1, "n = {n}");
        }
    }

    #[test]
    fn nfg_program_has_constant_mgc() {
        let program = nfg_ugcp_program();
        let c = classify_program(&program);
        assert!(c.nearly_frontier_guarded);
        let mut values = Vec::new();
        for n in [2usize, 5, 9] {
            let db = chain_database(n);
            let out = chase(&db, &program, ChaseConfig::default()).unwrap();
            values.push(max_ground_connection(&out.instance));
        }
        // Bounded: the null only ever co-occurs with its invention constant.
        assert_eq!(values, vec![1, 1, 1]);
    }

    #[test]
    fn ground_connection_of_specific_null() {
        let program = warded_ugcp_program();
        let db = chain_database(3);
        let out = chase(&db, &program, ChaseConfig::default()).unwrap();
        assert_eq!(out.stats.nulls, 1);
        let gc = ground_connection(&out.instance, triq_common::NullId(0));
        assert_eq!(gc.len(), 3 + 1); // a1, a2, a3 and the start constant c
    }
}
