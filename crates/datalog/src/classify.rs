//! Variable classification (harmless / harmful / dangerous, §4.1) and
//! language-membership deciders for every class the paper discusses.

use crate::positions::{affected_positions, Pos, PositionSet};
use crate::{Program, Rule};
use std::collections::BTreeSet;
use triq_common::{Term, VarId};

/// The classification of one rule's body variables relative to a program
/// (§4.1): harmless variables have an occurrence at a non-affected
/// position; harmful variables do not; dangerous variables are harmful
/// variables propagated to the head.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleClasses {
    /// `harmless(ρ, Π)`.
    pub harmless: BTreeSet<VarId>,
    /// `harmful(ρ, Π)`.
    pub harmful: BTreeSet<VarId>,
    /// `dangerous(ρ, Π)`.
    pub dangerous: BTreeSet<VarId>,
}

/// Computes the §4.1 classification of `rule`'s positive-body variables
/// with respect to the affected positions `affected` (of `ex(Π)⁺`).
pub fn rule_variable_classes(rule: &Rule, affected: &PositionSet) -> RuleClasses {
    let mut classes = RuleClasses::default();
    let head_vars: BTreeSet<VarId> = rule.head.iter().flat_map(|a| a.vars()).collect();
    let mut seen: BTreeSet<VarId> = BTreeSet::new();
    for atom in &rule.body_pos {
        for (i, t) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = t {
                seen.insert(*v);
                if !affected.contains(&Pos {
                    pred: atom.pred,
                    index: i,
                }) {
                    classes.harmless.insert(*v);
                }
            }
        }
    }
    for v in seen {
        if !classes.harmless.contains(&v) {
            classes.harmful.insert(v);
            if head_vars.contains(&v) {
                classes.dangerous.insert(v);
            }
        }
    }
    classes
}

/// The language classes of the paper, ordered roughly by restrictiveness.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LanguageClass {
    /// Plain Datalog (no ∃).
    Datalog,
    /// Guarded Datalog∃: some body atom contains *all* body variables.
    Guarded,
    /// Weakly-guarded Datalog∃: some body atom contains all harmful
    /// variables (§4.1).
    WeaklyGuarded,
    /// Frontier-guarded Datalog∃: some body atom contains the frontier.
    FrontierGuarded,
    /// Nearly frontier-guarded Datalog∃ (§6.2, ref. \[21\]): each rule is
    /// frontier-guarded or has only harmless body variables.
    NearlyFrontierGuarded,
    /// Weakly-frontier-guarded Datalog∃ — the basis of TriQ 1.0 (§4.2).
    WeaklyFrontierGuarded,
    /// Warded Datalog∃ — the basis of TriQ-Lite 1.0 (§6.1).
    Warded,
    /// Warded with minimal interaction (§6.4) — the mildest relaxation of
    /// wardedness, shown ExpTime-hard by Theorem 6.15.
    WardedMinimalInteraction,
}

/// The full classification report for a program.
#[derive(Clone, Debug)]
pub struct ProgramClassification {
    /// Affected positions of `ex(Π)⁺`.
    pub affected: PositionSet,
    /// Per-rule variable classes (indexed like `Program::rules`).
    pub per_rule: Vec<RuleClasses>,
    /// Whether `ex(Π)` is stratified.
    pub stratified: bool,
    /// Whether every rule contains no existential variable.
    pub plain_datalog: bool,
    /// Membership per language class (on `ex(Π)⁺`, per §4.2/§6.1).
    pub guarded: bool,
    /// See [`LanguageClass::WeaklyGuarded`].
    pub weakly_guarded: bool,
    /// See [`LanguageClass::FrontierGuarded`].
    pub frontier_guarded: bool,
    /// See [`LanguageClass::NearlyFrontierGuarded`].
    pub nearly_frontier_guarded: bool,
    /// See [`LanguageClass::WeaklyFrontierGuarded`].
    pub weakly_frontier_guarded: bool,
    /// See [`LanguageClass::Warded`].
    pub warded: bool,
    /// See [`LanguageClass::WardedMinimalInteraction`].
    pub warded_minimal_interaction: bool,
    /// Whether negation is *grounded* (`Datalog∃,¬sg,⊥`, §6.1): every term
    /// of every negated atom is a constant or a harmless variable.
    pub grounded_negation: bool,
    /// Human-readable reasons for each failed membership.
    pub violations: Vec<String>,
}

impl ProgramClassification {
    /// Definition 4.2: a TriQ 1.0 query program is a stratified
    /// weakly-frontier-guarded Datalog∃,¬s,⊥ program.
    pub fn is_triq_1_0(&self) -> bool {
        self.stratified && self.weakly_frontier_guarded
    }

    /// Definition 6.1: a TriQ-Lite 1.0 query program is a stratified warded
    /// Datalog∃,¬sg,⊥ program (grounded negation).
    pub fn is_triq_lite_1_0(&self) -> bool {
        self.stratified && self.warded && self.grounded_negation
    }

    /// Membership in a given class.
    pub fn is_in(&self, class: LanguageClass) -> bool {
        match class {
            LanguageClass::Datalog => self.plain_datalog,
            LanguageClass::Guarded => self.guarded,
            LanguageClass::WeaklyGuarded => self.weakly_guarded,
            LanguageClass::FrontierGuarded => self.frontier_guarded,
            LanguageClass::NearlyFrontierGuarded => self.nearly_frontier_guarded,
            LanguageClass::WeaklyFrontierGuarded => self.weakly_frontier_guarded,
            LanguageClass::Warded => self.warded,
            LanguageClass::WardedMinimalInteraction => self.warded_minimal_interaction,
        }
    }
}

fn atom_vars(atom: &crate::Atom) -> BTreeSet<VarId> {
    atom.vars().collect()
}

/// True iff some positive body atom of `rule` contains all of `vars`.
fn some_atom_contains(rule: &Rule, vars: &BTreeSet<VarId>) -> bool {
    rule.body_pos
        .iter()
        .any(|a| vars.iter().all(|v| atom_vars(a).contains(v)))
}

/// Checks whether `rule` is warded, and if so returns the index of a ward
/// (§6.1): an atom containing all dangerous variables that shares only
/// harmless variables with the rest of the body.
fn find_ward(rule: &Rule, classes: &RuleClasses) -> Option<usize> {
    if classes.dangerous.is_empty() {
        return Some(usize::MAX); // no ward needed
    }
    'cand: for (i, a) in rule.body_pos.iter().enumerate() {
        let a_vars = atom_vars(a);
        if !classes.dangerous.iter().all(|v| a_vars.contains(v)) {
            continue;
        }
        for (j, b) in rule.body_pos.iter().enumerate() {
            if i == j {
                continue;
            }
            for v in b.vars() {
                if a_vars.contains(&v) && !classes.harmless.contains(&v) {
                    continue 'cand;
                }
            }
        }
        return Some(i);
    }
    None
}

/// Checks the "minimal interaction" relaxation of §6.4: a candidate ward
/// may share at most one harmful variable `?V` with the rest of the body,
/// `?V` occurs at most once outside the ward, and the atom carrying that
/// occurrence has all its other variables harmless.
fn is_minimal_interaction(rule: &Rule, classes: &RuleClasses) -> bool {
    if classes.dangerous.is_empty() {
        return true;
    }
    'cand: for (i, a) in rule.body_pos.iter().enumerate() {
        let a_vars = atom_vars(a);
        if !classes.dangerous.iter().all(|v| a_vars.contains(v)) {
            continue;
        }
        // Harmful variables of the ward occurring outside it.
        let mut escaped: Option<VarId> = None;
        let mut escape_count = 0usize;
        for (j, b) in rule.body_pos.iter().enumerate() {
            if i == j {
                continue;
            }
            for v in b.vars() {
                if a_vars.contains(&v) && !classes.harmless.contains(&v) {
                    match escaped {
                        None => {
                            escaped = Some(v);
                            escape_count = 1;
                        }
                        Some(w) if w == v => escape_count += 1,
                        Some(_) => continue 'cand, // two distinct harmful escapes
                    }
                }
            }
        }
        let Some(v) = escaped else {
            return true; // plain warded
        };
        if escape_count > 1 {
            continue 'cand;
        }
        // Condition (3): the atom containing ?V has all other vars harmless.
        let ok = rule.body_pos.iter().enumerate().all(|(j, b)| {
            if i == j || !b.vars().any(|x| x == v) {
                return true;
            }
            b.vars()
                .filter(|&x| x != v)
                .all(|x| classes.harmless.contains(&x))
        });
        if ok {
            return true;
        }
    }
    false
}

/// Classifies `program` against every language class of the paper.
///
/// Per §4.2 and §6.1, all guardedness notions are evaluated on
/// `ex(Π)⁺` — the program with negated atoms and constraints removed.
pub fn classify_program(program: &Program) -> ProgramClassification {
    let positive = program.positive_part();
    let affected = affected_positions(&positive);
    let stratified = crate::stratify(program).is_ok();
    let mut report = ProgramClassification {
        per_rule: Vec::with_capacity(program.rules.len()),
        stratified,
        plain_datalog: true,
        guarded: true,
        weakly_guarded: true,
        frontier_guarded: true,
        nearly_frontier_guarded: true,
        weakly_frontier_guarded: true,
        warded: true,
        warded_minimal_interaction: true,
        grounded_negation: true,
        violations: Vec::new(),
        affected,
    };

    for (idx, rule) in program.rules.iter().enumerate() {
        let classes = rule_variable_classes(rule, &report.affected);
        if rule.is_existential() {
            report.plain_datalog = false;
        }
        let body_vars = rule.body_pos_vars();
        let frontier = rule.frontier();

        if !some_atom_contains(rule, &body_vars) {
            report.guarded = false;
        }
        if !some_atom_contains(rule, &classes.harmful) {
            report.weakly_guarded = false;
            report
                .violations
                .push(format!("rule {idx} ({rule}) is not weakly guarded"));
        }
        let fg = some_atom_contains(rule, &frontier);
        if !fg {
            report.frontier_guarded = false;
        }
        if !fg && !body_vars.iter().all(|v| classes.harmless.contains(v)) {
            report.nearly_frontier_guarded = false;
        }
        if !some_atom_contains(rule, &classes.dangerous) {
            report.weakly_frontier_guarded = false;
            report.violations.push(format!(
                "rule {idx} ({rule}) is not weakly frontier-guarded: no body \
                 atom contains all dangerous variables {:?}",
                classes.dangerous
            ));
        }
        if find_ward(rule, &classes).is_none() {
            report.warded = false;
            report.violations.push(format!(
                "rule {idx} ({rule}) is not warded: no body atom contains the \
                 dangerous variables {:?} while sharing only harmless \
                 variables with the rest of the body",
                classes.dangerous
            ));
        }
        if !is_minimal_interaction(rule, &classes) {
            report.warded_minimal_interaction = false;
            report.violations.push(format!(
                "rule {idx} ({rule}) is not warded with minimal interaction"
            ));
        }
        for neg in &rule.body_neg {
            for t in &neg.terms {
                let grounded = match t {
                    Term::Const(_) => true,
                    Term::Var(v) => classes.harmless.contains(v),
                    Term::Null(_) => false,
                };
                if !grounded {
                    report.grounded_negation = false;
                    report.violations.push(format!(
                        "rule {idx} ({rule}): negated atom {neg} has \
                         non-grounded term {t}"
                    ));
                }
            }
        }
        report.per_rule.push(classes);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn vars(names: &[&str]) -> BTreeSet<VarId> {
        names.iter().map(|n| VarId::new(n)).collect()
    }

    /// Example 4.1: weakly-frontier-guarded but not weakly-guarded.
    #[test]
    fn example_4_1_classification() {
        let p = parse_program(
            "p(?X, ?Y), s(?Y, ?Z) -> exists ?W t(?Y, ?X, ?W).\n\
             t(?X, ?Y, ?Z) -> exists ?W p(?W, ?Z).\n\
             t(?X, ?Y, ?Z) -> s(?X, ?Y).",
        )
        .unwrap();
        let c = classify_program(&p);
        assert!(c.weakly_frontier_guarded);
        assert!(!c.weakly_guarded);
        assert!(!c.plain_datalog);
        assert!(c.is_triq_1_0());
    }

    #[test]
    fn plain_datalog_is_everything() {
        let p = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y).\n\
             e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).",
        )
        .unwrap();
        let c = classify_program(&p);
        assert!(c.plain_datalog);
        // Every Datalog program is trivially warded (§6.3, before Thm 6.7).
        assert!(c.warded && c.weakly_frontier_guarded && c.weakly_guarded);
        assert!(c.is_triq_lite_1_0());
        // Transitive closure is NOT frontier-guarded (no atom has X,Z
        // together) — the limitation §6.2 mentions.
        assert!(!c.frontier_guarded);
        // ...but nearly frontier-guarded: all variables are harmless.
        assert!(c.nearly_frontier_guarded);
    }

    #[test]
    fn variable_classes_example_6_10() {
        // ρ1 = s(?X,?Y,?Z) -> exists ?W s(?X,?Z,?W): affected = s[3] only?
        // ?Z occurs at s[3] (affected) only => harmful; propagated => dangerous.
        let p = parse_program(
            "s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).\n\
             s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).\n\
             t(?X) -> exists ?Z p(?X, ?Z).\n\
             p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).\n\
             r(?X, ?Y, ?Z) -> p(?X, ?Z).",
        )
        .unwrap();
        let c = classify_program(&p);
        assert!(
            c.warded,
            "Example 6.10's program is warded: {:?}",
            c.violations
        );
        let rho1 = &c.per_rule[0];
        assert_eq!(rho1.dangerous, vars(&["Z"]));
        assert!(rho1.harmless.contains(&VarId::new("X")));
    }

    #[test]
    fn warded_but_not_guarded_nor_frontier_guarded() {
        // The ward q(?X) holds dangerous ?X; p(?Y) is separate.
        let p = parse_program(
            "a(?X) -> exists ?Y q(?Y).\n\
             q(?X), b(?Y) -> exists ?Z q2(?X, ?Y, ?Z).",
        )
        .unwrap();
        let c = classify_program(&p);
        assert!(c.warded, "{:?}", c.violations);
        assert!(!c.guarded);
    }

    #[test]
    fn harmless_via_edb_occurrence_keeps_program_warded() {
        // ?Y also occurs at r[1], and r is an EDB predicate, so r[1] is not
        // affected and ?Y is harmless: the program is warded.
        let p = parse_program(
            "a(?X) -> exists ?Y q(?X, ?Y).\n\
             q(?X, ?Y), r(?Y, ?U) -> exists ?Z q(?Y, ?Z).",
        )
        .unwrap();
        let c = classify_program(&p);
        assert!(c.warded, "{:?}", c.violations);
    }

    #[test]
    fn non_warded_due_to_harmful_sharing_is_minimal_interaction() {
        // ?Y is harmful in rule 3 (both e[2] and f[1] are affected) and
        // dangerous (propagated to the head). Every candidate ward shares
        // the harmful ?Y with the rest of the body -> not warded; but the
        // single escape obeys "minimal interaction" (§6.4), and the rule is
        // still weakly-frontier-guarded (TriQ 1.0).
        let p = parse_program(
            "p(?X) -> exists ?Y e(?X, ?Y).\n\
             e(?X, ?Y) -> f(?Y).\n\
             e(?X, ?Y), f(?Y) -> g(?Y).",
        )
        .unwrap();
        let c = classify_program(&p);
        assert!(!c.warded);
        assert!(c.weakly_frontier_guarded);
        assert!(c.warded_minimal_interaction);
        assert!(!c.is_triq_lite_1_0());
        assert!(c.is_triq_1_0());
    }

    #[test]
    fn minimal_interaction_rejects_double_escape() {
        // ?Y escapes the candidate ward twice (f(?Y) and h(?Y)).
        let p = parse_program(
            "p(?X) -> exists ?Y e(?X, ?Y).\n\
             e(?X, ?Y) -> f(?Y).\n\
             e(?X, ?Y) -> h(?Y).\n\
             e(?X, ?Y), f(?Y), h(?Y) -> g(?Y).",
        )
        .unwrap();
        let c = classify_program(&p);
        assert!(!c.warded);
        assert!(!c.warded_minimal_interaction);
        assert!(c.weakly_frontier_guarded);
    }

    #[test]
    fn grounded_negation_check() {
        // ?Y harmful and negated -> not grounded.
        let ok = parse_program(
            "a(?X) -> exists ?Y q(?X, ?Y).\n\
             a(?X), !b(?X) -> c(?X).",
        )
        .unwrap();
        assert!(classify_program(&ok).grounded_negation);
        let bad = parse_program(
            "a(?X) -> exists ?Y q(?X, ?Y).\n\
             q(?X, ?Y), !q2(?Y) -> c(?X).\n\
             q2(?U) -> q3(?U).",
        )
        .unwrap();
        // q[2] affected => ?Y harmful in rule 2 => negation not grounded.
        assert!(!classify_program(&bad).grounded_negation);
    }

    #[test]
    fn guarded_single_atom_bodies() {
        let p = parse_program("p(?X, ?Y) -> exists ?Z p(?Y, ?Z).").unwrap();
        let c = classify_program(&p);
        assert!(c.guarded && c.weakly_guarded && c.warded);
        assert!(c.frontier_guarded);
    }
}
