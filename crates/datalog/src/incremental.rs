//! Incremental materialization: delta-chase insertions and
//! delete-and-rederive (DRed) deletions over the columnar store.
//!
//! A [`MaterializedView`] keeps a chase fixpoint `Π(D)` **alive** across
//! mutations of the extensional database `D`. Instead of discarding the
//! materialization and re-running the chase whenever a fact arrives or
//! retracts, [`MaterializedView::apply`] maintains it:
//!
//! * **Insertions** resume the semi-naive chase from a fresh frontier:
//!   the new EDB atoms get ids above the previous watermark and every
//!   stratum re-runs with its delta window pinned there
//!   ([`crate::ChaseRunner`]'s compiled rules are reused verbatim, and
//!   the retained skolem memo guarantees existential rules re-fire onto
//!   the *same* nulls a from-scratch chase would memoize).
//! * **Deletions** use DRed: the transitive support cone of the deleted
//!   atoms — computed from the recorded provenance through a
//!   [`DependencyIndex`] — is *over-deleted* (tombstoned), then each
//!   over-deleted tuple is **rederived** stratum by stratum if some
//!   surviving match still produces it; rederived atoms get fresh ids,
//!   re-entering the delta frontier so their dependents are rebuilt.
//! * **Stratified negation** is maintained from both sides. An inserted
//!   atom of a negated predicate may invalidate higher-stratum atoms:
//!   each rule with `!p(…)` is pivoted over the inserted `p`-tuples and
//!   the matched heads are over-deleted (then rederived if another match
//!   survives). A deleted atom of a negated predicate may *enable*
//!   matches the old instance blocked: the same pivot over the deleted
//!   tuples derives them. Strata are swept in ascending order so every
//!   negation always reads a settled lower stratum, exactly like the
//!   from-scratch chase.
//!
//! # The labeled-null escape hatch
//!
//! DRed over existentials is unsound in general: deleting one atom that
//! shares an invented null with surviving atoms (multi-head existential
//! rules), or whose cone reaches null-bearing atoms, can strand or
//! duplicate skolem witnesses. When a deletion's support cone touches
//! labeled nulls, contains an atom derived by an existential rule, or
//! over-deletes a tuple only an existential rule's head could rederive,
//! the view falls back to a **full rebuild** from its (already mutated)
//! base database — the same escape hatch as an explicit
//! `Session::invalidate()`. Insertions fall back only in one corner:
//! when an inserted tuple contradicts the negated subgoal of an
//! *existential* rule (whose victims cannot be re-instantiated without
//! their nulls); insertions into a null-free program never fall back.
//!
//! Tombstoned atoms keep their ids (the semi-naive windows rely on id
//! monotonicity); when they accumulate past a threshold the view
//! compacts its instance ([`Instance::compacted`]) and rebuilds the
//! dependency index.
//!
//! # Snapshot isolation
//!
//! The maintained outcome lives behind an [`Arc`]:
//! [`MaterializedView::snapshot`] hands out immutable handles at the
//! cost of a refcount bump, and `apply` mutates through
//! [`Arc::make_mut`] — copy-on-write exactly when a snapshot is alive,
//! in-place when nobody is looking. A new fixpoint becomes visible only
//! when the caller re-reads `outcome()`/`snapshot()` after a completed
//! `apply`; readers holding older snapshots are never blocked and never
//! observe a half-applied delta. The concurrent serving layer
//! (`triq::SharedSession`, `triq-server`) is built directly on this
//! contract: a single writer applies deltas and atomically republishes
//! the fresh snapshot handles, N readers clone them lock-free.

use crate::chase::{
    instantiate_into, resolve, solve, CAtom, CTerm, ChaseOutcome, ChaseRunner, CompiledRule,
    Engine, SkolemMemo,
};
use crate::instance::{AtomId, Database, Instance, Relation};
use crate::planner::RulePlan;
use crate::proof::DependencyIndex;
use crate::Program;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use triq_common::{Delta, Result, Symbol, TermId};
use triq_obs::{Phase, Timer};

/// Cumulative counters of a [`MaterializedView`]'s maintenance work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Deltas applied (including ones that fell back to a rebuild).
    pub deltas_applied: usize,
    /// Atoms over-deleted by DRed (transitive support cones and
    /// negation victims; the explicitly deleted EDB facts not included).
    pub atoms_overdeleted: u64,
    /// Over-deleted atoms that survived rederivation.
    pub atoms_rederived: u64,
    /// Genuinely new atoms derived by incremental insertion frontiers.
    pub atoms_inserted: u64,
    /// Deltas that fell back to a full re-chase (null entanglement).
    pub full_rebuilds: usize,
    /// Times the instance was compacted to shed tombstones.
    pub compactions: usize,
}

/// What one [`MaterializedView::apply`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Atoms over-deleted (support cones + negation victims).
    pub overdeleted: usize,
    /// Over-deleted atoms restored by rederivation.
    pub rederived: usize,
    /// New atoms derived (beyond the inserted EDB facts themselves).
    pub inserted: usize,
    /// True iff the delta was answered by a full re-chase instead of
    /// incremental maintenance.
    pub full_rebuild: bool,
    /// Join plans the resumed chase compiled from live statistics.
    pub plans_compiled: usize,
    /// Plans recomputed because cardinalities drifted during the apply.
    pub replans: usize,
    /// Joint hash indexes (re-)built during the apply.
    pub index_builds: usize,
    /// Probes served by hash indexes during the apply.
    pub index_probes: u64,
    /// Morsel match batches collected in parallel during the apply.
    pub morsel_batches: u64,
    /// Rows screened by the vectorized column kernels during the apply.
    pub kernel_filter_rows: u64,
}

/// Head predicate → `(stratum, rule index)` of every rule that can
/// derive it, ascending by stratum: the rederivation schedule.
type Derivers = HashMap<Symbol, Vec<(usize, usize)>>;

/// The program-derived predicate sets a view's maintenance machinery
/// consults: existential head predicates, negated predicates, and the
/// rederivation schedule. Shared between the chasing constructor
/// ([`MaterializedView::new`]) and the snapshot-restoring one
/// ([`MaterializedView::restore`]).
fn program_sets(runner: &ChaseRunner) -> (HashSet<Symbol>, HashSet<Symbol>, Derivers) {
    let program = runner.program();
    let mut exist_head_preds = HashSet::new();
    let mut negated_preds = HashSet::new();
    let mut derivers: Derivers = HashMap::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let stratum = runner.stratification().rule_stratum[ri];
        for neg in &rule.body_neg {
            negated_preds.insert(neg.pred);
        }
        for head in &rule.head {
            if rule.is_existential() {
                exist_head_preds.insert(head.pred);
            }
            let entry = derivers.entry(head.pred).or_default();
            if !entry.contains(&(stratum, ri)) {
                entry.push((stratum, ri));
            }
        }
    }
    for list in derivers.values_mut() {
        list.sort_unstable();
    }
    (exist_head_preds, negated_preds, derivers)
}

/// A maintained chase fixpoint: `Π(D)` plus everything needed to update
/// it in place — the compiled [`ChaseRunner`], the base database, the
/// retained skolem memo, and the reverse-provenance directory.
///
/// The outcome is held behind an [`Arc`] so executions can snapshot it
/// cheaply; a mutation clones only if a snapshot is still alive
/// (copy-on-write isolation).
#[derive(Clone, Debug)]
pub struct MaterializedView {
    runner: ChaseRunner,
    base: Database,
    outcome: Arc<ChaseOutcome>,
    skolem: SkolemMemo,
    /// Stats-driven join plans retained across applies (like the skolem
    /// memo): each resumed chase re-plans only on cardinality drift
    /// instead of from scratch.
    plans: Vec<RulePlan>,
    deps: DependencyIndex,
    stats: MaintenanceStats,
    /// Predicates occurring in the head of some existential rule — an
    /// over-deleted tuple of such a predicate forces the rebuild
    /// fallback (rederivation would have to invent nulls).
    exist_head_preds: HashSet<Symbol>,
    /// Predicates occurring under negation in some rule body. Only their
    /// tuples feed the negation pivots, so per-atom change bookkeeping is
    /// skipped entirely for everything else (a negation-free program pays
    /// nothing per derived atom).
    negated_preds: HashSet<Symbol>,
    derivers: Derivers,
    /// Set when an apply failed *and* the recovery rebuild failed too:
    /// the held outcome no longer reflects the base. The next apply
    /// retries the rebuild before doing anything else (so the
    /// "materialized base fact" invariant is restored), and clears the
    /// flag on success.
    poisoned: bool,
}

/// Compaction trigger: tombstones both exceed this count and outnumber
/// half the live atoms.
const COMPACT_MIN_DEAD: usize = 256;

impl MaterializedView {
    /// Chases `db` with the runner's program and retains the full
    /// post-chase state for incremental maintenance.
    pub fn new(runner: ChaseRunner, db: Database) -> Result<MaterializedView> {
        // Same fixpoint routine as `ChaseRunner::run` — the from-scratch
        // oracle the differential suites compare against — except the
        // engine is kept so its skolem memo survives.
        let mut engine = crate::chase::chase_to_fixpoint(
            runner.compiled(),
            runner.compiled_constraints(),
            runner.strata_rules(),
            runner.initial_plans(),
            db.to_instance(),
            runner.config(),
            runner.recorder(),
        )?;
        let inconsistent = engine.check_constraints();
        let (instance, stats, skolem, plans) = engine.into_parts();
        let deps = DependencyIndex::from_instance(&instance);
        let (exist_head_preds, negated_preds, derivers) = program_sets(&runner);
        Ok(MaterializedView {
            runner,
            base: db,
            outcome: Arc::new(ChaseOutcome {
                instance,
                inconsistent,
                stats,
            }),
            skolem,
            plans,
            deps,
            stats: MaintenanceStats::default(),
            exist_head_preds,
            negated_preds,
            derivers,
            poisoned: false,
        })
    }

    /// Reconstructs a view from persisted state without chasing: the
    /// outcome and skolem memo come from a snapshot, while everything
    /// derived from them — reverse provenance, the program's predicate
    /// sets, join plans — is rebuilt in place (see [`crate::persist`]).
    /// The caller guarantees `outcome` is the fixpoint of `base` under
    /// the runner's program; a mismatched pair yields a view whose
    /// applies would violate the "every base fact is materialized"
    /// invariant.
    pub(crate) fn restore(
        runner: ChaseRunner,
        base: Database,
        outcome: Arc<ChaseOutcome>,
        skolem: SkolemMemo,
    ) -> MaterializedView {
        let deps = DependencyIndex::from_instance(&outcome.instance);
        let (exist_head_preds, negated_preds, derivers) = program_sets(&runner);
        let plans = runner.initial_plans().to_vec();
        MaterializedView {
            runner,
            base,
            outcome,
            skolem,
            plans,
            deps,
            stats: MaintenanceStats::default(),
            exist_head_preds,
            negated_preds,
            derivers,
            poisoned: false,
        }
    }

    /// The retained skolem memo (persistence codec).
    pub(crate) fn skolem_ref(&self) -> &SkolemMemo {
        &self.skolem
    }

    /// True iff a failed apply (and failed recovery rebuild) left the
    /// held outcome out of sync with the base. Poisoned views are
    /// skipped by persistence snapshots.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The maintained chase outcome (shared snapshot).
    pub fn outcome(&self) -> &Arc<ChaseOutcome> {
        &self.outcome
    }

    /// An owned snapshot handle of the current fixpoint.
    ///
    /// This is the **snapshot-isolation primitive** the serving layer is
    /// built on: the returned [`Arc`] is immutable and detached from the
    /// view's lifecycle. A subsequent [`MaterializedView::apply`] never
    /// mutates an outcome that is still referenced elsewhere —
    /// maintenance goes through [`Arc::make_mut`], which copies on write
    /// exactly when a snapshot is alive — so a reader can keep answering
    /// from its snapshot for as long as it likes while the writer
    /// installs new fixpoints behind it. Concretely:
    ///
    /// * cost: one atomic refcount bump, no locks, no data copy;
    /// * isolation: the snapshot observes the fixpoint as of the last
    ///   completed `apply`, never a half-applied delta (maintenance
    ///   replaces the view's own handle only after the sweep finishes);
    /// * liveness: holding a snapshot across an `apply` makes that one
    ///   apply pay a copy-on-write clone of the instance — drop
    ///   snapshots when done, don't cache them indefinitely.
    pub fn snapshot(&self) -> Arc<ChaseOutcome> {
        self.outcome.clone()
    }

    /// The maintained instance.
    pub fn instance(&self) -> &Instance {
        &self.outcome.instance
    }

    /// The current extensional database (base facts after all deltas).
    pub fn database(&self) -> &Database {
        &self.base
    }

    /// The compiled runner this view executes.
    pub fn runner(&self) -> &ChaseRunner {
        &self.runner
    }

    /// Cumulative maintenance counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Applies a batch of extensional insertions and deletions,
    /// maintaining the fixpoint incrementally (or falling back to a full
    /// re-chase when a deletion is entangled with labeled nulls).
    /// Deletes are processed before inserts; redundant operations are
    /// no-ops.
    ///
    /// On `Err` (resource exhaustion, even via the internal rebuild
    /// fallback) the maintained state could not be brought to the target:
    /// the view is *poisoned* — `outcome()` no longer reflects the base
    /// until a later `apply` (which retries the rebuild first) or an
    /// explicit [`MaterializedView::full_rebuild`] succeeds. Callers that
    /// cannot retry should discard the view. Re-applying the same delta
    /// is a no-op against the already-mutated base.
    pub fn apply(&mut self, delta: &Delta) -> Result<DeltaSummary> {
        self.stats.deltas_applied += 1;
        if self.poisoned {
            // The held outcome does not reflect the base (a previous
            // apply failed twice), so the incremental machinery cannot
            // run. Fold the delta into the base directly and retry the
            // rebuild — a shrinking delta may be exactly what brings the
            // fixpoint back inside the budget.
            for f in &delta.deletes {
                self.base.remove_row(f.pred, &f.args);
            }
            for f in &delta.inserts {
                self.base.add_row(f.pred, &f.args);
            }
            return self.full_rebuild();
        }
        // Mutate the base EDB first, keeping only the effective part of
        // the delta. `self.base` is the rebuild substrate, so after this
        // point a fallback always recomputes the *target* state.
        let mut del_ids: Vec<AtomId> = Vec::new();
        for f in &delta.deletes {
            if self.base.remove_row(f.pred, &f.args) {
                let key: Vec<TermId> = f.args.iter().copied().map(TermId::from_const).collect();
                let id = self
                    .outcome
                    .instance
                    .find_ids(f.pred, &key)
                    .expect("every base fact is materialized");
                del_ids.push(id);
            }
        }
        let mut eff_inserts: Vec<(Symbol, Vec<TermId>)> = Vec::new();
        for f in &delta.inserts {
            if self.base.add_row(f.pred, &f.args) {
                let key = f.args.iter().copied().map(TermId::from_const).collect();
                eff_inserts.push((f.pred, key));
            }
        }
        if del_ids.is_empty() && eff_inserts.is_empty() {
            return Ok(DeltaSummary::default());
        }
        match self.apply_incremental(del_ids, eff_inserts) {
            Ok(Some(summary)) => Ok(summary),
            Ok(None) => self.full_rebuild(),
            // A mid-apply error (typically `ResourceExhausted` — note the
            // atom budget counts tombstones, so maintenance churn can
            // transiently exceed a budget the from-scratch chase fits in)
            // leaves the in-flight instance and memo abandoned. The base
            // already reflects the target state, so a full rebuild either
            // recovers a correct view or fails for the same reason a
            // from-scratch chase would; only in the latter case is the
            // view unusable, and the error tells the caller to discard it.
            Err(_) => self.full_rebuild(),
        }
    }

    /// Discards the maintained state and re-chases the base database —
    /// the explicit escape hatch, and the automatic fallback for
    /// null-entangled deletions. On failure the view stays poisoned (see
    /// [`MaterializedView::apply`]); on success it is healthy again.
    pub fn full_rebuild(&mut self) -> Result<DeltaSummary> {
        match MaterializedView::new(self.runner.clone(), self.base.clone()) {
            Ok(rebuilt) => {
                // The rebuild's own chase planned and indexed from
                // scratch; surface that work in the summary so the
                // engine counters don't go flat exactly on the degraded
                // path an operator would be diagnosing.
                let run = rebuilt.outcome.stats;
                self.outcome = rebuilt.outcome;
                self.skolem = rebuilt.skolem;
                self.plans = rebuilt.plans;
                self.deps = rebuilt.deps;
                self.stats.full_rebuilds += 1;
                self.poisoned = false;
                Ok(DeltaSummary {
                    full_rebuild: true,
                    plans_compiled: run.plans_compiled,
                    replans: run.replans,
                    index_builds: run.index_builds,
                    index_probes: run.index_probes,
                    morsel_batches: run.morsel_batches,
                    kernel_filter_rows: run.kernel_filter_rows,
                    ..DeltaSummary::default()
                })
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The incremental path. Returns `Ok(None)` when the delta turned
    /// out to be null-entangled and the caller must rebuild instead (the
    /// partially mutated state is abandoned; only `self.base` matters to
    /// the rebuild).
    fn apply_incremental(
        &mut self,
        del_ids: Vec<AtomId>,
        eff_inserts: Vec<(Symbol, Vec<TermId>)>,
    ) -> Result<Option<DeltaSummary>> {
        let program = self.runner.program();
        // Upfront entanglement check on the EDB deletion cone.
        let cone = {
            let instance = &self.outcome.instance;
            let cone = self.deps.cone(&del_ids);
            if del_ids
                .iter()
                .chain(cone.iter())
                .any(|&id| is_entangled(program, &self.exist_head_preds, instance, id))
            {
                return Ok(None);
            }
            cone
        };

        let outcome = Arc::make_mut(&mut self.outcome);
        let instance = std::mem::take(&mut outcome.instance);
        let apply_start = instance.len() as AtomId;
        let mut summary = DeltaSummary::default();
        let mut sweep = Sweep::new(&self.negated_preds);

        let rec = self.runner.recorder();
        let mut engine = Engine::new(
            self.runner.compiled(),
            self.runner.compiled_constraints(),
            std::mem::take(&mut self.plans),
            instance,
            self.runner.config(),
            rec,
        );
        engine.set_skolem(std::mem::take(&mut self.skolem));

        // Phase 0a: tombstone the deleted EDB facts and their support
        // cones (checked non-entangled above).
        {
            let _t = Timer::start(rec, Phase::Overdelete);
            for &id in &del_ids {
                sweep.tombstone(&mut engine.instance, &self.derivers, id, false);
            }
            summary.overdeleted +=
                sweep.tombstone_many(&mut engine.instance, &self.derivers, &cone);
        }

        restore_base_facts(&self.base, &mut engine, &mut sweep, &mut summary);

        // Phase 0b: seed the inserted EDB facts above the watermark.
        for (pred, key) in &eff_inserts {
            let (_, fresh) = engine.instance.insert_ids(*pred, key, None);
            if fresh {
                sweep.note_inserted(*pred, key.clone());
            }
        }

        // The stratum sweep. Lower strata settle before higher ones read
        // them (through negation or otherwise), mirroring the chase. The
        // sweep can *re-enter* an earlier stratum: a multi-head rule is
        // placed at the max of its head strata, so a negation victim
        // over-deleted at stratum `s` may belong to a predicate of a
        // lower stratum — its derivers (and the rules its disappearance
        // un-blocks) live below `s` and must run again. Each re-entry is
        // driven by freshly tombstoned atoms, so the loop terminates.
        let n_strata = self.runner.strata_rules().len();
        let mut stratum = 0usize;
        while stratum < n_strata {
            let rules_s = &self.runner.strata_rules()[stratum];
            if rules_s.is_empty() {
                stratum += 1;
                continue;
            }

            // (a) Negation victims: atoms whose `!p(…)` subgoal is now
            // contradicted by an inserted `p`-tuple are over-deleted
            // (with their cones); rederivation below restores any that
            // another match still supports — and base facts come back
            // unconditionally.
            if !sweep.inserted_by_pred.is_empty() {
                let victims = overdelete_victims(
                    program,
                    self.runner.compiled(),
                    self.runner.stratification(),
                    &self.exist_head_preds,
                    &self.derivers,
                    &mut self.deps,
                    &mut engine,
                    rules_s,
                    &mut sweep,
                );
                let restart = match victims {
                    Some((n, restart)) => {
                        summary.overdeleted += n;
                        restart
                    }
                    None => return Ok(None), // entangled victim cone
                };
                restore_base_facts(&self.base, &mut engine, &mut sweep, &mut summary);
                if let Some(target) = restart {
                    if target < stratum {
                        stratum = target;
                        continue;
                    }
                }
            }
            let stratum_mark = engine.instance.len() as AtomId;

            // (b) Rederivation: over-deleted tuples derivable by a rule
            // of this stratum from surviving atoms come back (with fresh
            // ids, so their dependents rebuild through the windows).
            {
                let _t = Timer::start(rec, Phase::Rederive);
                rederive_pending(
                    self.runner.compiled(),
                    &self.derivers,
                    &mut engine,
                    stratum,
                    &sweep,
                )?;
            }

            // (c) Deletion-enabled matches: rules negating a predicate
            // that lost tuples are pivoted over exactly those tuples.
            if !sweep.deleted_by_pred.is_empty() {
                fire_negation_unblocked(self.runner.compiled(), &mut engine, rules_s, &sweep)?;
            }

            // (d) Semi-naive propagation of everything new this apply.
            {
                let _span = triq_obs::span(rec, "stratum", stratum as u64);
                let _t = Timer::start(rec, Phase::ChaseStratum);
                engine.run_stratum_from(rules_s, apply_start)?;
            }

            // (e) Bookkeeping for the atoms this stratum appended.
            let end = engine.instance.len() as AtomId;
            self.deps.extend_to(&engine.instance);
            for id in stratum_mark..end {
                if !engine.instance.is_live(id) {
                    continue;
                }
                let pred = engine.instance.pred_of(id);
                // Negation-free predicates with nothing over-deleted pay
                // no per-atom bookkeeping (the common insert-only case).
                if sweep.overdeleted.is_empty() && !sweep.negated.contains(&pred) {
                    summary.inserted += 1;
                    continue;
                }
                let key = engine.instance.key_of(id);
                if sweep.was_overdeleted(pred, &key) {
                    summary.rederived += 1;
                } else {
                    summary.inserted += 1;
                }
                sweep.note_inserted(pred, key);
            }
            stratum += 1;
        }

        // Constraints see the final instance, as in a from-scratch run.
        outcome.inconsistent = !program.constraints.is_empty() && engine.check_constraints();

        let (instance, run_stats, skolem, plans) = engine.into_parts();
        outcome.stats.derived += run_stats.derived;
        outcome.stats.rounds += run_stats.rounds;
        outcome.stats.nulls += run_stats.nulls;
        outcome.stats.probes += run_stats.probes;
        outcome.stats.parallel_strata += run_stats.parallel_strata;
        outcome.stats.plans_compiled += run_stats.plans_compiled;
        outcome.stats.replans += run_stats.replans;
        outcome.stats.index_builds += run_stats.index_builds;
        outcome.stats.index_probes += run_stats.index_probes;
        outcome.stats.morsel_batches += run_stats.morsel_batches;
        outcome.stats.kernel_filter_rows += run_stats.kernel_filter_rows;
        outcome.stats.truncated |= run_stats.truncated;
        outcome.instance = instance;
        self.skolem = skolem;
        self.plans = plans;
        summary.plans_compiled = run_stats.plans_compiled;
        summary.replans = run_stats.replans;
        summary.index_builds = run_stats.index_builds;
        summary.index_probes = run_stats.index_probes;
        summary.morsel_batches = run_stats.morsel_batches;
        summary.kernel_filter_rows = run_stats.kernel_filter_rows;

        self.stats.atoms_overdeleted += summary.overdeleted as u64;
        self.stats.atoms_rederived += summary.rederived as u64;
        self.stats.atoms_inserted += summary.inserted as u64;

        self.maybe_compact();
        Ok(Some(summary))
    }

    /// Sheds tombstones once they dominate: compacts the instance to
    /// dense ids and rebuilds the dependency index. Null ids (and the
    /// skolem memo keyed on them) survive compaction unchanged.
    fn maybe_compact(&mut self) {
        if self.outcome.instance.dead_len() < COMPACT_MIN_DEAD
            || self.outcome.instance.dead_len() * 2 < self.outcome.instance.live_len()
        {
            return;
        }
        let outcome = Arc::make_mut(&mut self.outcome);
        let (compacted, _) = outcome.instance.compacted();
        outcome.instance = compacted;
        self.deps = DependencyIndex::from_instance(&outcome.instance);
        self.stats.compactions += 1;
    }
}

/// Per-apply mutable tracking shared across the stratum sweep.
struct Sweep<'a> {
    /// Predicates occurring under negation — the only ones whose change
    /// tuples the pivots ever read; everything else skips bookkeeping.
    negated: &'a HashSet<Symbol>,
    /// Tuples inserted this apply (EDB seeds, rederivations and derived
    /// atoms), by **negated** predicate — the insertion side of the
    /// negation pivots.
    inserted_by_pred: HashMap<Symbol, Vec<Vec<TermId>>>,
    /// Tuples tombstoned this apply, by **negated** predicate — the
    /// deletion side.
    deleted_by_pred: HashMap<Symbol, Vec<Vec<TermId>>>,
    /// Keys over-deleted this apply (to classify re-inserted atoms as
    /// rederivations rather than new derivations).
    overdeleted: HashSet<(Symbol, Box<[TermId]>)>,
    /// Over-deleted tuples awaiting a rederivation attempt (each is
    /// tried at every stratum holding a deriving rule).
    pending: Vec<(Symbol, Vec<TermId>)>,
    /// Tombstoned tuples not yet checked against the base database. A
    /// tuple can be an EDB fact *and* carry a derivation (the store
    /// deduplicates, so a later database insert of an already-derived
    /// tuple leaves the derivation in place); when DRed over-deletes it,
    /// membership in the base re-asserts it unconditionally.
    restore_check: Vec<(Symbol, Vec<TermId>)>,
}

impl<'a> Sweep<'a> {
    fn new(negated: &'a HashSet<Symbol>) -> Sweep<'a> {
        Sweep {
            negated,
            inserted_by_pred: HashMap::new(),
            deleted_by_pred: HashMap::new(),
            overdeleted: HashSet::new(),
            pending: Vec::new(),
            restore_check: Vec::new(),
        }
    }

    /// Records an inserted tuple for the negation pivots (negated
    /// predicates only — no other predicate is ever read back).
    fn note_inserted(&mut self, pred: Symbol, key: Vec<TermId>) {
        if self.negated.contains(&pred) {
            self.inserted_by_pred.entry(pred).or_default().push(key);
        }
    }

    /// Tombstones one atom, recording its tuple for the negation pivots
    /// and (when a rule could rederive it) the rederivation schedule.
    /// Returns `true` if the atom was live.
    fn tombstone(
        &mut self,
        instance: &mut Instance,
        derivers: &Derivers,
        id: AtomId,
        derived: bool,
    ) -> bool {
        if !instance.is_live(id) {
            return false;
        }
        let pred = instance.pred_of(id);
        let key = instance.key_of(id);
        instance.tombstone(id);
        if derived || derivers.contains_key(&pred) {
            self.overdeleted
                .insert((pred, key.clone().into_boxed_slice()));
        }
        if derivers.contains_key(&pred) {
            self.pending.push((pred, key.clone()));
        }
        self.restore_check.push((pred, key.clone()));
        if self.negated.contains(&pred) {
            self.deleted_by_pred.entry(pred).or_default().push(key);
        }
        true
    }

    /// Tombstones a cone of derived atoms, returning how many were live.
    fn tombstone_many(
        &mut self,
        instance: &mut Instance,
        derivers: &Derivers,
        ids: &[AtomId],
    ) -> usize {
        ids.iter()
            .filter(|&&id| self.tombstone(instance, derivers, id, true))
            .count()
    }

    fn was_overdeleted(&self, pred: Symbol, key: &[TermId]) -> bool {
        // Box the key only for the probe; the set is small per apply.
        !self.overdeleted.is_empty()
            && self
                .overdeleted
                .contains(&(pred, key.to_vec().into_boxed_slice()))
    }
}

/// Re-asserts every freshly tombstoned tuple that is (still) a base
/// fact: DRed may over-delete an atom whose tuple is both derived *and*
/// extensional (the store deduplicates them into one atom), but base
/// membership needs no derivation. Re-inserted facts get fresh ids, so
/// they rejoin the delta frontier and their dependents rebuild.
fn restore_base_facts(
    base: &Database,
    engine: &mut Engine<'_>,
    sweep: &mut Sweep<'_>,
    summary: &mut DeltaSummary,
) {
    let checks = std::mem::take(&mut sweep.restore_check);
    for (pred, key) in checks {
        if base.contains_ids(pred, &key) && !engine.instance.contains_ids(pred, &key) {
            engine.instance.insert_ids(pred, &key, None);
            summary.rederived += 1;
            sweep.note_inserted(pred, key);
        }
    }
}

/// True iff over-deleting `id` (or rederiving its tuple) would be
/// unsound without reasoning about labeled nulls.
fn is_entangled(
    program: &Program,
    exist_head_preds: &HashSet<Symbol>,
    instance: &Instance,
    id: AtomId,
) -> bool {
    if instance.depth(id) > 0 {
        return true; // the atom itself mentions nulls
    }
    if let Some(d) = instance.derivation(id) {
        if program.rules[d.rule].is_existential() {
            return true; // shares invented nulls with head siblings
        }
    }
    // A null-free tuple an existential rule could (re-)derive: the
    // rederivation check cannot fire such a rule soundly.
    exist_head_preds.contains(&instance.pred_of(id))
}

/// Over-deletes the heads of `rules_s` matches whose negated subgoal is
/// one of this apply's inserted tuples (plus their support cones).
/// Returns `(count, restart)` — the number of atoms over-deleted, plus
/// the minimum *predicate* stratum among them (a multi-head rule lifted
/// to the max of its head strata can victimize a lower-stratum
/// predicate; the sweep must re-enter that stratum so its derivers and
/// un-blocked consumers run again). `None` when a victim cone is
/// entangled with labeled nulls (caller must rebuild). Database atoms
/// are never victims — they hold regardless of rule matches.
#[allow(clippy::too_many_arguments)]
fn overdelete_victims(
    program: &Program,
    compiled: &[CompiledRule],
    strat: &crate::Stratification,
    exist_head_preds: &HashSet<Symbol>,
    derivers: &Derivers,
    deps: &mut DependencyIndex,
    engine: &mut Engine<'_>,
    rules_s: &[usize],
    sweep: &mut Sweep<'_>,
) -> Option<(usize, Option<usize>)> {
    let mut victims: Vec<AtomId> = Vec::new();
    let mut key_buf: Vec<TermId> = Vec::new();
    for &ri in rules_s {
        let rule = &compiled[ri];
        if rule.body_neg.is_empty() {
            continue;
        }
        for neg in &rule.body_neg {
            let Some(tuples) = sweep.inserted_by_pred.get(&neg.pred) else {
                continue;
            };
            if tuples.is_empty() {
                continue;
            }
            if program.rules[ri].is_existential() {
                // An inserted tuple contradicts this existential rule's
                // negated subgoal, and its head cannot be re-instantiated
                // from a match without the invented nulls — the victims
                // are unidentifiable here. Only this combination falls
                // back; inserts not touching the negated predicate stay
                // incremental.
                return None;
            }
            for key in tuples {
                let instance = &engine.instance;
                for_each_pivot_match(instance, rule, neg, key, |slots, _| {
                    for head in &rule.heads {
                        instantiate_into(head, slots, &mut key_buf);
                        if let Some(id) = instance.find_ids(head.pred, &key_buf) {
                            // Only atoms whose *recorded* support is this
                            // very rule are victims: a different recorded
                            // derivation (another rule, or a database
                            // fact) is untouched by this negation change
                            // — and not re-victimizing rederived atoms is
                            // what makes the re-entrant sweep terminate.
                            if instance.derivation(id).is_some_and(|d| d.rule == ri) {
                                victims.push(id);
                            }
                        }
                    }
                    true
                });
            }
        }
    }
    if victims.is_empty() {
        return Some((0, None));
    }
    victims.sort_unstable();
    victims.dedup();
    deps.extend_to(&engine.instance);
    let cone = deps.cone(&victims);
    if victims
        .iter()
        .chain(cone.iter())
        .filter(|&&id| engine.instance.is_live(id))
        .any(|&id| is_entangled(program, exist_head_preds, &engine.instance, id))
    {
        return None;
    }
    let mut n = 0usize;
    let mut restart: Option<usize> = None;
    for &id in victims.iter().chain(cone.iter()) {
        if !engine.instance.is_live(id) {
            continue;
        }
        let s = strat.stratum_of(engine.instance.pred_of(id));
        if sweep.tombstone(&mut engine.instance, derivers, id, true) {
            n += 1;
            restart = Some(restart.map_or(s, |r: usize| r.min(s)));
        }
    }
    Some((n, restart))
}

/// Tries to rederive every pending over-deleted tuple through the rules
/// of `stratum`; successes are inserted with their new derivation (and
/// fresh ids, making them part of the frontier).
fn rederive_pending(
    compiled: &[CompiledRule],
    derivers: &Derivers,
    engine: &mut Engine<'_>,
    stratum: usize,
    sweep: &Sweep<'_>,
) -> Result<()> {
    for (pred, key) in &sweep.pending {
        if engine.instance.contains_ids(*pred, key) {
            continue; // restored by an earlier stratum or propagation
        }
        let Some(rules) = derivers.get(pred) else {
            continue;
        };
        'rules: for &(s, ri) in rules {
            if s != stratum {
                continue;
            }
            let rule = &compiled[ri];
            debug_assert!(
                rule.exist_slots.is_empty(),
                "existential derivers force the rebuild fallback"
            );
            for head in &rule.heads {
                if head.pred != *pred || head.terms.len() != key.len() {
                    continue;
                }
                if let Some((mut slots, ids)) =
                    find_supporting_match(&engine.instance, rule, head, key)
                {
                    engine.apply(ri, &mut slots, &ids)?;
                    break 'rules;
                }
            }
        }
    }
    Ok(())
}

/// Fires the matches a deletion un-blocked: for each rule of the stratum
/// with a negated subgoal on a predicate that lost tuples, pivot the
/// negated atom over exactly those tuples and apply the resulting
/// matches (the negative-delta counterpart of the semi-naive window).
fn fire_negation_unblocked(
    compiled: &[CompiledRule],
    engine: &mut Engine<'_>,
    rules_s: &[usize],
    sweep: &Sweep<'_>,
) -> Result<()> {
    for &ri in rules_s {
        let rule = &compiled[ri];
        if rule.body_neg.is_empty() {
            continue;
        }
        let mut matches: Vec<(Vec<Option<TermId>>, Vec<AtomId>)> = Vec::new();
        for neg in &rule.body_neg {
            let Some(tuples) = sweep.deleted_by_pred.get(&neg.pred) else {
                continue;
            };
            for key in tuples {
                for_each_pivot_match(&engine.instance, rule, neg, key, |slots, ids| {
                    matches.push((slots.to_vec(), ids.to_vec()));
                    true
                });
            }
        }
        for (mut slots, ids) in matches {
            // Re-checks every negated subgoal against the current
            // instance — in particular the pivot tuple itself, which
            // blocks again if it was rederived meanwhile.
            if engine.check_negatives_and_builtins(ri, &slots) {
                engine.apply(ri, &mut slots, &ids)?;
            }
        }
    }
    Ok(())
}

/// Enumerates the matches of `rule`'s positive body under the binding
/// that unifies the negated atom `neg` with `key`, calling `on_match`
/// with (slots, chosen body ids) for each. Used for both directions of
/// the negation delta (victims of insertions, matches un-blocked by
/// deletions). Builtins and the remaining negated subgoals are **not**
/// checked here — callers filter.
fn for_each_pivot_match(
    instance: &Instance,
    rule: &CompiledRule,
    neg: &CAtom,
    key: &[TermId],
    mut on_match: impl FnMut(&[Option<TermId>], &[AtomId]) -> bool,
) {
    if neg.terms.len() != key.len() {
        return;
    }
    let mut slots: Vec<Option<TermId>> = vec![None; rule.n_slots];
    if !bind_atom(neg, key, &mut slots) {
        return;
    }
    let n = rule.body_pos.len();
    let rels: Vec<Option<&Relation>> = rule
        .body_pos
        .iter()
        .map(|a| instance.relation(a.pred, a.terms.len()))
        .collect();
    let cap = instance.len() as AtomId;
    let ranges: Vec<(AtomId, AtomId)> = vec![(0, cap); n];
    let mut chosen: Vec<AtomId> = vec![0; n];
    let mut solved: Vec<bool> = vec![false; n];
    let mut probes = 0u64;
    solve(
        instance,
        &rule.body_pos,
        &rels,
        &ranges,
        &mut slots,
        &mut chosen,
        &mut solved,
        0,
        &mut probes,
        &mut |s, ids| on_match(s, ids),
    );
}

/// Unifies a compiled atom pattern with an encoded tuple, binding free
/// slots. Returns `false` (possibly leaving `slots` partially bound —
/// callers use fresh slot vectors) on mismatch.
fn bind_atom(atom: &CAtom, key: &[TermId], slots: &mut [Option<TermId>]) -> bool {
    debug_assert_eq!(atom.terms.len(), key.len());
    for (i, &t) in atom.terms.iter().enumerate() {
        match t {
            CTerm::Fixed(v) => {
                if v != key[i] {
                    return false;
                }
            }
            CTerm::Slot(s) => match slots[s as usize] {
                Some(b) => {
                    if b != key[i] {
                        return false;
                    }
                }
                None => slots[s as usize] = Some(key[i]),
            },
        }
    }
    true
}

/// Searches for one match of `rule`'s positive body that instantiates
/// `head` to exactly `key`, with builtins and negated subgoals checked
/// inline against `instance`. Returns the full slot assignment and the
/// matched body ids.
fn find_supporting_match(
    instance: &Instance,
    rule: &CompiledRule,
    head: &CAtom,
    key: &[TermId],
) -> Option<(Vec<Option<TermId>>, Vec<AtomId>)> {
    let mut slots: Vec<Option<TermId>> = vec![None; rule.n_slots];
    if !bind_atom(head, key, &mut slots) {
        return None;
    }
    let n = rule.body_pos.len();
    let rels: Vec<Option<&Relation>> = rule
        .body_pos
        .iter()
        .map(|a| instance.relation(a.pred, a.terms.len()))
        .collect();
    let cap = instance.len() as AtomId;
    let ranges: Vec<(AtomId, AtomId)> = vec![(0, cap); n];
    let mut chosen: Vec<AtomId> = vec![0; n];
    let mut solved: Vec<bool> = vec![false; n];
    let mut probes = 0u64;
    let mut found: Option<(Vec<Option<TermId>>, Vec<AtomId>)> = None;
    let mut neg_buf: Vec<TermId> = Vec::new();
    solve(
        instance,
        &rule.body_pos,
        &rels,
        &ranges,
        &mut slots,
        &mut chosen,
        &mut solved,
        0,
        &mut probes,
        &mut |s, ids| {
            for &b in &rule.builtins {
                if !Engine::builtin_holds(b, s) {
                    return true; // keep searching
                }
            }
            for neg in &rule.body_neg {
                neg_buf.clear();
                neg_buf.extend(
                    neg.terms
                        .iter()
                        .map(|&t| resolve(t, s).expect("negated subgoals are safe")),
                );
                if instance.contains_ids(neg.pred, &neg_buf) {
                    return true;
                }
            }
            found = Some((s.to_vec(), ids.to_vec()));
            false
        },
    );
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, ChaseConfig};
    use triq_common::{intern, Term};

    fn view(program: &str, facts: &[(&str, &[&str])]) -> MaterializedView {
        let p = parse_program(program).unwrap();
        let runner = ChaseRunner::new(p, ChaseConfig::default()).unwrap();
        let mut db = Database::new();
        for (pred, args) in facts {
            db.add_fact(pred, args);
        }
        MaterializedView::new(runner, db).unwrap()
    }

    fn assert_matches_scratch(v: &MaterializedView) {
        let scratch = v.runner().run(v.database()).unwrap();
        assert_eq!(scratch.inconsistent, v.outcome().inconsistent);
        let got: std::collections::BTreeSet<String> =
            v.instance().iter().map(|(_, a)| a.to_string()).collect();
        let want: std::collections::BTreeSet<String> = scratch
            .instance
            .iter()
            .map(|(_, a)| a.to_string())
            .collect();
        assert_eq!(got, want);
    }

    const TC: &str = "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).";

    #[test]
    fn insert_resumes_the_chase() {
        let mut v = view(TC, &[("e", &["a", "b"])]);
        assert_eq!(v.instance().live_len(), 2);
        let s = v.apply(&Delta::new().insert("e", &["b", "c"])).unwrap();
        assert!(!s.full_rebuild);
        assert_eq!(
            s.inserted, 2,
            "t(b,c) and t(a,c) derived beyond the EDB fact"
        );
        assert_matches_scratch(&v);
        // Redundant insert: nothing happens.
        let s = v.apply(&Delta::new().insert("e", &["b", "c"])).unwrap();
        assert_eq!(s, DeltaSummary::default());
    }

    #[test]
    fn delete_overdeletes_and_rederives() {
        // Two paths a→c; deleting one leaves t(a,c) rederivable.
        let mut v = view(
            TC,
            &[
                ("e", &["a", "b"]),
                ("e", &["b", "c"]),
                ("e", &["a", "x"]),
                ("e", &["x", "c"]),
            ],
        );
        let s = v.apply(&Delta::new().delete("e", &["a", "b"])).unwrap();
        assert!(!s.full_rebuild);
        assert!(s.overdeleted >= 2, "t(a,b) and t(a,c) over-deleted");
        assert!(s.rederived >= 1, "t(a,c) survives via a→x→c");
        assert_matches_scratch(&v);
        assert!(v
            .instance()
            .contains_terms(intern("t"), &[Term::constant("a"), Term::constant("c")]));
        assert!(!v
            .instance()
            .contains_terms(intern("t"), &[Term::constant("a"), Term::constant("b")]));
    }

    #[test]
    fn negation_maintained_in_both_directions() {
        let program = "e(?X, ?Y) -> t(?X, ?Y).\n\
                       e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                       e(?X, ?Y) -> node(?X).\n\
                       e(?X, ?Y) -> node(?Y).\n\
                       node(?X), node(?Y), !t(?X, ?Y) -> unreachable(?X, ?Y).";
        let mut v = view(program, &[("e", &["a", "b"]), ("e", &["c", "d"])]);
        assert_matches_scratch(&v);
        // Insert: a→…→d becomes reachable, its `unreachable` atom dies.
        v.apply(&Delta::new().insert("e", &["b", "c"])).unwrap();
        assert_matches_scratch(&v);
        // Delete: reachability shrinks, `unreachable` atoms come back.
        v.apply(&Delta::new().delete("e", &["b", "c"])).unwrap();
        assert_matches_scratch(&v);
        assert_eq!(v.stats().full_rebuilds, 0, "no fallback on this program");
    }

    #[test]
    fn existential_inserts_reuse_the_skolem_memo() {
        let mut v = view(
            "person(?X) -> exists ?Y parent(?X, ?Y).",
            &[("person", &["alice"])],
        );
        assert_eq!(v.outcome().stats.nulls, 1);
        // A redundant re-assertion must not re-invent the null.
        let s = v.apply(&Delta::new().insert("person", &["alice"])).unwrap();
        assert_eq!(s, DeltaSummary::default(), "redundant fact");
        v.apply(&Delta::new().insert("person", &["bob"])).unwrap();
        assert_eq!(v.outcome().stats.nulls, 2);
        assert_eq!(v.instance().atoms_of(intern("parent")).count(), 2);
        assert_eq!(v.stats().full_rebuilds, 0);
    }

    #[test]
    fn lifted_multihead_victims_reenter_lower_strata() {
        // The multi-head rule is placed at stratum 2 (max of its heads:
        // z is stratum 2 via !r), but its head `r` lives in stratum 1.
        // Inserting p(c) victimizes r(c) during the stratum-2 sweep —
        // AFTER stratum 1 ran — so the sweep must re-enter stratum 1 to
        // rederive r(c) via `base(?X) -> r(?X)`.
        let program = "base(?X) -> r(?X).\n\
                       a(?X), !p(?X) -> r(?X), z(?X).\n\
                       w(?X), !r(?X) -> z(?X).";
        let mut v = view(program, &[("base", &["c"]), ("a", &["c"]), ("w", &["c"])]);
        assert_matches_scratch(&v);
        let s = v.apply(&Delta::new().insert("p", &["c"])).unwrap();
        assert!(!s.full_rebuild);
        assert_matches_scratch(&v);
        assert!(
            v.instance()
                .contains_terms(intern("r"), &[Term::constant("c")]),
            "r(c) must be rederived by the lower-stratum rule"
        );
        // And without the alternative deriver, r(c) genuinely dies and
        // the un-blocked stratum-2 rule fires z via !r.
        let mut v = view(program, &[("a", &["c"]), ("w", &["c"])]);
        v.apply(&Delta::new().insert("p", &["c"])).unwrap();
        assert_matches_scratch(&v);
        assert!(!v
            .instance()
            .contains_terms(intern("r"), &[Term::constant("c")]));
        assert!(v
            .instance()
            .contains_terms(intern("z"), &[Term::constant("c")]));
    }

    #[test]
    fn inserts_stay_incremental_beside_existential_negation_rules() {
        // The program has an existential rule with a negated subgoal,
        // but inserts that do not touch `blocked` must stay incremental.
        let program = "person(?X), !blocked(?X) -> exists ?Y parent(?X, ?Y).\n\
                       e(?X, ?Y) -> t(?X, ?Y).\n\
                       e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).";
        let mut v = view(program, &[("person", &["alice"]), ("e", &["a", "b"])]);
        let s = v.apply(&Delta::new().insert("e", &["b", "c"])).unwrap();
        assert!(!s.full_rebuild, "insert unrelated to the negated pred");
        assert_eq!(v.stats().full_rebuilds, 0);
        assert_matches_scratch_modulo_nulls(&v);
        // An insert contradicting the existential rule's negation is the
        // one insert shape that must fall back.
        let s = v
            .apply(&Delta::new().insert("blocked", &["alice"]))
            .unwrap();
        assert!(s.full_rebuild, "victims of an ∃-rule are unidentifiable");
        assert_matches_scratch_modulo_nulls(&v);
    }

    /// Like `assert_matches_scratch`, but compares the ground parts only
    /// (null names differ between a resumed and a fresh chase).
    fn assert_matches_scratch_modulo_nulls(v: &MaterializedView) {
        let scratch = v.runner().run(v.database()).unwrap();
        assert_eq!(scratch.inconsistent, v.outcome().inconsistent);
        let got: std::collections::BTreeSet<String> = v
            .instance()
            .ground_part()
            .iter()
            .map(|a| a.to_string())
            .collect();
        let want: std::collections::BTreeSet<String> = scratch
            .instance
            .ground_part()
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            v.instance().live_len(),
            scratch.instance.live_len(),
            "same atom count up to null renaming"
        );
    }

    #[test]
    fn apply_error_recovers_via_rebuild_or_reports_unusable() {
        // A budget the from-scratch chase fits (8 edges + 36 closure
        // atoms = 44) but maintenance churn trips: tombstones count
        // toward the id watermark the budget checks, so repeated
        // delete+insert cycles exceed it mid-apply and the view must
        // transparently recover through the rebuild fallback.
        let p = parse_program(TC).unwrap();
        let runner = ChaseRunner::new(
            p,
            ChaseConfig {
                max_atoms: 50,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..8 {
            db.add_fact("e", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        let mut v = MaterializedView::new(runner, db).unwrap();
        // Churn: repeated delete+insert of a middle edge keeps the live
        // size constant but pushes the id watermark toward the budget.
        for _ in 0..6 {
            let d = Delta::new().delete("e", &["n3", "n4"]);
            let _ = v.apply(&d);
            let d = Delta::new().insert("e", &["n3", "n4"]);
            let _ = v.apply(&d);
        }
        // Whatever path each apply took (incremental, rebuild fallback),
        // the surviving view must match the scratch chase.
        assert_matches_scratch(&v);
        assert!(
            v.stats().full_rebuilds > 0,
            "the tight budget must have forced at least one recovery rebuild"
        );
    }

    #[test]
    fn poisoned_view_errors_then_recovers_on_shrinking_delta() {
        // Budget fits the 5-chain closure (5 e + 10 t = 15 ≤ 20) but not
        // the 8-chain one (44): growing past it poisons the view, and a
        // shrinking delta heals it through the retried rebuild.
        let runner = ChaseRunner::new(
            parse_program(TC).unwrap(),
            ChaseConfig {
                max_atoms: 20,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..5 {
            db.add_fact("e", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        let mut v = MaterializedView::new(runner, db).unwrap();
        let grow = Delta::new()
            .insert("e", &["n5", "n6"])
            .insert("e", &["n6", "n7"])
            .insert("e", &["n7", "n8"]);
        assert!(v.apply(&grow).unwrap_err().to_string().contains("budget"));
        // Poisoned: another infeasible apply errors again (no panic).
        assert!(v.apply(&Delta::new().insert("e", &["n8", "n9"])).is_err());
        // Shrinking back under the budget recovers via the rebuild.
        let shrink = Delta::new()
            .delete("e", &["n5", "n6"])
            .delete("e", &["n6", "n7"])
            .delete("e", &["n7", "n8"])
            .delete("e", &["n8", "n9"]);
        let s = v.apply(&shrink).unwrap();
        assert!(s.full_rebuild);
        assert_matches_scratch(&v);
    }

    #[test]
    fn null_entangled_delete_falls_back_to_rebuild() {
        let mut v = view(
            "person(?X) -> exists ?Y parent(?X, ?Y).\n parent(?X, ?Y) -> haskid(?X).",
            &[("person", &["alice"]), ("person", &["bob"])],
        );
        let s = v.apply(&Delta::new().delete("person", &["bob"])).unwrap();
        assert!(s.full_rebuild, "deleting into an existential cone");
        assert_eq!(v.stats().full_rebuilds, 1);
        assert_matches_scratch(&v);
        assert_eq!(v.instance().atoms_of(intern("parent")).count(), 1);
    }

    #[test]
    fn constraints_recheck_after_delta() {
        let program = "a(?X), b(?X) -> false.\n a(?X) -> out(?X).";
        let mut v = view(program, &[("a", &["x"])]);
        assert!(!v.outcome().inconsistent);
        v.apply(&Delta::new().insert("b", &["x"])).unwrap();
        assert!(v.outcome().inconsistent);
        v.apply(&Delta::new().delete("b", &["x"])).unwrap();
        assert!(!v.outcome().inconsistent);
        assert_matches_scratch(&v);
    }

    #[test]
    fn snapshots_are_isolated_from_later_deltas() {
        let mut v = view(TC, &[("e", &["a", "b"])]);
        let before = v.outcome().clone();
        v.apply(&Delta::new().insert("e", &["b", "c"])).unwrap();
        assert_eq!(before.instance.live_len(), 2, "snapshot unchanged");
        assert_eq!(v.instance().live_len(), 5);
    }

    #[test]
    fn compaction_preserves_the_view() {
        let mut v = view(TC, &[]);
        // Churn enough tombstones to trigger compaction.
        for round in 0..40 {
            let mut ins = Delta::new();
            let mut del = Delta::new();
            for i in 0..10 {
                let from = format!("r{round}n{i}");
                let to = format!("r{round}n{}", i + 1);
                ins = ins.insert("e", &[&from, &to]);
                del = del.delete("e", &[&from, &to]);
            }
            v.apply(&ins).unwrap();
            v.apply(&del).unwrap();
        }
        assert!(v.stats().compactions > 0, "compaction must trigger");
        assert_matches_scratch(&v);
        // And the compacted view keeps maintaining correctly.
        v.apply(
            &Delta::new()
                .insert("e", &["p", "q"])
                .insert("e", &["q", "r"]),
        )
        .unwrap();
        assert_matches_scratch(&v);
    }

    #[test]
    fn mixed_delta_delete_then_insert_same_fact() {
        let mut v = view(TC, &[("e", &["a", "b"])]);
        // Same fact in both lists: deletes run first, so it survives.
        let d = Delta::new()
            .insert("e", &["a", "b"])
            .delete("e", &["a", "b"]);
        v.apply(&d).unwrap();
        assert_matches_scratch(&v);
        assert!(v
            .instance()
            .contains_terms(intern("t"), &[Term::constant("a"), Term::constant("b")]));
    }
}
