//! Demand-driven evaluation: the magic-set rewrite for point queries.
//!
//! The chase materializes the **whole** fixpoint of a program even when
//! the query will only ever look at a tiny slice of it — `t(n0, ?Y)`
//! over a transitive closure pays for every pair, then throws all but
//! one source away. The classic remedy is the *magic-set* transformation
//! (Bancilhon–Maier–Sagiv–Ullman; Balbin–Port–Ramamohanarao–Meenakshi
//! for the stratified-negation case): specialize each intensional
//! predicate by an *adornment* recording which argument positions arrive
//! bound, guard every specialized rule with a *magic* predicate that
//! enumerates exactly the demanded bindings, and seed the magic
//! predicates from the query's constants. The rewritten program derives
//! only the cone of facts reachable from the demand seeds, yet — when it
//! stratifies — has the same certain answers as the original.
//!
//! [`rewrite`] performs that transformation for a prepared `(Π, out)`
//! query. It is deliberately conservative: whenever the rewrite cannot
//! *prove* answer equivalence it reports a [`DemandFallback`] and the
//! caller runs the full chase instead. The fallback taxonomy, and the
//! equivalence argument for the cases that are accepted, are spelled out
//! in `docs/ARCHITECTURE.md` ("Demand-driven evaluation").
//!
//! ## Shape of the rewritten program
//!
//! For each demanded predicate `p` with adornment `a` (a `b`/`f` string,
//! one letter per argument position):
//!
//! * `~d~a~p` — the adorned copy of `p`, holding the demanded slice;
//! * `~d~m~a~p` — the magic predicate, holding the demanded bindings of
//!   `p`'s bound positions (arity = number of `b`s);
//! * one *adorned rule* per original rule deriving `p`: the original
//!   body prefixed with the magic guard, with demanded intensional
//!   subgoals renamed to their adorned copies;
//! * one *magic rule* per demanded body occurrence, deriving the callee's
//!   magic predicate from the guard plus the body prefix left of the
//!   occurrence (a full left-to-right sideways-information-passing
//!   strategy);
//! * one *copy rule* `~d~m~a~p(..bound..), p(?A0, …) → ~d~a~p(?A0, …)`
//!   importing extensional facts of `p` (predicates may be both stored
//!   and derived);
//! * *seed rules* `~d~seed(~d~on) → ~d~m~a~p(c₁, …)` for demanded
//!   occurrences whose bound positions are all constants before any body
//!   atom has run (the query's entry points). The single extensional
//!   fact `~d~seed(~d~on)` — [`DemandProgram::seed`], which the caller
//!   must add to the database — exists because rules need a non-empty
//!   positive body (§3.2 condition n ≥ 1).
//!
//! Predicates forced into the *full set* `F` (constraint support,
//! all-free occurrences, multi-head derivations) keep their original
//! rules and names verbatim; rules deriving predicates that end up
//! neither demanded nor in `F` are dropped — they cannot influence the
//! answers.

use crate::program::{Program, Rule};
use crate::{Atom, Builtin};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt;
use triq_common::{Fact, Symbol, Term, VarId};

/// Reserved name prefix of every predicate the rewrite invents. Programs
/// that already use it are rejected ([`DemandFallback::Shape`]) rather
/// than risking a collision. The `~` is legal in identifiers, so
/// rewritten programs survive the program-text round-trip of the
/// persistence layer.
pub const DEMAND_PREFIX: &str = "~d~";

/// How the facade chooses between demand-driven and full evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DemandMode {
    /// Rewrite when possible and evaluate the demanded cone, unless a
    /// live or recovered materialization of the full fixpoint already
    /// exists (then the lookup is cheaper than any chase).
    #[default]
    Auto,
    /// Always chase the full program.
    Off,
    /// Always evaluate the rewritten program when the rewrite succeeds
    /// (diagnostics / differential testing; falls back to the full chase
    /// only when the rewrite itself reports a [`DemandFallback`]).
    Force,
}

impl fmt::Display for DemandMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DemandMode::Auto => "auto",
            DemandMode::Off => "off",
            DemandMode::Force => "force",
        })
    }
}

impl std::str::FromStr for DemandMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(DemandMode::Auto),
            "off" => Ok(DemandMode::Off),
            "force" => Ok(DemandMode::Force),
            other => Err(format!(
                "invalid demand mode {other:?} (expected auto, off or force)"
            )),
        }
    }
}

/// Why [`rewrite`] declined to produce a demand program. Every variant
/// means "run the full chase"; the facade counts them as
/// `demand_fallbacks`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DemandFallback {
    /// No intensional body occurrence ever receives a binding: the query
    /// genuinely asks for the full fixpoint (e.g. `t(?X, ?Y) → out(?X,
    /// ?Y)`), so there is nothing to demand.
    Unbound,
    /// A demanded predicate is derived by an existential rule. Magic
    /// guards on ∃-rules can break wardedness and interact with the
    /// invention-depth bound, so the rewrite refuses rather than risk
    /// diverging answers.
    Existential,
    /// The rewritten program lost stratifiability: a magic predicate
    /// closed a cycle through a negated adorned subgoal. The original
    /// (stratified) program is evaluated in full instead.
    Unstratifiable,
    /// The program's shape is outside the rewrite's remit: an output
    /// rule sharing its head with another predicate, a predicate already
    /// using the reserved [`DEMAND_PREFIX`], or a rewritten program that
    /// failed validation.
    Shape,
}

impl fmt::Display for DemandFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DemandFallback::Unbound => "unbound query",
            DemandFallback::Existential => "existential rule demanded",
            DemandFallback::Unstratifiable => "rewrite breaks stratification",
            DemandFallback::Shape => "program shape outside the rewrite",
        })
    }
}

/// A successful magic-set rewrite: the program to chase and the one
/// extensional seed fact its magic seed rules fire from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DemandProgram {
    /// The rewritten program (adorned + magic + seed + copy rules, the
    /// retained full-set rules, and the original constraints).
    pub program: Program,
    /// The single extensional fact (`~d~seed(~d~on)`) the caller must
    /// add to the database before chasing [`DemandProgram::program`].
    pub seed: Fact,
    /// Number of `(predicate, adornment)` pairs that were demanded.
    pub demanded: usize,
    /// Number of magic + seed rules generated (the demand propagation
    /// skeleton; diagnostics only).
    pub magic_rules: usize,
}

/// The adorned copy of `pred` under `adornment` (`true` = bound).
pub fn adorned_symbol(pred: Symbol, adornment: &[bool]) -> Symbol {
    Symbol::new(&format!(
        "{DEMAND_PREFIX}{}~{pred}",
        adornment_letters(adornment)
    ))
}

/// The magic predicate of `pred` under `adornment` (arity = number of
/// bound positions).
pub fn magic_symbol(pred: Symbol, adornment: &[bool]) -> Symbol {
    Symbol::new(&format!(
        "{DEMAND_PREFIX}m~{}~{pred}",
        adornment_letters(adornment)
    ))
}

fn adornment_letters(adornment: &[bool]) -> String {
    adornment
        .iter()
        .map(|&b| if b { 'b' } else { 'f' })
        .collect()
}

/// The extensional seed fact every [`DemandProgram`] fires from.
fn seed_fact() -> Fact {
    Fact {
        pred: Symbol::new(&format!("{DEMAND_PREFIX}seed")),
        args: vec![Symbol::new(&format!("{DEMAND_PREFIX}on"))],
    }
}

fn seed_atom() -> Atom {
    let f = seed_fact();
    Atom::new(f.pred, vec![Term::Const(f.args[0])])
}

/// Internal control flow of one rewrite attempt: either the full set `F`
/// must grow (and the attempt restarts), or the whole rewrite is off.
enum Abort {
    /// `pred` cannot be demanded — move it to the full set and restart.
    Restart(Symbol),
    /// Give up on the rewrite entirely.
    Fail(DemandFallback),
}

/// Applies the magic-set transformation to `(program, output)`.
///
/// `output` must not occur in any rule body (the §3.2 side condition the
/// facade already enforces). On success the returned
/// [`DemandProgram::program`] is validated and stratified, and chasing
/// it over `D ∪ {seed}` yields the same certain answers for `output` as
/// chasing `program` over `D` — see `docs/ARCHITECTURE.md` for the
/// argument. On `Err` the caller must evaluate the original program.
pub fn rewrite(program: &Program, output: Symbol) -> Result<DemandProgram, DemandFallback> {
    // Reserved-prefix collision: refuse to generate names into a
    // namespace the program already touches.
    if program
        .schema()
        .keys()
        .any(|p| p.as_str().starts_with(DEMAND_PREFIX))
        || output.as_str().starts_with(DEMAND_PREFIX)
    {
        return Err(DemandFallback::Shape);
    }
    let idb = program.head_predicates();
    // The full set F: predicates whose original rules are kept verbatim.
    // Constraints must observe exactly the facts the full chase would
    // derive (answers can be ⊤), so every predicate a constraint reads —
    // and, transitively, everything those predicates are computed from —
    // is exempt from demand.
    let mut full: BTreeSet<Symbol> = program
        .constraints
        .iter()
        .flat_map(|c| c.body.iter().map(|a| a.pred))
        .filter(|p| idb.contains(p))
        .collect();
    // Each restart adds one predicate to F, so the loop runs at most
    // |idb| + 1 times.
    loop {
        close_full_set(&mut full, program, &idb);
        if full.contains(&output) {
            // Unreachable while the output-not-in-bodies side condition
            // holds; bail out defensively rather than mis-rewrite.
            return Err(DemandFallback::Shape);
        }
        match try_rewrite(program, output, &idb, &full) {
            Ok(result) => return Ok(result),
            Err(Abort::Restart(pred)) => {
                full.insert(pred);
            }
            Err(Abort::Fail(fallback)) => return Err(fallback),
        }
    }
}

/// Closes `full` under rule support: a predicate computed in full needs
/// every predicate in the bodies of its rules (and every co-head of
/// those rules, which the verbatim rules derive anyway) computed in full
/// too.
fn close_full_set(full: &mut BTreeSet<Symbol>, program: &Program, idb: &BTreeSet<Symbol>) {
    loop {
        let mut grew = false;
        for rule in &program.rules {
            if !rule.head.iter().any(|h| full.contains(&h.pred)) {
                continue;
            }
            for atom in rule
                .head
                .iter()
                .chain(rule.body_pos.iter())
                .chain(rule.body_neg.iter())
            {
                if idb.contains(&atom.pred) && full.insert(atom.pred) {
                    grew = true;
                }
            }
        }
        if !grew {
            return;
        }
    }
}

/// One rewrite attempt against a fixed full set.
struct Rewriter<'a> {
    program: &'a Program,
    idb: &'a BTreeSet<Symbol>,
    full: &'a BTreeSet<Symbol>,
    /// Rules deriving each predicate (indices into `program.rules`).
    derivers: BTreeMap<Symbol, Vec<usize>>,
    /// Demanded (predicate, adornment) pairs, with discovery queue.
    demanded: BTreeMap<Symbol, BTreeSet<Vec<bool>>>,
    queue: VecDeque<(Symbol, Vec<bool>)>,
    /// Predicates whose derivers passed the single-head / non-∃ checks.
    checked: HashSet<Symbol>,
    /// Generated adorned rules (with their magic rules interleaved in
    /// discovery order — the order only affects program text, which must
    /// simply be deterministic).
    generated: Vec<Rule>,
    magic_rules: usize,
}

fn try_rewrite(
    program: &Program,
    output: Symbol,
    idb: &BTreeSet<Symbol>,
    full: &BTreeSet<Symbol>,
) -> Result<DemandProgram, Abort> {
    let mut derivers: BTreeMap<Symbol, Vec<usize>> = BTreeMap::new();
    for (i, rule) in program.rules.iter().enumerate() {
        for head in &rule.head {
            let entry = derivers.entry(head.pred).or_default();
            if entry.last() != Some(&i) {
                entry.push(i);
            }
        }
    }
    let mut rw = Rewriter {
        program,
        idb,
        full,
        derivers,
        demanded: BTreeMap::new(),
        queue: VecDeque::new(),
        checked: HashSet::new(),
        generated: Vec::new(),
        magic_rules: 0,
    };

    // Rewrite the output rules first (no guard, nothing bound): they are
    // where demand enters the program.
    let mut out_rules: Vec<Rule> = Vec::new();
    for rule in &program.rules {
        if !rule.head.iter().any(|h| h.pred == output) {
            continue;
        }
        if rule.head.iter().any(|h| h.pred != output) {
            // A co-head would be computed only under this rule's demand,
            // but other consumers expect its full extension.
            return Err(Abort::Fail(DemandFallback::Shape));
        }
        let (body_pos, body_neg) = rw.rewrite_body(rule, None, BTreeSet::new())?;
        out_rules.push(Rule {
            body_pos,
            body_neg,
            builtins: rule.builtins.clone(),
            exist_vars: rule.exist_vars.clone(),
            head: rule.head.clone(),
        });
    }

    // Drain the demand queue: each demanded (p, a) gets adorned copies
    // of p's rules plus the extensional copy rule.
    while let Some((pred, adornment)) = rw.queue.pop_front() {
        for &i in &rw.derivers.get(&pred).cloned().unwrap_or_default() {
            let rule = &program.rules[i];
            let head = &rule.head[0];
            let guard_terms: Vec<Term> = bound_terms(&head.terms, &adornment);
            let guard = Atom::new(magic_symbol(pred, &adornment), guard_terms);
            let bound0: BTreeSet<VarId> = guard.vars().collect();
            let (body_pos, body_neg) = rw.rewrite_body(rule, Some(guard), bound0)?;
            rw.generated.push(Rule {
                body_pos,
                body_neg,
                builtins: rule.builtins.clone(),
                exist_vars: Vec::new(),
                head: vec![Atom::new(
                    adorned_symbol(pred, &adornment),
                    head.terms.clone(),
                )],
            });
        }
        // Copy rule: extensional facts of `pred` join the demanded slice.
        let all_vars: Vec<Term> = (0..adornment.len())
            .map(|i| Term::Var(VarId::new(&format!("DV{i}"))))
            .collect();
        let guard = Atom::new(
            magic_symbol(pred, &adornment),
            bound_terms(&all_vars, &adornment),
        );
        rw.generated.push(Rule {
            body_pos: vec![guard, Atom::new(pred, all_vars.clone())],
            body_neg: Vec::new(),
            builtins: Vec::new(),
            exist_vars: Vec::new(),
            head: vec![Atom::new(adorned_symbol(pred, &adornment), all_vars)],
        });
    }

    if rw.demanded.is_empty() {
        return Err(Abort::Fail(DemandFallback::Unbound));
    }

    // Assemble: retained full-set rules (original order), rewritten
    // output rules, then the generated demand skeleton; constraints ride
    // along verbatim.
    let mut rules: Vec<Rule> = program
        .rules
        .iter()
        .filter(|r| r.head.iter().any(|h| full.contains(&h.pred)))
        .cloned()
        .collect();
    rules.extend(out_rules);
    let demanded_pairs = rw.demanded.values().map(|s| s.len()).sum();
    let magic_rules = rw.magic_rules;
    rules.extend(rw.generated);
    let rewritten = Program {
        rules,
        constraints: program.constraints.clone(),
    };
    if rewritten.validate().is_err() {
        debug_assert!(false, "demand rewrite produced an invalid program");
        return Err(Abort::Fail(DemandFallback::Shape));
    }
    if crate::stratify(&rewritten).is_err() {
        return Err(Abort::Fail(DemandFallback::Unstratifiable));
    }
    Ok(DemandProgram {
        program: rewritten,
        seed: seed_fact(),
        demanded: demanded_pairs,
        magic_rules,
    })
}

/// The terms at the bound positions of `adornment`, in position order.
fn bound_terms(terms: &[Term], adornment: &[bool]) -> Vec<Term> {
    terms
        .iter()
        .zip(adornment)
        .filter(|(_, &b)| b)
        .map(|(&t, _)| t)
        .collect()
}

impl Rewriter<'_> {
    /// True iff a body occurrence of `pred` is rewritten to an adorned
    /// copy (intensional and not exempted into the full set).
    fn demandable(&self, pred: Symbol) -> bool {
        self.idb.contains(&pred) && !self.full.contains(&pred)
    }

    /// Checks that every rule deriving `pred` is single-head and
    /// non-existential; otherwise demand for it is impossible.
    fn check_derivers(&mut self, pred: Symbol) -> Result<(), Abort> {
        if !self.checked.insert(pred) {
            return Ok(());
        }
        for &i in self.derivers.get(&pred).map(Vec::as_slice).unwrap_or(&[]) {
            let rule = &self.program.rules[i];
            if rule.is_existential() {
                return Err(Abort::Fail(DemandFallback::Existential));
            }
            if rule.head.len() > 1 {
                // The rule's co-heads would be derived only under this
                // demand; compute the predicate in full instead.
                return Err(Abort::Restart(pred));
            }
        }
        Ok(())
    }

    /// Registers demand for `(pred, adornment)`.
    fn demand(&mut self, pred: Symbol, adornment: Vec<bool>) -> Result<(), Abort> {
        self.check_derivers(pred)?;
        if self
            .demanded
            .entry(pred)
            .or_default()
            .insert(adornment.clone())
        {
            self.queue.push_back((pred, adornment));
        }
        Ok(())
    }

    /// Rewrites one rule body under a full left-to-right SIP: `guard`
    /// (already an adorned/magic atom, if any) plus the variables in
    /// `bound0` are available before the first subgoal runs. Returns the
    /// rewritten positive and negated bodies; magic rules for demanded
    /// occurrences are appended to `self.generated`.
    fn rewrite_body(
        &mut self,
        rule: &Rule,
        guard: Option<Atom>,
        bound0: BTreeSet<VarId>,
    ) -> Result<(Vec<Atom>, Vec<Atom>), Abort> {
        let mut bound = bound0;
        let mut body_pos: Vec<Atom> = Vec::new();
        body_pos.extend(guard);
        for atom in &rule.body_pos {
            if self.demandable(atom.pred) {
                let adornment: Vec<bool> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => bound.contains(v),
                        _ => true,
                    })
                    .collect();
                if !adornment.iter().any(|&b| b) {
                    // Nothing to pass sideways: this occurrence needs the
                    // predicate's full extension.
                    return Err(Abort::Restart(atom.pred));
                }
                self.demand(atom.pred, adornment.clone())?;
                let magic_head = Atom::new(
                    magic_symbol(atom.pred, &adornment),
                    bound_terms(&atom.terms, &adornment),
                );
                self.magic_rules += 1;
                if body_pos.is_empty() {
                    // First subgoal of an output rule: the bound
                    // positions are all constants — a demand seed.
                    self.generated
                        .push(Rule::plain(vec![seed_atom()], magic_head));
                } else {
                    self.generated.push(Rule {
                        body_pos: body_pos.clone(),
                        body_neg: Vec::new(),
                        builtins: covered_builtins(&rule.builtins, &bound),
                        exist_vars: Vec::new(),
                        head: vec![magic_head],
                    });
                }
                body_pos.push(Atom::new(
                    adorned_symbol(atom.pred, &adornment),
                    atom.terms.clone(),
                ));
            } else {
                body_pos.push(atom.clone());
            }
            bound.extend(atom.vars());
        }
        // Negated subgoals run after the positive body, with every
        // variable bound (§3.2 condition 3) — their adornment is all-`b`
        // and their magic rule sees the whole positive body.
        let mut body_neg: Vec<Atom> = Vec::new();
        for atom in &rule.body_neg {
            if self.demandable(atom.pred) {
                let adornment = vec![true; atom.terms.len()];
                if adornment.is_empty() {
                    // A nullary predicate has no bound positions to
                    // demand through.
                    return Err(Abort::Restart(atom.pred));
                }
                self.demand(atom.pred, adornment.clone())?;
                self.magic_rules += 1;
                self.generated.push(Rule {
                    body_pos: body_pos.clone(),
                    body_neg: Vec::new(),
                    builtins: covered_builtins(&rule.builtins, &bound),
                    exist_vars: Vec::new(),
                    head: vec![Atom::new(
                        magic_symbol(atom.pred, &adornment),
                        atom.terms.clone(),
                    )],
                });
                body_neg.push(Atom::new(
                    adorned_symbol(atom.pred, &adornment),
                    atom.terms.clone(),
                ));
            } else {
                body_neg.push(atom.clone());
            }
        }
        Ok((body_pos, body_neg))
    }
}

/// The builtins whose variables are all in `bound` (safe to evaluate in
/// a magic rule whose body is the prefix that bound them — they narrow
/// the demand without changing it).
fn covered_builtins(builtins: &[Builtin], bound: &BTreeSet<VarId>) -> Vec<Builtin> {
    builtins
        .iter()
        .filter(|b| b.vars().all(|v| bound.contains(&v)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, Answers, ChaseConfig, ChaseRunner, Database};

    fn db(facts: &[(&str, &[&str])]) -> Database {
        let mut db = Database::new();
        for (pred, args) in facts {
            db.add_fact(pred, args);
        }
        db
    }

    /// Chases both programs and asserts equal answers; returns
    /// (full_derived, demand_derived).
    fn assert_equivalent(text: &str, output: &str, db: &Database) -> (usize, usize) {
        let program = parse_program(text).unwrap();
        let out = Symbol::new(output);
        let dp = rewrite(&program, out).expect("rewrite must succeed");
        let config = ChaseConfig::default();
        let full = ChaseRunner::new(program, config).unwrap().run(db).unwrap();
        let mut demand_db = db.clone();
        demand_db.add_row(dp.seed.pred, &dp.seed.args);
        let demand = ChaseRunner::new(dp.program.clone(), config)
            .unwrap()
            .run(&demand_db)
            .unwrap();
        assert_eq!(
            Answers::from_chase(&full, out),
            Answers::from_chase(&demand, out),
            "answers diverge for output {output}\nrewritten:\n{}",
            dp.program
        );
        (full.stats.derived, demand.stats.derived)
    }

    const TC: &str = "e(?X, ?Y) -> t(?X, ?Y).\n\
                      t(?X, ?Z), e(?Z, ?Y) -> t(?X, ?Y).\n\
                      t(n0, ?Y) -> out(?Y).";

    fn chain(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add_fact("e", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        // A second component the demanded cone never visits.
        for i in 0..n {
            db.add_fact("e", &[&format!("m{i}"), &format!("m{}", i + 1)]);
        }
        db
    }

    #[test]
    fn adornment_propagates_left_to_right() {
        let program = parse_program(TC).unwrap();
        let dp = rewrite(&program, Symbol::new("out")).unwrap();
        let text = dp.program.to_string();
        // The left-linear recursion passes the bound first argument
        // through: one adornment, `bf`.
        assert_eq!(dp.demanded, 1, "{text}");
        assert!(text.contains("~d~bf~t"), "{text}");
        assert!(text.contains("~d~m~bf~t"), "{text}");
        // The query constant seeds the magic set…
        assert!(text.contains("~d~seed(~d~on) -> ~d~m~bf~t(n0)"), "{text}");
        // …and the recursive rule re-demands under the same adornment.
        assert!(
            text.contains("~d~m~bf~t(?X) -> ~d~m~bf~t(?X)"),
            "left-linear magic propagation:\n{text}"
        );
    }

    #[test]
    fn magic_evaluation_matches_full_chase_and_prunes() {
        let (full, demand) = assert_equivalent(TC, "out", &chain(40));
        // The demanded cone is the single-source closure: far smaller
        // than the all-pairs closure over both components.
        assert!(
            demand * 2 < full,
            "expected pruning, got full={full} demand={demand}"
        );
    }

    #[test]
    fn partially_bound_and_constant_adornments() {
        let text = "e(?X, ?Y) -> t(?X, ?Y).\n\
                    t(?X, ?Z), t(?Z, ?Y) -> t(?X, ?Y).\n\
                    t(n0, ?Y), t(?Y, n3) -> out(?Y).";
        let (_, _) = assert_equivalent(text, "out", &chain(8));
        let program = parse_program(text).unwrap();
        let dp = rewrite(&program, Symbol::new("out")).unwrap();
        let rendered = dp.program.to_string();
        // First occurrence binds position 1, the second binds both (the
        // `?Y` flows in from the first subgoal).
        assert!(rendered.contains("~d~bf~t"), "{rendered}");
        assert!(rendered.contains("~d~bb~t"), "{rendered}");
    }

    #[test]
    fn negated_subgoals_are_demanded_fully_bound() {
        let text = "g(?X, ?Y) -> r(?X, ?Y).\n\
                    b(?X) -> p(?X).\n\
                    d(?X), !p(?X) -> out(?X).";
        let facts = db(&[
            ("d", &["a"]),
            ("d", &["b"]),
            ("b", &["a"]),
            ("g", &["x", "y"]),
        ]);
        assert_equivalent(text, "out", &facts);
        let program = parse_program(text).unwrap();
        let dp = rewrite(&program, Symbol::new("out")).unwrap();
        let rendered = dp.program.to_string();
        assert!(rendered.contains("!~d~b~p"), "{rendered}");
        // The unreferenced r-rules are dropped from the demand program.
        assert!(!rendered.contains("r(?X, ?Y)"), "{rendered}");
    }

    #[test]
    fn extensional_facts_of_demanded_predicates_survive() {
        // `t` is both stored and derived: the copy rule must import the
        // stored tuples into the demanded slice.
        let facts = db(&[("e", &["n0", "n1"]), ("t", &["n0", "zz"])]);
        assert_equivalent(TC, "out", &facts);
    }

    #[test]
    fn unbound_query_falls_back() {
        let text = "e(?X, ?Y) -> t(?X, ?Y).\n\
                    t(?X, ?Z), e(?Z, ?Y) -> t(?X, ?Y).\n\
                    t(?X, ?Y) -> out(?X, ?Y).";
        let program = parse_program(text).unwrap();
        assert_eq!(
            rewrite(&program, Symbol::new("out")),
            Err(DemandFallback::Unbound)
        );
    }

    #[test]
    fn existential_deriver_falls_back() {
        let text = "r(?X) -> exists ?N s(?X, ?N).\n\
                    d(?X), s(?X, ?Y) -> out(?X, ?Y).";
        let program = parse_program(text).unwrap();
        assert_eq!(
            rewrite(&program, Symbol::new("out")),
            Err(DemandFallback::Existential)
        );
    }

    #[test]
    fn magic_cycle_through_negation_falls_back() {
        // Stratified original: q < p < out. The magic rewrite would
        // close a negative cycle (p's adorned rule negates q's adorned
        // copy, whose magic set is fed from p's adorned copy by the
        // output rule's SIP), so the rewrite must refuse.
        let text = "b(?X), !q(?X) -> p(?X).\n\
                    f(?X) -> q(?X).\n\
                    d(?X), p(?X), e(?X, ?Z), q(?Z) -> out(?X, ?Z).";
        let program = parse_program(text).unwrap();
        crate::stratify(&program).expect("original must stratify");
        assert_eq!(
            rewrite(&program, Symbol::new("out")),
            Err(DemandFallback::Unstratifiable)
        );
    }

    #[test]
    fn multi_head_output_rule_falls_back() {
        let text = "a(?X) -> out(?X), extra(?X).";
        let program = parse_program(text).unwrap();
        assert_eq!(
            rewrite(&program, Symbol::new("out")),
            Err(DemandFallback::Shape)
        );
    }

    #[test]
    fn reserved_prefix_falls_back() {
        let text = "~d~x(?X) -> out(?X).";
        let program = parse_program(text).unwrap();
        assert_eq!(
            rewrite(&program, Symbol::new("out")),
            Err(DemandFallback::Shape)
        );
    }

    #[test]
    fn multi_head_deriver_moves_to_full_set() {
        // `p` is derived by a multi-head rule: demanding it would starve
        // the co-head, so it joins F and keeps its original rules, while
        // `q` is still demanded.
        let text = "a(?X) -> p(?X), r(?X).\n\
                    w(?X) -> q(?X).\n\
                    d(?X), p(?X), q(?X) -> out(?X).";
        let program = parse_program(text).unwrap();
        let dp = rewrite(&program, Symbol::new("out")).unwrap();
        let rendered = dp.program.to_string();
        assert!(rendered.contains("a(?X) -> p(?X), r(?X)"), "{rendered}");
        assert!(!rendered.contains("~d~b~p"), "{rendered}");
        assert!(rendered.contains("~d~b~q"), "{rendered}");
        let facts = db(&[
            ("a", &["a"]),
            ("w", &["a"]),
            ("w", &["b"]),
            ("d", &["a"]),
            ("d", &["c"]),
        ]);
        assert_equivalent(text, "out", &facts);
    }

    #[test]
    fn constraint_support_is_exempt_from_demand() {
        // `p` feeds a constraint: it must be computed in full so ⊤ is
        // detected exactly as the full chase would.
        let text = "b(?X) -> p(?X).\n\
                    w(?X) -> q(?X).\n\
                    d(?X), q(?X) -> out(?X).\n\
                    p(?X), forbidden(?X) -> false.";
        let program = parse_program(text).unwrap();
        let dp = rewrite(&program, Symbol::new("out")).unwrap();
        let rendered = dp.program.to_string();
        assert!(rendered.contains("b(?X) -> p(?X)"), "{rendered}");
        assert!(rendered.contains("-> false"), "{rendered}");
        // Consistent data: answers agree.
        assert_equivalent(
            text,
            "out",
            &db(&[("b", &["x"]), ("w", &["a"]), ("d", &["a"])]),
        );
        // Inconsistent data: both sides report ⊤.
        assert_equivalent(
            text,
            "out",
            &db(&[
                ("b", &["x"]),
                ("forbidden", &["x"]),
                ("w", &["a"]),
                ("d", &["a"]),
            ]),
        );
    }

    #[test]
    fn builtins_ride_along_and_narrow_the_demand() {
        let text = "e(?X, ?Y) -> t(?X, ?Y).\n\
                    t(?X, ?Z), e(?Z, ?Y) -> t(?X, ?Y).\n\
                    d(?A), t(?A, ?Y), ?A != n1 -> out(?A, ?Y).";
        let facts = {
            let mut d = chain(6);
            d.add_fact("d", &["n0"]);
            d.add_fact("d", &["n1"]);
            d.add_fact("d", &["n2"]);
            d
        };
        assert_equivalent(text, "out", &facts);
    }

    #[test]
    fn existential_output_rules_are_allowed() {
        // ∃ in the *output* rule is fine — the output predicate itself is
        // never demanded (nulls simply never surface in Answers).
        let text = "e(?X, ?Y) -> t(?X, ?Y).\n\
                    t(?X, ?Z), e(?Z, ?Y) -> t(?X, ?Y).\n\
                    t(n0, ?Y) -> exists ?N out(?Y, ?N).";
        assert_equivalent(text, "out", &chain(5));
    }

    #[test]
    fn demand_mode_parses() {
        assert_eq!("auto".parse(), Ok(DemandMode::Auto));
        assert_eq!("off".parse(), Ok(DemandMode::Off));
        assert_eq!("force".parse(), Ok(DemandMode::Force));
        assert!("magic".parse::<DemandMode>().is_err());
        assert_eq!(DemandMode::Force.to_string(), "force");
    }

    #[test]
    fn rewritten_program_text_round_trips() {
        let program = parse_program(TC).unwrap();
        let dp = rewrite(&program, Symbol::new("out")).unwrap();
        let reparsed = parse_program(&dp.program.to_string()).unwrap();
        assert_eq!(dp.program, reparsed, "persistence relies on this");
    }
}
