//! Statistics-driven join planning for the chase.
//!
//! PR 2's join loop picked the next body atom *per binding step* by
//! recomputing every unsolved atom's candidate list and taking the
//! shortest — adaptive, but the scan itself costs `O(atoms² × arity)`
//! hash probes along every match path, and it cannot see selectivity
//! (a column with four distinct values filters nothing even when its
//! posting list happens to be short *right now*). The planner replaces
//! that with a **bound order** compiled per rule:
//!
//! * [`ChaseRunner`](crate::ChaseRunner) compiles a heuristic plan at
//!   build time (constants-first — no data has been seen yet);
//! * the engine re-plans **at stratum entry** from live [`RelationStats`]
//!   (row counts, per-column distinct-count sketches, value ranges)
//!   whenever cardinalities have drifted past [`drifted`]'s threshold —
//!   the classic greedy smallest-estimated-intermediate-result order,
//!   with one order per semi-naive pivot (the pivot's delta window makes
//!   it the most selective atom, so it leads);
//! * each plan position carries a precomputed [`ProbeKind`]: which
//!   columns are bound there is a *static* property of the order, so the
//!   runtime join loop does no picking at all — and positions where every
//!   column is bound probe the whole-tuple hash table in O(1), while
//!   high-fanout multi-column positions request an on-demand joint hash
//!   index from the store ([`Instance::ensure_joint_index`]).
//!
//! Plans never change answers — only the enumeration order of matches,
//! which the chase canonicalizes before applying (see
//! `collect_rule_matches`) — so a mis-estimated plan costs time, never
//! correctness. `tests/differential_planner.rs` pins exactly that: the
//! cost-based order, a forced-reverse order and the PR 2 greedy fallback
//! must produce byte-identical instances.

use crate::chase::{CAtom, CTerm, CompiledRule};
use crate::instance::Instance;
use crate::kernels;
use triq_common::Symbol;

/// How the compiled join loop probes the atom at one plan position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ProbeKind {
    /// No column is bound here: scan the atom's windowed extent.
    Scan,
    /// Some columns are bound: smallest per-column posting list among
    /// them (the PR 2 probe path).
    Cols,
    /// Several columns are bound and the expected per-value fanout is
    /// high: probe the joint hash index over exactly these (ascending)
    /// columns, falling back to [`ProbeKind::Cols`] when the index has
    /// been invalidated and not yet rebuilt.
    Joint(Box<[u8]>),
    /// Every column is bound: one O(1) whole-tuple hash probe.
    Full,
}

/// An atom order for one rule body plus the per-position probe kinds.
#[derive(Clone, Debug)]
pub(crate) struct BoundOrder {
    /// `order[k]` = index (into `body_pos`) of the atom matched at
    /// depth `k`.
    pub(crate) order: Vec<u16>,
    /// `probes[k]` = how `order[k]` is probed, given the slots bound by
    /// the positions before it.
    pub(crate) probes: Vec<ProbeKind>,
}

/// A compiled join plan for one rule: a bound order for the first
/// (full-join) round and one per semi-naive pivot, plus the statistics
/// snapshot it was computed from and the joint indexes it wants built.
#[derive(Clone, Debug)]
pub(crate) struct RulePlan {
    /// Order used when the whole instance is the frontier
    /// (`delta_start == 0`).
    pub(crate) full: BoundOrder,
    /// `pivots[p]` = order used when body atom `p` is the semi-naive
    /// pivot (it leads — its candidate range is the delta window).
    pub(crate) pivots: Vec<BoundOrder>,
    /// Live row count per body atom's relation at planning time; the
    /// drift check compares against this.
    pub(crate) snapshot: Vec<u64>,
    /// `(pred, arity, cols)` of every joint index some position wants.
    pub(crate) wanted_indexes: Vec<(Symbol, usize, Box<[u8]>)>,
    /// False for build-time heuristic plans (no data seen yet): the
    /// first stats-driven planning of the rule counts as a compile, not
    /// a re-plan.
    pub(crate) from_stats: bool,
    /// Whether following this plan is expected to beat the adaptive
    /// greedy pick. For 1–2 atom bodies the per-step pick is near-free
    /// *and* sees the true per-round delta sizes a stratum-entry plan
    /// cannot (a recursive rule's delta can dwarf its static relation
    /// mid-closure), so a compiled order only pays off on longer bodies
    /// — or when some position probes through a hash index
    /// ([`ProbeKind::Full`] / [`ProbeKind::Joint`]), which the greedy
    /// path never does. `false` plans fall back to the greedy pick.
    pub(crate) worthwhile: bool,
}

/// Expected rows-per-binding above which a multi-column probe position
/// asks for a joint hash index.
const JOINT_FANOUT: f64 = 16.0;
/// Minimum relation size for a joint index to be worth building.
const JOINT_MIN_ROWS: u64 = 256;
/// A joint index is requested only when the expected posting-list scan
/// work it avoids exceeds this multiple of the relation's size (the
/// build is one pass over the rows, plus a map entry per distinct key).
const JOINT_BUILD_FACTOR: f64 = 4.0;
/// Absolute row-count change below which drift is ignored (tiny
/// relations re-planning every stratum would be pure churn).
const DRIFT_MIN_ROWS: u64 = 64;

/// True iff some relation's live row count moved by more than 2× (in
/// either direction) and by more than [`DRIFT_MIN_ROWS`] rows since the
/// plan's snapshot was taken.
pub(crate) fn drifted(snapshot: &[u64], now: &[u64]) -> bool {
    snapshot.len() != now.len()
        || snapshot.iter().zip(now).any(|(&a, &b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            hi.abs_diff(lo) > DRIFT_MIN_ROWS && hi > lo.saturating_mul(2)
        })
}

/// The live row counts of a rule's body relations (0 when absent).
pub(crate) fn body_row_counts(rule: &CompiledRule, inst: &Instance) -> Vec<u64> {
    rule.body_pos
        .iter()
        .map(|a| {
            inst.relation(a.pred, a.terms.len())
                .map_or(0, |r| r.len() as u64)
        })
        .collect()
}

/// Which join order the chase uses — a [`crate::ChaseConfig`] knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinPlanner {
    /// Statistics-driven bound orders with hash-indexed probes (the
    /// default): plans are compiled at [`crate::ChaseRunner`] build time
    /// and re-planned at stratum entry when cardinalities drift.
    #[default]
    CostBased,
    /// The PR 2 fallback: pick the shortest candidate list per binding
    /// step, adaptively. No plans, no joint indexes.
    Greedy,
    /// Body atoms in *reverse* declaration order — deliberately
    /// plan-shaped but cost-blind. Exists for the differential planner
    /// harness: answers must not depend on the order.
    ReverseOrder,
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Tracks which slots are bound while an order is being laid out.
struct BoundSlots {
    bound: Vec<bool>,
}

impl BoundSlots {
    fn new(n_slots: usize) -> Self {
        BoundSlots {
            bound: vec![false; n_slots],
        }
    }

    fn is_bound(&self, term: CTerm) -> bool {
        match term {
            CTerm::Fixed(_) => true,
            CTerm::Slot(s) => self.bound[s as usize],
        }
    }

    fn bind_atom(&mut self, atom: &CAtom) {
        for &t in &atom.terms {
            if let CTerm::Slot(s) = t {
                self.bound[s as usize] = true;
            }
        }
    }
}

/// Per-body-atom costing inputs, computed **once** per plan (HLL
/// estimates cost a register sweep each — they must not run per
/// `estimate` call inside the greedy layout loop).
struct AtomCost {
    /// Live rows of the atom's relation (0 when absent).
    rows: f64,
    /// Per-column estimated distinct count (≥ 1).
    distinct: Vec<f64>,
    /// True iff some fixed term lies outside its column's observed
    /// value range — the atom cannot match at all.
    impossible: bool,
    /// Exact per-column match counts for *fixed* terms, measured with the
    /// vectorized [`kernels`] when the relation is small and dense
    /// (`None` otherwise — estimation falls back to `1/distinct`). An
    /// exact zero upgrades `impossible` from a range heuristic to a
    /// proof.
    exact_fixed: Vec<Option<f64>>,
}

/// Above this row count the planner stops paying for exact fixed-column
/// counts at plan time and trusts the distinct-count sketches.
const EXACT_COUNT_MAX: usize = 4096;

fn atom_costs(rule: &CompiledRule, inst: &Instance) -> Vec<AtomCost> {
    rule.body_pos
        .iter()
        .map(|atom| {
            let Some(rel) = inst.relation(atom.pred, atom.terms.len()) else {
                return AtomCost {
                    rows: 0.0,
                    distinct: vec![1.0; atom.terms.len()],
                    impossible: false,
                    exact_fixed: vec![None; atom.terms.len()],
                };
            };
            let stats = rel.stats();
            let mut impossible = false;
            let mut exact_fixed = vec![None; atom.terms.len()];
            let exact_ok = !rel.is_empty() && rel.len() <= EXACT_COUNT_MAX && rel.is_dense();
            for (c, &t) in atom.terms.iter().enumerate() {
                if let CTerm::Fixed(v) = t {
                    impossible |= stats.cols[c].excludes(v.raw());
                    if exact_ok {
                        let k = kernels::count_eq(rel.col(c), v);
                        impossible |= k == 0;
                        exact_fixed[c] = Some(k as f64);
                    }
                }
            }
            AtomCost {
                rows: rel.len() as f64,
                distinct: stats
                    .cols
                    .iter()
                    .map(|c| c.distinct().max(1) as f64)
                    .collect(),
                impossible,
                exact_fixed,
            }
        })
        .collect()
}

/// Estimated number of candidate rows for atom `i` with the current
/// bound slots: `live_rows × Π selectivity(bound col)`, where a bound
/// column's selectivity is its exact kernel-measured fraction for fixed
/// terms on small dense relations and `1/distinct` otherwise; clamped
/// at zero for impossible atoms. `None` costs (build time, no data) fall back to
/// a data-free heuristic: prefer more fixed terms, then smaller arity.
fn estimate(atom: &CAtom, cost: Option<&AtomCost>, bound: &BoundSlots) -> f64 {
    let Some(cost) = cost else {
        let fixed = atom
            .terms
            .iter()
            .filter(|t| matches!(t, CTerm::Fixed(_)))
            .count();
        return (1000.0 / (fixed as f64 + 1.0)) * (1.0 + atom.terms.len() as f64 / 10.0);
    };
    if cost.impossible {
        return 0.0;
    }
    let mut est = cost.rows;
    for (c, &t) in atom.terms.iter().enumerate() {
        if bound.is_bound(t) {
            // Fixed columns on small dense relations carry an exact
            // kernel-measured count; everything else uses the sketch.
            est *= match cost.exact_fixed[c] {
                Some(k) => k / cost.rows.max(1.0),
                None => 1.0 / cost.distinct[c],
            };
        }
    }
    est
}

/// The probe kind for `atom` at a position where `bound` slots are
/// already bound and an estimated `bindings` partial matches reach it.
/// Joint indexes are only requested when `cost` is stats-backed *and*
/// the scan work they avoid is expected to exceed their build cost.
fn probe_kind(
    atom: &CAtom,
    cost: Option<&AtomCost>,
    bound: &BoundSlots,
    bindings: f64,
    wanted: &mut Vec<(Symbol, usize, Box<[u8]>)>,
) -> ProbeKind {
    let bound_cols: Vec<u8> = atom
        .terms
        .iter()
        .enumerate()
        .filter(|&(_, &t)| bound.is_bound(t))
        .map(|(c, _)| c as u8)
        .collect();
    if bound_cols.is_empty() {
        return ProbeKind::Scan;
    }
    if bound_cols.len() == atom.terms.len() {
        return ProbeKind::Full;
    }
    if bound_cols.len() >= 2 {
        if let Some(cost) = cost {
            // Fanout of the best single bound column: what the Cols
            // probe would have to scan per incoming binding.
            let best_single = bound_cols
                .iter()
                .map(|&c| cost.rows / cost.distinct[c as usize])
                .fold(f64::INFINITY, f64::min);
            let expected_scans = bindings * best_single;
            if cost.rows >= JOINT_MIN_ROWS as f64
                && best_single >= JOINT_FANOUT
                && expected_scans >= JOINT_BUILD_FACTOR * cost.rows
            {
                let cols: Box<[u8]> = bound_cols.clone().into();
                let key = (atom.pred, atom.terms.len(), cols.clone());
                if !wanted.contains(&key) {
                    wanted.push(key);
                }
                return ProbeKind::Joint(cols);
            }
        }
    }
    ProbeKind::Cols
}

/// Lays out one bound order: the atoms of `force_first` lead (in the
/// given sequence), the rest follow greedily by smallest estimate (ties
/// break on the original body index, keeping plans deterministic).
fn lay_out(
    rule: &CompiledRule,
    force_first: &[u16],
    costs: Option<&[AtomCost]>,
    wanted: &mut Vec<(Symbol, usize, Box<[u8]>)>,
) -> BoundOrder {
    let n = rule.body_pos.len();
    let mut order: Vec<u16> = Vec::with_capacity(n);
    let mut probes: Vec<ProbeKind> = Vec::with_capacity(n);
    let mut bound = BoundSlots::new(rule.n_slots);
    let mut placed = vec![false; n];
    // Estimated number of partial matches reaching the next position
    // (product of the estimates of the placed atoms, floored at 1 so a
    // zero-estimate never hides downstream fanout entirely).
    let mut bindings = 1.0f64;
    let place = |i: u16,
                 order: &mut Vec<u16>,
                 probes: &mut Vec<ProbeKind>,
                 bound: &mut BoundSlots,
                 placed: &mut Vec<bool>,
                 bindings: &mut f64,
                 wanted: &mut Vec<(Symbol, usize, Box<[u8]>)>| {
        let atom = &rule.body_pos[i as usize];
        let cost = costs.map(|c| &c[i as usize]);
        probes.push(probe_kind(atom, cost, bound, *bindings, wanted));
        *bindings *= estimate(atom, cost, bound).max(1.0);
        bound.bind_atom(atom);
        order.push(i);
        placed[i as usize] = true;
    };
    for &i in force_first {
        place(
            i,
            &mut order,
            &mut probes,
            &mut bound,
            &mut placed,
            &mut bindings,
            wanted,
        );
    }
    while order.len() < n {
        let mut best: Option<(f64, usize)> = None;
        for (i, atom) in rule.body_pos.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let est = estimate(atom, costs.map(|c| &c[i]), &bound);
            if best.is_none_or(|(b, _)| est < b) {
                best = Some((est, i));
            }
        }
        let (_, i) = best.expect("an unplaced atom exists");
        place(
            i as u16,
            &mut order,
            &mut probes,
            &mut bound,
            &mut placed,
            &mut bindings,
            wanted,
        );
    }
    BoundOrder { order, probes }
}

/// Compiles a plan for one rule. With `inst` the greedy order is
/// statistics-driven; without it (build time) a constants-first
/// heuristic applies and no joint indexes are requested.
pub(crate) fn plan_rule(rule: &CompiledRule, inst: Option<&Instance>) -> RulePlan {
    let n = rule.body_pos.len();
    let mut wanted = Vec::new();
    let costs = inst.map(|i| atom_costs(rule, i));
    let full = lay_out(rule, &[], costs.as_deref(), &mut wanted);
    let pivots: Vec<BoundOrder> = (0..n as u16)
        .map(|p| lay_out(rule, &[p], costs.as_deref(), &mut wanted))
        .collect();
    let snapshot = inst.map_or_else(|| vec![0; n], |i| body_row_counts(rule, i));
    let indexed = std::iter::once(&full)
        .chain(pivots.iter())
        .flat_map(|o| o.probes.iter())
        .any(|p| matches!(p, ProbeKind::Full | ProbeKind::Joint(_)));
    RulePlan {
        worthwhile: n >= 3 || indexed,
        full,
        pivots,
        snapshot,
        wanted_indexes: wanted,
        from_stats: inst.is_some(),
    }
}

/// [`plan_rule`] with its latency reported to a telemetry recorder
/// (`triq_chase_plan_ns` — the chase times every drift-triggered replan
/// through this entry point; the clock is read only when the recorder
/// is enabled).
pub(crate) fn plan_rule_timed(
    rule: &CompiledRule,
    inst: Option<&Instance>,
    rec: &dyn triq_obs::Recorder,
) -> RulePlan {
    let _t = triq_obs::Timer::start(rec, triq_obs::Phase::ChasePlan);
    plan_rule(rule, inst)
}

/// A deliberately cost-blind plan: body atoms in reverse declaration
/// order (for every pivot too). Correctness must not care.
pub(crate) fn plan_rule_reversed(rule: &CompiledRule) -> RulePlan {
    let n = rule.body_pos.len();
    let reversed: Vec<u16> = (0..n as u16).rev().collect();
    let mut wanted = Vec::new();
    let lay = |first: &[u16], wanted: &mut Vec<(Symbol, usize, Box<[u8]>)>| {
        lay_out(rule, first, None, wanted)
    };
    let full = lay(&reversed, &mut wanted);
    let pivots = (0..n as u16)
        .map(|p| {
            let mut seq = vec![p];
            seq.extend(reversed.iter().copied().filter(|&i| i != p));
            lay(&seq, &mut wanted)
        })
        .collect();
    RulePlan {
        full,
        pivots,
        snapshot: vec![0; n],
        wanted_indexes: wanted,
        from_stats: false,
        // The whole point of this mode is forcing the order, even where
        // a cost-based plan would defer to the greedy pick.
        worthwhile: true,
    }
}

/// Build-time plans for a whole compiled program (data-free heuristic) —
/// what [`crate::ChaseRunner`] precomputes and every chase run starts
/// from.
pub(crate) fn initial_plans(compiled: &[CompiledRule]) -> Vec<RulePlan> {
    compiled.iter().map(|r| plan_rule(r, None)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::compile_rule as compile;
    use crate::instance::Database;
    use crate::parse_program;

    fn rule_of(src: &str) -> CompiledRule {
        compile(&parse_program(src).unwrap().rules[0])
    }

    #[test]
    fn heuristic_plan_prefers_constants() {
        // Without data, the atom with a constant leads.
        let rule = rule_of("p(?X, ?Y), q(?X, c) -> r(?Y).");
        let plan = plan_rule(&rule, None);
        assert_eq!(plan.full.order, vec![1, 0]);
        assert!(!plan.from_stats);
        assert!(plan.wanted_indexes.is_empty());
    }

    #[test]
    fn stats_plan_orders_by_cardinality() {
        // big has 200 rows, small has 2: small leads, then big is probed
        // through its bound join column.
        let rule = rule_of("big(?X, ?Y), small(?Y, ?Z) -> r(?X, ?Z).");
        let mut db = Database::new();
        for i in 0..200 {
            db.add_fact("big", &[&format!("b{i}"), &format!("y{}", i % 4)]);
        }
        db.add_fact("small", &["y0", "z"]);
        db.add_fact("small", &["y1", "z"]);
        let inst = db.to_instance();
        let plan = plan_rule(&rule, Some(&inst));
        assert!(plan.from_stats);
        assert_eq!(plan.full.order, vec![1, 0], "small relation first");
        assert_eq!(plan.full.probes[0], ProbeKind::Scan);
        assert_eq!(plan.full.probes[1], ProbeKind::Cols, "Y bound for big");
        // Each pivot leads its own order.
        assert_eq!(plan.pivots[0].order[0], 0);
        assert_eq!(plan.pivots[1].order[0], 1);
    }

    #[test]
    fn fully_bound_positions_probe_the_tuple_hash() {
        let rule = rule_of("a(?X, ?Y), b(?X, ?Y) -> r(?X).");
        let mut db = Database::new();
        db.add_fact("a", &["1", "2"]);
        db.add_fact("b", &["1", "2"]);
        let inst = db.to_instance();
        let plan = plan_rule(&rule, Some(&inst));
        assert_eq!(plan.full.probes[1], ProbeKind::Full);
    }

    #[test]
    fn high_fanout_positions_request_a_joint_index() {
        // hub: 512 rows, 3 columns; the spokes bind two columns with few
        // distinct values each, so enough bindings with enough fanout
        // reach the hub to pay for building the joint index.
        let rule = rule_of("s1(?A), s2(?B), hub(?A, ?B, ?C) -> r(?C).");
        let mut db = Database::new();
        for i in 0..16 {
            db.add_fact("s1", &[&format!("a{i}")]);
            db.add_fact("s2", &[&format!("b{i}")]);
        }
        for i in 0..512 {
            db.add_fact(
                "hub",
                &[
                    &format!("a{}", i % 16),
                    &format!("b{}", i % 16),
                    &format!("c{i}"),
                ],
            );
        }
        let inst = db.to_instance();
        let plan = plan_rule(&rule, Some(&inst));
        assert_eq!(plan.full.order[2], 2, "hub probed last");
        assert!(
            matches!(plan.full.probes[2], ProbeKind::Joint(ref c) if **c == [0, 1]),
            "got {:?}",
            plan.full.probes[2]
        );
        assert_eq!(plan.wanted_indexes.len(), 1);
    }

    #[test]
    fn out_of_range_constants_cost_zero() {
        // q is big (100 rows, 2 distinct tags → est 50 when probed by its
        // constant) and p small (5 rows): without range pruning p leads.
        // But the constant in the rule was never inserted into q's tag
        // column, so its estimate collapses to 0 and q fails fastest.
        let mut db = Database::new();
        for i in 0..100 {
            db.add_fact(
                "q",
                &[&format!("v{i}"), if i % 2 == 0 { "t0" } else { "t1" }],
            );
        }
        for i in 0..5 {
            db.add_fact("p", &[&format!("v{i}")]);
        }
        let absent = format!("never_inserted_{}", line!());
        let rule = rule_of(&format!("p(?X), q(?X, {absent}) -> r(?X)."));
        let inst = db.to_instance();
        let plan = plan_rule(&rule, Some(&inst));
        assert_eq!(plan.full.order[0], 1, "impossible atom fails fastest");
    }

    #[test]
    fn exact_counts_prove_in_range_constants_impossible() {
        // The constant interns *between* the two values actually stored
        // in q's tag column, so the range sketch cannot exclude it —
        // only the exact kernel count over the small dense relation
        // proves zero matches. q is big (200 rows, 2 distinct tags →
        // sketch estimate 100) and p small (5 rows): without the exact
        // count p would lead.
        let n = line!();
        let mut db = Database::new();
        for i in 0..100 {
            db.add_fact("q", &[&format!("v{i}"), &format!("tag_a_{n}")]);
        }
        // Interned after tag_a and before tag_c: in range, never in q.
        db.add_fact("marker", &[&format!("tag_b_{n}")]);
        for i in 0..100 {
            db.add_fact("q", &[&format!("w{i}"), &format!("tag_c_{n}")]);
        }
        for i in 0..5 {
            db.add_fact("p", &[&format!("v{i}")]);
        }
        let rule = rule_of(&format!("p(?X), q(?X, tag_b_{n}) -> r(?X)."));
        let inst = db.to_instance();
        let plan = plan_rule(&rule, Some(&inst));
        assert_eq!(plan.full.order[0], 1, "exact zero count fails fastest");
    }

    #[test]
    fn drift_detector_fires_on_2x_growth() {
        assert!(!drifted(&[100, 100], &[100, 120]));
        assert!(drifted(&[100, 100], &[100, 300]));
        assert!(drifted(&[1000, 10], &[400, 10]));
        // Tiny absolute changes never fire.
        assert!(!drifted(&[1, 1], &[3, 3]));
        assert!(drifted(&[1], &[1, 1]), "shape change always re-plans");
    }

    #[test]
    fn reverse_plan_reverses_and_keeps_pivots_first() {
        let rule = rule_of("a(?X, ?Y), b(?Y, ?Z), c(?Z, ?W) -> r(?X, ?W).");
        let plan = plan_rule_reversed(&rule);
        assert_eq!(plan.full.order, vec![2, 1, 0]);
        for p in 0..3u16 {
            assert_eq!(plan.pivots[p as usize].order[0], p);
        }
    }
}
