//! Datalog∃,¬s,⊥ — the rule language underlying TriQ 1.0 and TriQ-Lite 1.0
//! (§3.2, §4, §6 of the paper).
//!
//! This crate implements, from scratch:
//!
//! * the syntax of Datalog with existential quantification in rule heads,
//!   stratified negation, built-in (in)equality and constraints (⊥), with a
//!   text parser whose concrete syntax mirrors the paper's rules;
//! * stratification (§3.2) and the stratified chase pipeline
//!   `S₀, …, S_ℓ`;
//! * the *affected positions* analysis and the harmless / harmful /
//!   dangerous variable classification (§4.1);
//! * deciders for every language class the paper discusses: guarded,
//!   weakly-guarded, frontier-guarded, nearly-frontier-guarded,
//!   weakly-frontier-guarded (TriQ 1.0), warded (TriQ-Lite 1.0) and warded
//!   with minimal interaction (§6.4), plus the grounded-negation check;
//! * chase procedures with provenance: a skolem (semi-oblivious) chase with
//!   null-depth bounding and a restricted chase, both with step budgets;
//! * proof trees in the sense of Definition 6.11 (Figure 1) and the
//!   alternating `ProofTree` decision procedure of §6.3, realized as a
//!   memoized least fixpoint;
//! * the paper's example programs: the k-clique query of Example 4.3, the
//!   alternating-Turing-machine program of Theorem 6.15 (together with a
//!   direct ATM simulator used for cross-validation), the UGCP
//!   instrumentation of §6.2 and the program-expressive-power witness of
//!   Theorem 7.1.

#![warn(missing_docs)]

pub mod atm;
mod atom;
pub mod builders;
mod chase;
mod classify;
pub mod demand;
mod eval;
pub mod incremental;
mod instance;
pub mod kernels;
mod parser;
pub mod pep;
pub mod persist;
mod planner;
mod positions;
mod program;
mod proof;
mod prooftree;
pub mod reference;
mod stratify;
pub mod transform;
pub mod ugcp;

pub use atom::{Atom, Builtin};
pub use chase::{
    chase, chase_stratified, ChaseConfig, ChaseOutcome, ChaseRunner, ChaseStats,
    ExistentialStrategy,
};
pub use classify::{
    classify_program, rule_variable_classes, LanguageClass, ProgramClassification, RuleClasses,
};
pub use demand::{DemandFallback, DemandMode, DemandProgram};
pub use eval::{AnswerIter, Answers, Query};
pub use incremental::{DeltaSummary, MaintenanceStats, MaterializedView};
pub use instance::{AtomId, Database, Derivation, GroundAtom, Instance, Relation};
pub use parser::{parse_atom, parse_program, parse_query};
pub use planner::JoinPlanner;
pub use positions::{affected_positions, Pos, PositionSet};
pub use program::{Constraint, Program, Rule};
pub use proof::{proof_tree, render_proof_tree, DependencyIndex, ProofNode, ProofTree};
pub use prooftree::{
    eliminate_negation, prooftree_decide, prooftree_decide_with_negation, single_head_normal_form,
    ProofTreeConfig,
};
pub use stratify::{stratify, stratify_run_count, Stratification};

pub use triq_common::{
    intern, Delta, Fact, NullId, Result, Symbol, Term, TermId, TriqError, VarId,
};
