//! Alternating Turing machines (§6.4) — the machine model behind
//! Theorem 6.15 — together with a direct simulator used to cross-validate
//! the fixed warded-with-minimal-interaction Datalog∃ program of
//! [`crate::builders::atm_program`].
//!
//! Following the paper, an ATM is `M = (S, Λ, δ, s₀)` with states
//! partitioned into universal, existential, accepting and rejecting ones,
//! and a *binary* transition relation: `δ(s, α)` yields exactly two
//! successor moves `((s₁,α₁,m₁), (s₂,α₂,m₂))`. A universal configuration
//! accepts iff both successors accept; an existential one iff at least one
//! does. The machine is *well-behaved*: a move beyond the tape boundary
//! makes that successor branch fail (it never accepts), matching the
//! Datalog encoding where the corresponding `next-cell` atom is missing.

use std::collections::HashMap;
use triq_common::{intern, Symbol};

/// Shorthand used by [`Machine::new`]: `(state, written-symbol, move)`.
pub type ActionSpec<'a> = (&'a str, &'a str, Move);
/// Shorthand used by [`Machine::new`]: one transition table entry.
pub type TransitionSpec<'a> = (&'a str, &'a str, ActionSpec<'a>, ActionSpec<'a>);

/// State kinds of an ATM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateKind {
    /// Existential state (∃): one successor must accept.
    Exists,
    /// Universal state (∀): both successors must accept.
    Forall,
    /// Accepting state.
    Accept,
    /// Rejecting state.
    Reject,
}

/// Cursor directions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// `-1` in the paper.
    Left,
    /// `+1` in the paper.
    Right,
}

/// One of the two successor moves of a transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Action {
    /// Successor state.
    pub state: Symbol,
    /// Symbol written to the current cell.
    pub write: Symbol,
    /// Cursor move.
    pub dir: Move,
}

/// An alternating Turing machine with binary branching.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Kind of every state.
    pub kinds: HashMap<Symbol, StateKind>,
    /// `δ(s, α) = (first, second)`.
    pub delta: HashMap<(Symbol, Symbol), (Action, Action)>,
    /// Initial state `s₀`.
    pub initial: Symbol,
}

/// A configuration: tape content, cursor position and internal state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// Internal state.
    pub state: Symbol,
    /// Tape cells.
    pub tape: Vec<Symbol>,
    /// Cursor position (0-based).
    pub cursor: usize,
}

impl Machine {
    /// Builds a machine; `kinds` lists `(state, kind)` and `delta` lists
    /// `(state, read, first-action, second-action)`.
    pub fn new(
        initial: &str,
        kinds: &[(&str, StateKind)],
        delta: &[TransitionSpec<'_>],
    ) -> Machine {
        let mut m = Machine {
            initial: intern(initial),
            kinds: HashMap::new(),
            delta: HashMap::new(),
        };
        for (s, k) in kinds {
            m.kinds.insert(intern(s), *k);
        }
        for (s, a, first, second) in delta {
            let mk = |(st, wr, dir): (&str, &str, Move)| Action {
                state: intern(st),
                write: intern(wr),
                dir,
            };
            m.delta
                .insert((intern(s), intern(a)), (mk(*first), mk(*second)));
        }
        m
    }

    /// The initial configuration on `input`.
    pub fn initial_config(&self, input: &[&str]) -> Config {
        Config {
            state: self.initial,
            tape: input.iter().map(|s| intern(s)).collect(),
            cursor: 0,
        }
    }

    fn successor(&self, c: &Config, action: Action) -> Option<Config> {
        let mut tape = c.tape.clone();
        tape[c.cursor] = action.write;
        let cursor = match action.dir {
            Move::Left => c.cursor.checked_sub(1)?,
            Move::Right => {
                if c.cursor + 1 >= tape.len() {
                    return None;
                }
                c.cursor + 1
            }
        };
        Some(Config {
            state: action.state,
            tape,
            cursor,
        })
    }

    /// Whether the machine accepts from `config` within `depth` transition
    /// steps (the bounded acceptance the Datalog encoding simulates with a
    /// null-depth budget).
    pub fn accepts_within(&self, config: &Config, depth: u32) -> bool {
        let mut memo: HashMap<(Config, u32), bool> = HashMap::new();
        self.accepts_rec(config, depth, &mut memo)
    }

    fn accepts_rec(
        &self,
        config: &Config,
        depth: u32,
        memo: &mut HashMap<(Config, u32), bool>,
    ) -> bool {
        let kind = self
            .kinds
            .get(&config.state)
            .copied()
            .unwrap_or(StateKind::Reject);
        match kind {
            StateKind::Accept => return true,
            StateKind::Reject => return false,
            _ => {}
        }
        if depth == 0 {
            return false;
        }
        if let Some(&r) = memo.get(&(config.clone(), depth)) {
            return r;
        }
        let result = match self.delta.get(&(config.state, config.tape[config.cursor])) {
            None => false, // no transition: the branch never accepts
            Some(&(first, second)) => {
                let branch = |a: Action, memo: &mut HashMap<(Config, u32), bool>| {
                    self.successor(config, a)
                        .is_some_and(|c| self.accepts_rec(&c, depth - 1, memo))
                };
                match kind {
                    StateKind::Exists => branch(first, memo) || branch(second, memo),
                    StateKind::Forall => branch(first, memo) && branch(second, memo),
                    _ => unreachable!(),
                }
            }
        };
        memo.insert((config.clone(), depth), result);
        result
    }

    /// Convenience: bounded acceptance from the initial configuration.
    pub fn accepts_input(&self, input: &[&str], depth: u32) -> bool {
        self.accepts_within(&self.initial_config(input), depth)
    }
}

/// A machine that accepts iff the first tape cell is `1` (one existential
/// step into the accept state).
pub fn machine_first_cell_one() -> Machine {
    Machine::new(
        "s0",
        &[
            ("s0", StateKind::Exists),
            ("s_accept", StateKind::Accept),
            ("s_reject", StateKind::Reject),
        ],
        &[
            (
                "s0",
                "1",
                ("s_accept", "1", Move::Right),
                ("s_accept", "1", Move::Right),
            ),
            (
                "s0",
                "0",
                ("s_reject", "0", Move::Right),
                ("s_reject", "0", Move::Right),
            ),
        ],
    )
}

/// A machine that accepts iff every cell before the end-marker `$` is `1`:
/// an existential walker moves right while reading `1`, accepts on `$`
/// (moving left, staying on tape) and rejects on `0`. Exercises the
/// cursor-movement and frame rules of the Datalog encoding. Inputs must be
/// `$`-terminated, e.g. `["1", "1", "$"]`.
pub fn machine_all_ones() -> Machine {
    Machine::new(
        "s0",
        &[
            ("s0", StateKind::Exists),
            ("s_accept", StateKind::Accept),
            ("s_reject", StateKind::Reject),
        ],
        &[
            (
                "s0",
                "1",
                ("s0", "1", Move::Right),
                ("s0", "1", Move::Right),
            ),
            (
                "s0",
                "$",
                ("s_accept", "$", Move::Left),
                ("s_accept", "$", Move::Left),
            ),
            (
                "s0",
                "0",
                ("s_reject", "0", Move::Right),
                ("s_reject", "0", Move::Right),
            ),
        ],
    )
}

/// A machine whose initial universal state forks into two checks that must
/// *both* accept: "cell 2 is 1" and "cell 2 is not 0-then-reject"; used to
/// exercise ∀-semantics end to end.
pub fn machine_forall_both() -> Machine {
    Machine::new(
        "s0",
        &[
            ("s0", StateKind::Forall),
            ("chk1", StateKind::Exists),
            ("chk2", StateKind::Exists),
            ("s_accept", StateKind::Accept),
            ("s_reject", StateKind::Reject),
        ],
        &[
            (
                "s0",
                "1",
                ("chk1", "1", Move::Right),
                ("chk2", "1", Move::Right),
            ),
            (
                "chk1",
                "1",
                ("s_accept", "1", Move::Right),
                ("s_accept", "1", Move::Right),
            ),
            (
                "chk1",
                "0",
                ("s_accept", "0", Move::Right),
                ("s_accept", "0", Move::Right),
            ),
            (
                "chk2",
                "1",
                ("s_accept", "1", Move::Right),
                ("s_accept", "1", Move::Right),
            ),
            (
                "chk2",
                "0",
                ("s_reject", "0", Move::Right),
                ("s_reject", "0", Move::Right),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cell_machine() {
        let m = machine_first_cell_one();
        assert!(m.accepts_input(&["1", "0"], 4));
        assert!(!m.accepts_input(&["0", "1"], 4));
        assert!(!m.accepts_input(&["1", "0"], 0)); // budget too small
    }

    #[test]
    fn all_ones_machine() {
        let m = machine_all_ones();
        assert!(m.accepts_input(&["1", "1", "$"], 8));
        assert!(!m.accepts_input(&["0", "1", "$"], 8));
        assert!(!m.accepts_input(&["1", "0", "$"], 8));
        assert!(m.accepts_input(&["1", "$"], 8));
    }

    #[test]
    fn forall_machine_requires_both() {
        let m = machine_forall_both();
        assert!(m.accepts_input(&["1", "1", "1"], 4));
        // Cell 2 reads 0: chk2 rejects while chk1 accepts -> ∀ fails.
        assert!(!m.accepts_input(&["1", "0", "1"], 4));
    }

    #[test]
    fn walking_off_the_tape_fails_the_branch() {
        let m = machine_all_ones();
        // Tape without the $ marker: the walker falls off the right edge,
        // so no successor configuration exists and the input is rejected.
        assert!(!m.accepts_input(&["1"], 4));
        assert!(!m.accepts_input(&["1", "1"], 8));
        // A lone $ cannot accept either: the accept-move goes left off the
        // tape.
        assert!(!m.accepts_input(&["$"], 4));
        assert!(m.accepts_input(&["1", "$"], 8));
    }

    #[test]
    fn depth_budget_is_respected() {
        let m = machine_all_ones();
        // 1 1 1 $ needs 4 steps (3 walks + 1 accept-move).
        assert!(m.accepts_input(&["1", "1", "1", "$"], 4));
        assert!(!m.accepts_input(&["1", "1", "1", "$"], 2));
    }
}
