//! A deliberately naive reference evaluator for differential testing.
//!
//! This module re-implements the stratified chase of §3.2 with **none**
//! of the production engine's machinery: atoms are plain [`GroundAtom`]
//! values in a `Vec` + `HashSet`, joins are nested loops over *all*
//! stored atoms (no columnar store, no per-column indexes, no semi-naive
//! deltas, no rule compilation, no parallelism), and substitutions are
//! `HashMap<VarId, Term>` environments. It is the executable reading of
//! the paper's definitions, kept as the oracle the fast engine is
//! differential-tested against (`tests/differential_chase.rs`): on every
//! input the two must produce the same ground atoms, the same answers and
//! the same ⊤/consistent classification.
//!
//! Keep this module simple — its only job is to be obviously correct.

use crate::instance::GroundAtom;
use crate::{Answers, Builtin, ChaseConfig, ExistentialStrategy, Program, Rule};
use std::collections::{BTreeSet, HashMap, HashSet};
use triq_common::{NullId, Result, Symbol, Term, TriqError, VarId};

/// The result of a naive chase run.
#[derive(Debug)]
pub struct ReferenceOutcome {
    /// All atoms, database first, in derivation order.
    pub atoms: Vec<GroundAtom>,
    /// Whether some constraint fired (`Π(D) = ⊤`).
    pub inconsistent: bool,
    /// Whether some existential application hit the depth bound.
    pub truncated: bool,
    /// Nulls invented.
    pub nulls: usize,
}

impl ReferenceOutcome {
    /// The fully-ground atoms, rendered — convenient for set comparison
    /// against the fast engine (null *names* may differ between
    /// implementations; ground atoms may not).
    pub fn ground_part(&self) -> BTreeSet<String> {
        self.atoms
            .iter()
            .filter(|a| a.is_fully_ground())
            .map(|a| a.to_string())
            .collect()
    }

    /// The answers to `output` (§3.2): ⊤ under inconsistency, else all
    /// fully-constant tuples of the output predicate.
    pub fn answers(&self, output: Symbol) -> Answers {
        if self.inconsistent {
            return Answers::Top;
        }
        let tuples = self
            .atoms
            .iter()
            .filter(|a| a.pred == output)
            .filter_map(|a| {
                a.terms
                    .iter()
                    .map(|t| t.as_const())
                    .collect::<Option<Vec<Symbol>>>()
            })
            .collect();
        Answers::Tuples(tuples)
    }
}

type Env = HashMap<VarId, Term>;

/// Naive evaluator state: a set of ground atoms and the null registry.
struct State {
    atoms: Vec<GroundAtom>,
    seen: HashSet<GroundAtom>,
    null_depth: Vec<u32>,
    skolem: HashMap<(usize, Vec<Term>), Vec<Term>>,
    nulls: usize,
    truncated: bool,
}

impl State {
    fn insert(&mut self, atom: GroundAtom) -> bool {
        if self.seen.contains(&atom) {
            return false;
        }
        self.seen.insert(atom.clone());
        self.atoms.push(atom);
        true
    }

    fn fresh_null(&mut self, depth: u32) -> Term {
        let id = NullId(self.null_depth.len() as u32);
        self.null_depth.push(depth);
        self.nulls += 1;
        Term::Null(id)
    }

    fn next_depth(&self, terms: &[Term]) -> u32 {
        terms
            .iter()
            .filter_map(|t| t.as_null())
            .map(|n| self.null_depth[n.0 as usize])
            .max()
            .map_or(1, |d| d + 1)
    }
}

fn subst(t: Term, env: &Env) -> Option<Term> {
    match t {
        Term::Var(v) => env.get(&v).copied(),
        ground => Some(ground),
    }
}

/// Grounds an atom under a total environment.
fn ground(atom: &crate::Atom, env: &Env) -> GroundAtom {
    GroundAtom::new(
        atom.pred,
        atom.terms
            .iter()
            .map(|&t| subst(t, env).expect("environment must be total here"))
            .collect(),
    )
}

/// Enumerates every environment matching `atoms[idx..]` against the first
/// `limit` stored atoms, by brute-force nested loops. Calls `found` per
/// complete match; a `false` return stops the search.
fn match_all(
    state: &State,
    atoms: &[crate::Atom],
    idx: usize,
    limit: usize,
    env: &mut Env,
    found: &mut dyn FnMut(&Env) -> bool,
) -> bool {
    let Some(atom) = atoms.get(idx) else {
        return found(env);
    };
    'stored: for stored in state.atoms[..limit].iter() {
        if stored.pred != atom.pred || stored.terms.len() != atom.terms.len() {
            continue;
        }
        let mut bound: Vec<VarId> = Vec::new();
        for (&pat, &val) in atom.terms.iter().zip(stored.terms.iter()) {
            match pat {
                Term::Var(v) => match env.get(&v) {
                    Some(&b) if b != val => {
                        for v in bound.drain(..) {
                            env.remove(&v);
                        }
                        continue 'stored;
                    }
                    Some(_) => {}
                    None => {
                        env.insert(v, val);
                        bound.push(v);
                    }
                },
                fixed if fixed != val => {
                    for v in bound.drain(..) {
                        env.remove(&v);
                    }
                    continue 'stored;
                }
                _ => {}
            }
        }
        let keep_going = match_all(state, atoms, idx + 1, limit, env, found);
        for v in bound.drain(..) {
            env.remove(&v);
        }
        if !keep_going {
            return false;
        }
    }
    true
}

fn builtins_hold(builtins: &[Builtin], env: &Env) -> bool {
    builtins.iter().all(|b| match *b {
        Builtin::Eq(x, y) => subst(x, env) == subst(y, env),
        Builtin::Neq(x, y) => subst(x, env) != subst(y, env),
    })
}

fn negatives_absent(state: &State, rule: &Rule, env: &Env) -> bool {
    rule.body_neg
        .iter()
        .all(|neg| !state.seen.contains(&ground(neg, env)))
}

/// Applies one rule match (mirrors the fast engine's semantics: skolem
/// memoization / restricted satisfaction check, depth bound, atom budget).
fn apply_rule(
    state: &mut State,
    rule_idx: usize,
    rule: &Rule,
    env: &Env,
    config: &ChaseConfig,
) -> Result<()> {
    let mut env = env.clone();
    if !rule.exist_vars.is_empty() {
        let frontier: Vec<VarId> = rule.frontier().into_iter().collect();
        let frontier_vals: Vec<Term> = frontier
            .iter()
            .map(|&v| *env.get(&v).expect("frontier bound"))
            .collect();
        match config.strategy {
            ExistentialStrategy::Skolem => {
                if let Some(known) = state.skolem.get(&(rule_idx, frontier_vals.clone())) {
                    for (&v, &t) in rule.exist_vars.iter().zip(known.iter()) {
                        env.insert(v, t);
                    }
                } else {
                    let depth = state.next_depth(&frontier_vals);
                    if depth > config.max_null_depth {
                        state.truncated = true;
                        return Ok(());
                    }
                    let mut nulls = Vec::new();
                    for &v in &rule.exist_vars {
                        let null = state.fresh_null(depth);
                        env.insert(v, null);
                        nulls.push(null);
                    }
                    state.skolem.insert((rule_idx, frontier_vals), nulls);
                }
            }
            ExistentialStrategy::Restricted => {
                let mut satisfied = false;
                let limit = state.atoms.len();
                match_all(state, &rule.head, 0, limit, &mut env.clone(), &mut |_| {
                    satisfied = true;
                    false
                });
                if satisfied {
                    return Ok(());
                }
                let depth = state.next_depth(&frontier_vals);
                if depth > config.max_null_depth {
                    state.truncated = true;
                    return Ok(());
                }
                for &v in &rule.exist_vars {
                    let null = state.fresh_null(depth);
                    env.insert(v, null);
                }
            }
        }
    }
    for head in &rule.head {
        state.insert(ground(head, &env));
        if state.atoms.len() > config.max_atoms {
            return Err(TriqError::ResourceExhausted(format!(
                "naive chase exceeded the atom budget of {}",
                config.max_atoms
            )));
        }
    }
    Ok(())
}

/// Chases `db` with `program` by brute force — the reference semantics
/// the production [`chase`](crate::chase) is differential-tested against.
pub fn naive_chase(
    db: &crate::Database,
    program: &Program,
    config: ChaseConfig,
) -> Result<ReferenceOutcome> {
    let strat = crate::stratify(program)?;
    let mut state = State {
        atoms: Vec::new(),
        seen: HashSet::new(),
        null_depth: Vec::new(),
        skolem: HashMap::new(),
        nulls: 0,
        truncated: false,
    };
    for atom in db.iter() {
        state.insert(atom);
    }
    for stratum in 0..=strat.max_stratum {
        loop {
            // Enumerate over a snapshot: a round never consumes its own
            // output (any fair order reaches the same fixpoint).
            let limit = state.atoms.len();
            let mut pending: Vec<(usize, Env)> = Vec::new();
            for (ri, rule) in program.rules.iter().enumerate() {
                if strat.rule_stratum[ri] != stratum {
                    continue;
                }
                let mut env = Env::new();
                match_all(&state, &rule.body_pos, 0, limit, &mut env, &mut |env| {
                    pending.push((ri, env.clone()));
                    true
                });
            }
            let before = state.atoms.len();
            for (ri, env) in pending {
                let rule = &program.rules[ri];
                if builtins_hold(&rule.builtins, &env) && negatives_absent(&state, rule, &env) {
                    apply_rule(&mut state, ri, rule, &env, &config)?;
                }
            }
            if state.atoms.len() == before {
                break;
            }
        }
    }
    let mut inconsistent = false;
    let limit = state.atoms.len();
    for c in &program.constraints {
        let mut env = Env::new();
        match_all(&state, &c.body, 0, limit, &mut env, &mut |env| {
            if builtins_hold(&c.builtins, env) {
                inconsistent = true;
                false
            } else {
                true
            }
        });
        if inconsistent {
            break;
        }
    }
    Ok(ReferenceOutcome {
        inconsistent,
        truncated: state.truncated,
        nulls: state.nulls,
        atoms: state.atoms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chase, parse_program, Database};

    #[test]
    fn naive_matches_fast_on_transitive_closure() {
        let p =
            parse_program("e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).").unwrap();
        let mut db = Database::new();
        db.add_fact("e", &["a", "b"]);
        db.add_fact("e", &["b", "c"]);
        let naive = naive_chase(&db, &p, ChaseConfig::default()).unwrap();
        let fast = chase(&db, &p, ChaseConfig::default()).unwrap();
        let fast_ground: BTreeSet<String> = fast
            .instance
            .ground_part()
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(naive.ground_part(), fast_ground);
    }

    #[test]
    fn naive_detects_inconsistency() {
        let p = parse_program("a(?X), b(?X) -> false.").unwrap();
        let mut db = Database::new();
        db.add_fact("a", &["x"]);
        db.add_fact("b", &["x"]);
        let naive = naive_chase(&db, &p, ChaseConfig::default()).unwrap();
        assert!(naive.inconsistent);
        assert!(naive.answers(triq_common::intern("q")).is_top());
    }

    #[test]
    fn naive_existentials_memoize_and_bound() {
        let p = parse_program(
            "person(?X) -> exists ?Y parent(?X, ?Y).\n parent(?X, ?Y) -> person(?Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("person", &["alice"]);
        let cfg = ChaseConfig {
            max_null_depth: 4,
            ..ChaseConfig::default()
        };
        let naive = naive_chase(&db, &p, cfg).unwrap();
        let fast = chase(&db, &p, cfg).unwrap();
        assert!(naive.truncated && fast.stats.truncated);
        assert_eq!(naive.nulls, fast.stats.nulls);
    }
}
