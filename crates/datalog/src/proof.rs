//! Proof trees (Definition 6.11) reconstructed from chase provenance.
//!
//! A proof tree of a ground atom `p(t)` w.r.t. a database `D` and program
//! `Π` is a tree-shaped representation of the part of `Π(D)` that entails
//! `p(t)`: the root is labeled `p(t)`, each inner node is the head of a rule
//! application whose children are the matched body atoms, and leaves are
//! database atoms. Figure 1 of the paper shows the proof tree of `p(a,a)`
//! for Example 6.10; [`render_proof_tree`] reproduces that figure as text.

use crate::instance::{AtomId, GroundAtom, Instance};
use crate::Program;

/// A node of a proof tree.
#[derive(Clone, Debug, PartialEq)]
pub struct ProofNode {
    /// The atom this node is labeled with (λ_N in Definition 6.11).
    pub atom: GroundAtom,
    /// The rule that derived it (λ_E on the edges to the children);
    /// `None` for database leaves.
    pub rule: Option<usize>,
    /// Children: the matched body atoms of the rule application.
    pub children: Vec<ProofNode>,
}

impl ProofNode {
    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProofNode::size).sum::<usize>()
    }

    /// Height of the subtree (a leaf has height 0).
    pub fn height(&self) -> usize {
        self.children
            .iter()
            .map(|c| c.height() + 1)
            .max()
            .unwrap_or(0)
    }

    /// All leaf atoms (database facts used by the proof).
    pub fn leaves(&self) -> Vec<&GroundAtom> {
        if self.children.is_empty() {
            vec![&self.atom]
        } else {
            self.children.iter().flat_map(ProofNode::leaves).collect()
        }
    }
}

/// A proof tree of an atom with respect to a database and a program.
#[derive(Clone, Debug, PartialEq)]
pub struct ProofTree {
    /// The root node (labeled with the proved atom).
    pub root: ProofNode,
}

impl ProofTree {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Tree height.
    pub fn height(&self) -> usize {
        self.root.height()
    }
}

fn build(instance: &Instance, id: AtomId) -> ProofNode {
    match instance.derivation(id) {
        None => ProofNode {
            atom: instance.atom(id),
            rule: None,
            children: Vec::new(),
        },
        Some(d) => ProofNode {
            atom: instance.atom(id),
            rule: Some(d.rule),
            children: d.body.iter().map(|&b| build(instance, b)).collect(),
        },
    }
}

/// Extracts the proof tree of the atom with id `id` from a chased
/// instance's provenance. Provenance bodies always have strictly smaller
/// ids, so the recursion is well-founded — this is exactly the paper's
/// "reverse the edges and unfold the proof into a tree" construction
/// (discussion after Example 6.10).
pub fn proof_tree(instance: &Instance, id: AtomId) -> ProofTree {
    ProofTree {
        root: build(instance, id),
    }
}

/// Reverse provenance: for every atom, the atoms whose *recorded*
/// derivation uses it as a body atom — the edge set of Definition 6.11
/// with the arrows turned around, materialized as adjacency lists.
///
/// This is the "provenance directory" the delete-and-rederive (DRed)
/// maintenance of [`crate::incremental`] walks: deleting an atom must
/// over-delete its transitive dependents ([`DependencyIndex::cone`])
/// before rederivation decides which of them survive. The index is
/// append-only, mirroring the instance: after the instance grows, call
/// [`DependencyIndex::extend_to`] to index the new derivations.
#[derive(Clone, Debug, Default)]
pub struct DependencyIndex {
    /// `dependents[id]` = ids whose derivation body mentions `id`.
    dependents: Vec<Vec<AtomId>>,
}

impl DependencyIndex {
    /// An index over no atoms.
    pub fn new() -> DependencyIndex {
        DependencyIndex::default()
    }

    /// Builds the index for every atom of `instance`.
    pub fn from_instance(instance: &Instance) -> DependencyIndex {
        let mut index = DependencyIndex::new();
        index.extend_to(instance);
        index
    }

    /// Number of atom ids covered so far.
    pub fn len(&self) -> usize {
        self.dependents.len()
    }

    /// True iff no atoms are covered.
    pub fn is_empty(&self) -> bool {
        self.dependents.is_empty()
    }

    /// Indexes the derivations of atoms appended since the last call
    /// (ids `self.len()..instance.len()`).
    pub fn extend_to(&mut self, instance: &Instance) {
        let from = self.dependents.len() as AtomId;
        let to = instance.len() as AtomId;
        self.dependents.resize_with(to as usize, Vec::new);
        for id in from..to {
            if let Some(d) = instance.derivation(id) {
                for &body in &d.body {
                    self.dependents[body as usize].push(id);
                }
            }
        }
    }

    /// Direct dependents of one atom.
    pub fn dependents_of(&self, id: AtomId) -> &[AtomId] {
        self.dependents
            .get(id as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The transitive support cone **above** `seeds`: every atom whose
    /// recorded derivation reaches a seed, excluding the seeds
    /// themselves. Sorted ascending and deduplicated. (Dead atoms are
    /// not filtered here — the caller decides what tombstoning means.)
    ///
    /// Work is proportional to the cone, not the instance — the visited
    /// set is hashed, so a single-fact deletion on a view of millions of
    /// atoms does not pay an O(|instance|) scan per delta.
    pub fn cone(&self, seeds: &[AtomId]) -> Vec<AtomId> {
        let mut visited: std::collections::HashSet<AtomId> =
            std::collections::HashSet::with_capacity(seeds.len() * 2);
        let mut queue: Vec<AtomId> = Vec::new();
        for &s in seeds {
            if (s as usize) < self.dependents.len() && visited.insert(s) {
                queue.push(s);
            }
        }
        let mut out: Vec<AtomId> = Vec::new();
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for &dep in self.dependents_of(cur) {
                if visited.insert(dep) {
                    queue.push(dep);
                    out.push(dep);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

fn render(node: &ProofNode, program: &Program, prefix: &str, is_last: bool, out: &mut String) {
    let connector = if prefix.is_empty() {
        ""
    } else if is_last {
        "`-- "
    } else {
        "|-- "
    };
    out.push_str(prefix);
    out.push_str(connector);
    out.push_str(&node.atom.to_string());
    if let Some(r) = node.rule {
        out.push_str(&format!("   [via ρ{}]", r + 1));
        let _ = program; // rule index display matches the paper's ρ-numbering
    } else {
        out.push_str("   [database]");
    }
    out.push('\n');
    let child_prefix = if prefix.is_empty() {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "    " } else { "|   " })
    };
    for (i, c) in node.children.iter().enumerate() {
        render(c, program, &child_prefix, i + 1 == node.children.len(), out);
    }
}

/// Renders a proof tree as ASCII (Figure 1(b)-style).
pub fn render_proof_tree(tree: &ProofTree, program: &Program) -> String {
    let mut out = String::new();
    render(&tree.root, program, "", true, &mut out);
    // Children of the root need a prefix; re-render with a sentinel.
    if !tree.root.children.is_empty() {
        out.clear();
        out.push_str(&tree.root.atom.to_string());
        if let Some(r) = tree.root.rule {
            out.push_str(&format!("   [via ρ{}]", r + 1));
        }
        out.push('\n');
        for (i, c) in tree.root.children.iter().enumerate() {
            render(c, program, "", i + 1 == tree.root.children.len(), &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase, ChaseConfig};
    use crate::instance::Database;
    use crate::parse_program;
    use triq_common::{intern, Term};

    /// Example 6.10 / Figure 1: the proof tree of p(a,a).
    #[test]
    fn example_6_10_figure_1() {
        let program = parse_program(
            "s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).\n\
             s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).\n\
             t(?X) -> exists ?Z p(?X, ?Z).\n\
             p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).\n\
             r(?X, ?Y, ?Z) -> p(?X, ?Z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("s", &["a", "a", "a"]);
        db.add_fact("t", &["a"]);
        let out = chase(&db, &program, ChaseConfig::default()).unwrap();
        let goal = GroundAtom::new(
            intern("p"),
            vec![Term::constant("a"), Term::constant("a")].into(),
        );
        let id = out.instance.find(&goal).expect("p(a,a) must be derivable");
        let tree = proof_tree(&out.instance, id);
        // Figure 1(b): root p(a,a) via ρ5 from r(a,z2,a), which came via ρ4
        // from p(a,z2) and q(a,a); p(a,z2) via ρ3 from t(a); q(a,a) via ρ2
        // from s(a,a,z1) and s(a,z1,z3); both s-atoms via ρ1 from s(a,a,a).
        assert_eq!(tree.root.atom, goal);
        assert_eq!(tree.root.rule, Some(4)); // ρ5 (0-based 4)
        let r_node = &tree.root.children[0];
        assert_eq!(r_node.atom.pred, intern("r"));
        assert_eq!(r_node.rule, Some(3)); // ρ4
        assert_eq!(r_node.children.len(), 2);
        let preds: Vec<&str> = r_node
            .children
            .iter()
            .map(|c| c.atom.pred.as_str())
            .collect();
        assert_eq!(preds, vec!["p", "q"]);
        // q(a,a) via ρ2 with two s-children.
        let q_node = &r_node.children[1];
        assert_eq!(q_node.rule, Some(1));
        assert_eq!(q_node.children.len(), 2);
        // Leaves are exactly database atoms.
        for leaf in tree.root.leaves() {
            assert!(db.contains(leaf), "leaf {leaf} should be a database atom");
        }
        // The chase records the shortest derivation of q(a,a) (directly from
        // two copies of s(a,a,a)), giving height 3; Figure 1 shows an
        // alternative, deeper proof via the invented s-atoms — both are
        // valid proof trees of p(a,a).
        assert_eq!(tree.height(), 3);
        let text = render_proof_tree(&tree, &program);
        assert!(text.contains("p(a, a)"));
        assert!(text.contains("[via ρ5]"));
        assert!(text.contains("t(a)   [database]"));
    }

    #[test]
    fn database_atom_is_a_leaf_tree() {
        let program = parse_program("p(?X) -> q(?X).").unwrap();
        let mut db = Database::new();
        db.add_fact("p", &["a"]);
        let out = chase(&db, &program, ChaseConfig::default()).unwrap();
        let id = out
            .instance
            .find(&GroundAtom::new(
                intern("p"),
                vec![Term::constant("a")].into(),
            ))
            .unwrap();
        let tree = proof_tree(&out.instance, id);
        assert_eq!(tree.size(), 1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.root.rule, None);
    }

    #[test]
    fn dependency_index_cones() {
        // e -> t -> r, plus an unrelated fact.
        let program = parse_program(
            "e(?X, ?Y) -> t(?X, ?Y).\n\
             t(?X, ?Y) -> r(?X).",
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("e", &["a", "b"]);
        db.add_fact("u", &["z"]);
        let out = chase(&db, &program, ChaseConfig::default()).unwrap();
        let inst = &out.instance;
        let e = inst
            .find(&GroundAtom::new(
                intern("e"),
                vec![Term::constant("a"), Term::constant("b")].into(),
            ))
            .unwrap();
        let t = inst
            .find(&GroundAtom::new(
                intern("t"),
                vec![Term::constant("a"), Term::constant("b")].into(),
            ))
            .unwrap();
        let r = inst
            .find(&GroundAtom::new(
                intern("r"),
                vec![Term::constant("a")].into(),
            ))
            .unwrap();
        let u = inst
            .find(&GroundAtom::new(
                intern("u"),
                vec![Term::constant("z")].into(),
            ))
            .unwrap();
        let index = DependencyIndex::from_instance(inst);
        assert_eq!(index.len(), inst.len());
        assert_eq!(index.dependents_of(e), &[t]);
        assert_eq!(index.cone(&[e]), vec![t, r]);
        assert_eq!(index.cone(&[t]), vec![r]);
        assert!(index.cone(&[r]).is_empty());
        assert!(index.cone(&[u]).is_empty());
        // Incremental extension covers atoms appended later.
        let mut grown = inst.clone();
        let (extra, _) = grown.insert(
            GroundAtom::new(intern("x"), vec![Term::constant("a")].into()),
            Some(crate::instance::Derivation {
                rule: 0,
                body: vec![r],
            }),
        );
        let mut index = index;
        index.extend_to(&grown);
        assert_eq!(index.cone(&[e]), vec![t, r, extra]);
    }

    #[test]
    fn proof_size_counts_repeated_subtrees() {
        // Unfolding a DAG proof repeats shared nodes (the paper: "unfolding
        // the obtained graph into a tree by repeating some of the nodes").
        let program = parse_program(
            "e(?X, ?Y) -> a(?X).\n\
             e(?X, ?Y) -> b(?Y).\n\
             a(?X), b(?Y) -> both(?X, ?Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("e", &["x", "y"]);
        let out = chase(&db, &program, ChaseConfig::default()).unwrap();
        let id = out
            .instance
            .find(&GroundAtom::new(
                intern("both"),
                vec![Term::constant("x"), Term::constant("y")].into(),
            ))
            .unwrap();
        let tree = proof_tree(&out.instance, id);
        // both <- {a <- e, b <- e}: 5 nodes, e repeated.
        assert_eq!(tree.size(), 5);
        assert_eq!(tree.root.leaves().len(), 2);
    }
}
