//! The `ProofTree` decision procedure of §6.3: backward proof search for
//! warded Datalog∃ programs, deciding whether a ground atom `p(t)` has a
//! proof tree (Definition 6.11) with respect to `D` and `Π`.
//!
//! The paper presents `ProofTree` as an alternating logspace algorithm;
//! the standard PTime realization of alternation is a least fixpoint over
//! the (polynomially many) machine states, which is what we implement: a
//! memoized AND-OR search over *component states*. A component state is a
//! set of atoms sharing labeled nulls of unknown invention (the paper's
//! `[N]`-optimal partition components) together with the `R_S` bookkeeping
//! that records, for each null, the atom where it is invented once that
//! atom becomes known — the mechanism that keeps parallel branches
//! consistent (condition (3) of Definition 6.11).
//!
//! Universal steps resolve *every* atom of a component simultaneously
//! (step (7) of the algorithm), then re-partition (`[N]`-optimal = the
//! connected components under sharing of unknown-invention nulls, steps
//! (9)–(13)). Existential choices (which rule, which assignment of
//! body-only variables over `dom(D) ∪ B`) are enumerated exhaustively —
//! exactly the guesses of the alternating machine. Cycles in the AND-OR
//! graph are handled with tainted-failure memoization: a failure caused by
//! an in-progress ancestor is not cached, which makes the search compute
//! the least fixpoint.
//!
//! Negation is handled by Step 1 of the §6.3 algorithm
//! ([`eliminate_negation`]): for Datalog∃,¬sg programs, each negated atom
//! `¬s(t)` is replaced by `s̄(t)` where `s̄` holds the complement of `s`
//! w.r.t. the ground semantics over `dom(D)`.

use crate::chase::{chase, ChaseConfig};
use crate::classify::{classify_program, rule_variable_classes};
use crate::instance::{Database, GroundAtom};
use crate::positions::PositionSet;
use crate::{Atom, Program, Rule};
use std::collections::{BTreeMap, HashMap, HashSet};
use triq_common::{NullId, Result, Symbol, Term, TriqError, VarId};

/// Resource limits for the proof search.
#[derive(Clone, Copy, Debug)]
pub struct ProofTreeConfig {
    /// Maximum number of distinct component states explored.
    pub max_states: usize,
    /// Maximum number of atoms in a component (the Lemma 6.14 bound is the
    /// maximum rule-body size; we allow head-room for non-normalized
    /// rules).
    pub max_component_atoms: usize,
}

impl Default for ProofTreeConfig {
    fn default() -> Self {
        ProofTreeConfig {
            max_states: 500_000,
            max_component_atoms: 12,
        }
    }
}

/// An abstract atom: terms are constants or *local* nulls (renumbered per
/// component state).
type AbsAtom = GroundAtom;

/// A head unification outcome: the body binding plus updated inventions.
type UnifyChoice = (HashMap<VarId, Term>, BTreeMap<NullId, Option<AbsAtom>>);

/// A component state: atoms sharing unknown-invention nulls, plus the
/// invention record for every null mentioned (`None` = ε, unknown).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State {
    atoms: Vec<AbsAtom>,
    /// Sorted by null id; entries exist for every null in `atoms`.
    inventions: Vec<(NullId, Option<AbsAtom>)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    InProgress,
    Proved,
    Failed,
}

struct Searcher<'a> {
    db: &'a Database,
    rules: Vec<Rule>,
    /// Existential variable positions per rule head: (var, position).
    rule_exist_pos: Vec<Vec<(VarId, usize)>>,
    /// Harmless variables per rule (w.r.t. the positive program).
    rule_harmless: Vec<HashSet<VarId>>,
    domain: Vec<Symbol>,
    memo: HashMap<State, Status>,
    states_explored: usize,
    config: ProofTreeConfig,
}

/// Renumbers nulls by first occurrence (scanning atoms in sorted order,
/// then invention atoms) and sorts atoms, producing a canonical-ish key.
/// Isomorphic states may occasionally get distinct keys (a memo miss, not
/// a correctness issue).
fn canonicalize(mut atoms: Vec<AbsAtom>, inventions: &BTreeMap<NullId, Option<AbsAtom>>) -> State {
    // First pass ordering: by predicate + constant skeleton.
    atoms.sort_by(|a, b| {
        let mask = |x: &AbsAtom| {
            (
                x.pred,
                x.terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => (0u8, c.index()),
                        Term::Null(_) => (1u8, 0),
                        Term::Var(_) => (2u8, 0),
                    })
                    .collect::<Vec<_>>(),
            )
        };
        mask(a).cmp(&mask(b))
    });
    let mut rename: HashMap<NullId, NullId> = HashMap::new();
    let touch = |t: &Term, rename: &mut HashMap<NullId, NullId>| {
        if let Term::Null(n) = t {
            let next = NullId(rename.len() as u32);
            rename.entry(*n).or_insert(next);
        }
    };
    for a in &atoms {
        for t in a.terms.iter() {
            touch(t, &mut rename);
        }
    }
    for (_, inv) in inventions.iter() {
        if let Some(a) = inv {
            for t in a.terms.iter() {
                touch(t, &mut rename);
            }
        }
    }
    let apply = |a: &AbsAtom, rename: &HashMap<NullId, NullId>| -> AbsAtom {
        GroundAtom::new(
            a.pred,
            a.terms
                .iter()
                .map(|t| match t {
                    Term::Null(n) => Term::Null(rename[n]),
                    other => *other,
                })
                .collect(),
        )
    };
    let mut new_atoms: Vec<AbsAtom> = atoms.iter().map(|a| apply(a, &rename)).collect();
    new_atoms.sort_by(|a, b| (a.pred, &a.terms).cmp(&(b.pred, &b.terms)));
    let mut new_inv: Vec<(NullId, Option<AbsAtom>)> = inventions
        .iter()
        .filter(|(n, _)| rename.contains_key(n))
        .map(|(n, inv)| (rename[n], inv.as_ref().map(|a| apply(a, &rename))))
        .collect();
    new_inv.sort_by_key(|(n, _)| *n);
    State {
        atoms: new_atoms,
        inventions: new_inv,
    }
}

impl<'a> Searcher<'a> {
    fn new(db: &'a Database, program: &Program, config: ProofTreeConfig) -> Searcher<'a> {
        let positive = program.positive_part();
        let affected: PositionSet = crate::affected_positions(&positive);
        let rules: Vec<Rule> = positive.rules;
        let rule_harmless = rules
            .iter()
            .map(|r| {
                rule_variable_classes(r, &affected)
                    .harmless
                    .into_iter()
                    .collect()
            })
            .collect();
        let rule_exist_pos = rules
            .iter()
            .map(|r| {
                let head = &r.head[0];
                head.terms
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t {
                        Term::Var(v) if r.exist_vars.contains(v) => Some((*v, i)),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        Searcher {
            db,
            rules,
            rule_exist_pos,
            rule_harmless,
            domain: db.domain().into_iter().collect(),
            memo: HashMap::new(),
            states_explored: 0,
            config,
        }
    }

    /// Proves a component state. Returns `(proved, tainted)`; a tainted
    /// failure depended on an in-progress ancestor and is not cached.
    fn prove(
        &mut self,
        atoms: Vec<AbsAtom>,
        inventions: BTreeMap<NullId, Option<AbsAtom>>,
    ) -> Result<(bool, bool)> {
        if atoms.len() == 1 && atoms[0].is_fully_ground() && self.db.contains(&atoms[0]) {
            return Ok((true, false));
        }
        if atoms.len() > self.config.max_component_atoms {
            return Err(TriqError::ResourceExhausted(format!(
                "ProofTree component grew beyond {} atoms — is the program warded?",
                self.config.max_component_atoms
            )));
        }
        let state = canonicalize(atoms, &inventions);
        match self.memo.get(&state) {
            Some(Status::Proved) => return Ok((true, false)),
            Some(Status::Failed) => return Ok((false, false)),
            Some(Status::InProgress) => return Ok((false, true)), // cycle
            None => {}
        }
        self.states_explored += 1;
        if self.states_explored > self.config.max_states {
            return Err(TriqError::ResourceExhausted(format!(
                "ProofTree explored more than {} states",
                self.config.max_states
            )));
        }
        self.memo.insert(state.clone(), Status::InProgress);
        let inv_map: BTreeMap<NullId, Option<AbsAtom>> = state.inventions.iter().cloned().collect();
        let mut tainted = false;
        let proved = self.resolve_all(&state.atoms, 0, inv_map, Vec::new(), &mut tainted)?;
        if proved {
            self.memo.insert(state, Status::Proved);
            Ok((true, false))
        } else {
            if tainted {
                self.memo.remove(&state);
            } else {
                self.memo.insert(state, Status::Failed);
            }
            Ok((false, tainted))
        }
    }

    /// Step (7): resolve every atom of the component (one rule + one
    /// assignment each), accumulating the union of instantiated bodies;
    /// then partition and prove the parts.
    fn resolve_all(
        &mut self,
        atoms: &[AbsAtom],
        idx: usize,
        inventions: BTreeMap<NullId, Option<AbsAtom>>,
        acc: Vec<AbsAtom>,
        tainted: &mut bool,
    ) -> Result<bool> {
        if idx == atoms.len() {
            return self.prove_partition(acc, inventions, tainted);
        }
        let goal = atoms[idx].clone();
        for ri in 0..self.rules.len() {
            let choices = self.unify_head(ri, &goal, &inventions);
            for (binding, new_inventions) in choices {
                // Enumerate assignments for unbound body variables.
                let assignments =
                    self.enumerate_assignments(ri, &binding, &new_inventions, &acc, atoms)?;
                for full in assignments {
                    let mut acc2 = acc.clone();
                    for b in &self.rules[ri].body_pos {
                        acc2.push(ground_with(b, &full));
                    }
                    if self.resolve_all(atoms, idx + 1, new_inventions.clone(), acc2, tainted)? {
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Unifies the (single) head of rule `ri` with `goal`, enforcing the
    /// compatibility condition ρ ◃ a and the invention-consistency rule
    /// (step 7b). Returns at most one binding (plus updated inventions).
    fn unify_head(
        &self,
        ri: usize,
        goal: &AbsAtom,
        inventions: &BTreeMap<NullId, Option<AbsAtom>>,
    ) -> Vec<UnifyChoice> {
        let rule = &self.rules[ri];
        let head = &rule.head[0];
        if head.pred != goal.pred || head.terms.len() != goal.terms.len() {
            return Vec::new();
        }
        let mut binding: HashMap<VarId, Term> = HashMap::new();
        for (pat, &val) in head.terms.iter().zip(goal.terms.iter()) {
            match *pat {
                Term::Const(c) => {
                    if val != Term::Const(c) {
                        return Vec::new();
                    }
                }
                Term::Null(_) => unreachable!("rules contain no nulls"),
                Term::Var(v) => match binding.get(&v) {
                    Some(&b) if b != val => return Vec::new(),
                    Some(_) => {}
                    None => {
                        binding.insert(v, val);
                    }
                },
            }
        }
        // Compatibility: each existential position must hold a null that
        // occurs exactly once in the goal.
        let mut new_inventions = inventions.clone();
        for &(v, pos) in &self.rule_exist_pos[ri] {
            let val = goal.terms[pos];
            let Term::Null(z) = val else {
                return Vec::new();
            };
            let occurrences = goal.terms.iter().filter(|&&t| t == val).count();
            if occurrences > 1 {
                return Vec::new();
            }
            let _ = v;
            // Step (7b): the invention atom of z must be this goal.
            match new_inventions.get(&z) {
                Some(Some(existing)) if existing != goal => return Vec::new(),
                _ => {
                    new_inventions.insert(z, Some(goal.clone()));
                }
            }
        }
        // Existential variables are not part of the body binding.
        for &(v, _) in &self.rule_exist_pos[ri] {
            binding.remove(&v);
        }
        vec![(binding, new_inventions)]
    }

    /// Enumerates total assignments of the unbound body variables of rule
    /// `ri`: harmless variables range over `dom(D)`; harmful ones
    /// additionally over the nulls in scope and one fresh null each.
    fn enumerate_assignments(
        &self,
        ri: usize,
        binding: &HashMap<VarId, Term>,
        inventions: &BTreeMap<NullId, Option<AbsAtom>>,
        acc: &[AbsAtom],
        goal_atoms: &[AbsAtom],
    ) -> Result<Vec<HashMap<VarId, Term>>> {
        let rule = &self.rules[ri];
        let unbound: Vec<VarId> = rule
            .body_pos_vars()
            .into_iter()
            .filter(|v| !binding.contains_key(v))
            .collect();
        if unbound.is_empty() {
            return Ok(vec![binding.clone()]);
        }
        // Nulls in scope: in the inventions record, the accumulator, and
        // the component's own atoms.
        let mut max_null: u32 = 0;
        let mut in_scope: Vec<Term> = Vec::new();
        let mut seen: HashSet<NullId> = HashSet::new();
        let note = |t: &Term, in_scope: &mut Vec<Term>, seen: &mut HashSet<NullId>| {
            if let Term::Null(n) = t {
                if seen.insert(*n) {
                    in_scope.push(*t);
                }
            }
        };
        for a in acc.iter().chain(goal_atoms.iter()) {
            for t in a.terms.iter() {
                note(t, &mut in_scope, &mut seen);
            }
        }
        for (n, inv) in inventions {
            seen.insert(*n);
            if let Some(a) = inv {
                for t in a.terms.iter() {
                    note(t, &mut in_scope, &mut seen);
                }
            }
        }
        for n in &seen {
            max_null = max_null.max(n.0 + 1);
        }
        let mut out: Vec<HashMap<VarId, Term>> = vec![binding.clone()];
        for (i, v) in unbound.iter().enumerate() {
            let mut cands: Vec<Term> = self.domain.iter().map(|&c| Term::Const(c)).collect();
            if !self.rule_harmless[ri].contains(v) {
                cands.extend(in_scope.iter().copied());
                // One fresh null per harmful variable, numbered after
                // everything in scope (distinct per variable index).
                cands.push(Term::Null(NullId(max_null + i as u32)));
            }
            let mut next = Vec::with_capacity(out.len() * cands.len());
            for partial in &out {
                for &c in &cands {
                    let mut m = partial.clone();
                    m.insert(*v, c);
                    next.push(m);
                }
            }
            out = next;
            if out.len() > 1_000_000 {
                return Err(TriqError::ResourceExhausted(
                    "ProofTree assignment enumeration exploded".into(),
                ));
            }
        }
        Ok(out)
    }

    /// Steps (9)–(13): partition the accumulated body atoms into the
    /// `[N]`-optimal components and prove each (universal step).
    fn prove_partition(
        &mut self,
        acc: Vec<AbsAtom>,
        inventions: BTreeMap<NullId, Option<AbsAtom>>,
        tainted: &mut bool,
    ) -> Result<bool> {
        if acc.is_empty() {
            return Ok(true);
        }
        // Union-find over atom indices: connect atoms sharing a null of
        // unknown invention.
        let n = acc.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
                r
            } else {
                i
            }
        }
        let mut null_owner: HashMap<NullId, usize> = HashMap::new();
        for (i, a) in acc.iter().enumerate() {
            for t in a.terms.iter() {
                if let Term::Null(z) = t {
                    let unknown = matches!(inventions.get(z), None | Some(None));
                    if unknown {
                        match null_owner.get(z) {
                            Some(&j) => {
                                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                                parent[ri] = rj;
                            }
                            None => {
                                null_owner.insert(*z, i);
                            }
                        }
                    }
                }
            }
        }
        let mut groups: BTreeMap<usize, Vec<AbsAtom>> = BTreeMap::new();
        for (i, a) in acc.iter().enumerate() {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(a.clone());
        }
        for (_, group) in groups {
            // Deduplicate identical atoms within a component.
            let mut atoms: Vec<AbsAtom> = group;
            atoms.sort_by(|a, b| (a.pred, &a.terms).cmp(&(b.pred, &b.terms)));
            atoms.dedup();
            // Inherit invention records for this component's nulls.
            let mut sub_inv: BTreeMap<NullId, Option<AbsAtom>> = BTreeMap::new();
            for a in &atoms {
                for t in a.terms.iter() {
                    if let Term::Null(z) = t {
                        sub_inv.insert(*z, inventions.get(z).cloned().flatten());
                    }
                }
            }
            let (ok, t) = self.prove(atoms, sub_inv)?;
            *tainted |= t;
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Decides whether the fully-ground atom `goal` is in `Π(D)` for a
/// *positive* (negation-free) warded Datalog∃ program, by searching for a
/// proof tree per §6.3. Use [`eliminate_negation`] first for Datalog∃,¬sg
/// programs.
pub fn prooftree_decide(
    db: &Database,
    program: &Program,
    goal: &GroundAtom,
    config: ProofTreeConfig,
) -> Result<bool> {
    if program.rules.iter().any(|r| !r.body_neg.is_empty()) {
        return Err(TriqError::InvalidProgram(
            "prooftree_decide requires a negation-free program; apply \
             eliminate_negation first (§6.3 Step 1)"
                .into(),
        ));
    }
    if !goal.is_fully_ground() {
        return Err(TriqError::InvalidProgram(
            "the ProofTree goal must mention constants only".into(),
        ));
    }
    let program = single_head_normal_form(program);
    let mut searcher = Searcher::new(db, &program, config);
    let (proved, _) = searcher.prove(vec![goal.clone()], BTreeMap::new())?;
    Ok(proved)
}

/// Convenience pipeline for Datalog∃,¬sg programs: applies
/// [`eliminate_negation`] (Step 1 of §6.3) and then decides the goal on
/// the positive program.
pub fn prooftree_decide_with_negation(
    db: &Database,
    program: &Program,
    goal: &GroundAtom,
    config: ProofTreeConfig,
    chase_config: ChaseConfig,
) -> Result<bool> {
    let (db_plus, positive) = eliminate_negation(db, program, chase_config)?;
    prooftree_decide(&db_plus, &positive, goal, config)
}

/// Splits multi-head rules. Heads sharing existential variables are routed
/// through a fresh auxiliary predicate carrying the frontier and the
/// existential variables (the N(ρ) construction referenced in footnote 6),
/// which preserves wardedness and the ground semantics.
pub fn single_head_normal_form(program: &Program) -> Program {
    let mut out = Program::new();
    for (i, rule) in program.rules.iter().enumerate() {
        if rule.head.len() == 1 {
            out.rules.push(rule.clone());
            continue;
        }
        if rule.exist_vars.is_empty() {
            out.rules.extend(rule.split_head());
            continue;
        }
        // body -> ∃Y aux(frontier, Y); aux(...) -> head_j.
        let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
        frontier.sort_unstable();
        let aux_pred = Symbol::new(&format!("aux_head_{i}"));
        let aux_terms: Vec<Term> = frontier
            .iter()
            .chain(rule.exist_vars.iter())
            .map(|&v| Term::Var(v))
            .collect();
        let aux_atom = Atom::new(aux_pred, aux_terms);
        out.rules.push(Rule {
            body_pos: rule.body_pos.clone(),
            body_neg: rule.body_neg.clone(),
            builtins: rule.builtins.clone(),
            exist_vars: rule.exist_vars.clone(),
            head: vec![aux_atom.clone()],
        });
        for h in &rule.head {
            out.rules
                .push(Rule::plain(vec![aux_atom.clone()], h.clone()));
        }
    }
    out.constraints = program.constraints.clone();
    out
}

/// Step 1 of the §6.3 evaluation algorithm: eliminates (grounded,
/// stratified) negation by materializing complement relations `s̄` over
/// `dom(D)` and rewriting `¬s(t)` to `s̄(t)`. Returns the extended
/// database `D⁺` and the positive program `Π⁺`.
pub fn eliminate_negation(
    db: &Database,
    program: &Program,
    chase_config: ChaseConfig,
) -> Result<(Database, Program)> {
    let classification = classify_program(program);
    if !classification.grounded_negation {
        return Err(TriqError::NotInLanguage {
            language: "Datalog∃,¬sg (grounded negation)",
            reason: "negation elimination via ground complements requires \
                     grounded negation"
                .to_string(),
        });
    }
    let negated: HashSet<(Symbol, usize)> = program
        .rules
        .iter()
        .flat_map(|r| r.body_neg.iter().map(|a| (a.pred, a.arity())))
        .collect();
    if negated.is_empty() {
        return Ok((copy_db(db), program.clone()));
    }
    // The ground semantics of the full program over D: lower strata are
    // closed before any rule negating them runs, so reading the final
    // instance is equivalent to the stratum-by-stratum construction.
    let outcome = chase(db, program, chase_config)?;
    let domain: Vec<Symbol> = db.domain().into_iter().collect();
    let mut db_plus = copy_db(db);
    for &(pred, arity) in &negated {
        let complement_pred = format!("not__{}", pred.as_str());
        let mut present: HashSet<Vec<Symbol>> = HashSet::new();
        for a in outcome.instance.atoms_of(pred) {
            if let Some(t) = a.terms.iter().map(|t| t.as_const()).collect() {
                present.insert(t);
            }
        }
        // Enumerate dom(D)^arity.
        let mut tuple = vec![0usize; arity];
        loop {
            let t: Vec<Symbol> = tuple.iter().map(|&i| domain[i]).collect();
            if !present.contains(&t) {
                let strs: Vec<&str> = t.iter().map(|s| s.as_str()).collect();
                db_plus.add_fact(&complement_pred, &strs);
            }
            // Increment the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                tuple[pos] += 1;
                if tuple[pos] < domain.len() {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
            if pos == arity || domain.is_empty() {
                break;
            }
        }
    }
    let mut positive = Program::new();
    for rule in &program.rules {
        let mut r = rule.clone();
        for neg in r.body_neg.drain(..) {
            r.body_pos.push(Atom::new(
                Symbol::new(&format!("not__{}", neg.pred.as_str())),
                neg.terms.clone(),
            ));
        }
        positive.rules.push(r);
    }
    positive.constraints = program.constraints.clone();
    Ok((db_plus, positive))
}

/// Grounds a rule atom under a total assignment of its variables.
fn ground_with(atom: &Atom, assignment: &HashMap<VarId, Term>) -> AbsAtom {
    GroundAtom::new(
        atom.pred,
        atom.terms
            .iter()
            .map(|&t| match t {
                Term::Var(v) => *assignment
                    .get(&v)
                    .unwrap_or_else(|| panic!("unassigned variable {v}")),
                other => other,
            })
            .collect(),
    )
}

fn copy_db(db: &Database) -> Database {
    let mut out = Database::new();
    for a in db.iter() {
        let strs: Vec<&str> = a
            .terms
            .iter()
            .map(|t| t.as_const().expect("database atoms are ground").as_str())
            .collect();
        out.add_fact(a.pred.as_str(), &strs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use triq_common::intern;

    fn ground(pred: &str, args: &[&str]) -> GroundAtom {
        GroundAtom::new(
            intern(pred),
            args.iter().map(|a| Term::constant(a)).collect(),
        )
    }

    fn decide(program: &str, facts: &[(&str, &[&str])], goal: (&str, &[&str])) -> bool {
        let p = parse_program(program).unwrap();
        let mut db = Database::new();
        for (pred, args) in facts {
            db.add_fact(pred, args);
        }
        prooftree_decide(&db, &p, &ground(goal.0, goal.1), ProofTreeConfig::default()).unwrap()
    }

    #[test]
    fn database_atoms_are_provable() {
        assert!(decide("p(?X) -> q(?X).", &[("p", &["a"])], ("p", &["a"])));
        assert!(!decide("p(?X) -> q(?X).", &[("p", &["a"])], ("p", &["b"])));
    }

    #[test]
    fn plain_datalog_reachability() {
        let prog = "e(?X, ?Y) -> t(?X, ?Y).\n e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).";
        let facts: &[(&str, &[&str])] = &[("e", &["a", "b"]), ("e", &["b", "c"])];
        assert!(decide(prog, facts, ("t", &["a", "c"])));
        assert!(decide(prog, facts, ("t", &["a", "b"])));
        assert!(!decide(prog, facts, ("t", &["c", "a"])));
    }

    #[test]
    fn existential_witness_chain() {
        // A ground atom whose proof must pass through an invented null.
        let prog = "start(?X) -> exists ?Z w(?X, ?Z).\n\
                    w(?X, ?Z), first(?A) -> tag(?Z, ?A).\n\
                    tag(?Z, ?A), next(?A, ?B) -> tag(?Z, ?B).\n\
                    tag(?Z, ?A), w(?X, ?Z) -> reached(?X, ?A).";
        let facts: &[(&str, &[&str])] = &[
            ("start", &["c"]),
            ("first", &["a1"]),
            ("next", &["a1", "a2"]),
        ];
        assert!(decide(prog, facts, ("reached", &["c", "a1"])));
        assert!(decide(prog, facts, ("reached", &["c", "a2"])));
        assert!(!decide(prog, facts, ("reached", &["c", "c"])));
    }

    /// Example 6.10: p(a,a) is provable (Figure 1 shows its proof tree).
    #[test]
    fn example_6_10_goal_is_provable() {
        let prog = "s(?X, ?Y, ?Z) -> exists ?W s(?X, ?Z, ?W).\n\
                    s(?X, ?Y, ?Z), s(?Y, ?Z, ?W) -> q(?X, ?Y).\n\
                    t(?X) -> exists ?Z p(?X, ?Z).\n\
                    p(?X, ?Y), q(?X, ?Z) -> r(?X, ?Y, ?Z).\n\
                    r(?X, ?Y, ?Z) -> p(?X, ?Z).";
        let facts: &[(&str, &[&str])] = &[("s", &["a", "a", "a"]), ("t", &["a"])];
        assert!(decide(prog, facts, ("q", &["a", "a"])));
        assert!(decide(prog, facts, ("p", &["a", "a"])));
        assert!(!decide(prog, facts, ("q", &["a", "b"])));
    }

    #[test]
    fn cross_validation_against_chase() {
        // Every ground atom the chase derives must be ProofTree-provable,
        // and a sample of non-derived atoms must not be.
        let prog = "start(?X) -> exists ?Z w(?X, ?Z).\n\
                    w(?X, ?Z), first(?A) -> tag(?Z, ?A).\n\
                    tag(?Z, ?A), next(?A, ?B) -> tag(?Z, ?B).\n\
                    tag(?Z, ?A), w(?X, ?Z) -> reached(?X, ?A).";
        let p = parse_program(prog).unwrap();
        let mut db = Database::new();
        db.add_fact("start", &["c"]);
        db.add_fact("first", &["a1"]);
        db.add_fact("next", &["a1", "a2"]);
        db.add_fact("next", &["a2", "a3"]);
        let out = chase(&db, &p, ChaseConfig::default()).unwrap();
        let mut checked = 0;
        for atom in out.instance.ground_part() {
            assert!(
                prooftree_decide(&db, &p, &atom, ProofTreeConfig::default()).unwrap(),
                "chase-derived {atom} must be provable"
            );
            checked += 1;
        }
        assert!(checked >= 6);
        assert!(!prooftree_decide(
            &db,
            &p,
            &ground("reached", &["a1", "a2"]),
            ProofTreeConfig::default()
        )
        .unwrap());
    }

    #[test]
    fn negation_elimination_round_trip() {
        let prog = "succ(?X, ?Y) -> less(?X, ?Y).\n\
                    succ(?X, ?Y), less(?Y, ?Z) -> less(?X, ?Z).\n\
                    less(?X, ?Y) -> not_min(?Y).\n\
                    less(?X, ?Y), !not_min(?X) -> zero(?X).";
        let p = parse_program(prog).unwrap();
        let mut db = Database::new();
        db.add_fact("succ", &["0", "1"]);
        db.add_fact("succ", &["1", "2"]);
        let (db_plus, positive) = eliminate_negation(&db, &p, ChaseConfig::default()).unwrap();
        assert!(positive.rules.iter().all(|r| r.body_neg.is_empty()));
        assert!(prooftree_decide(
            &db_plus,
            &positive,
            &ground("zero", &["0"]),
            ProofTreeConfig::default()
        )
        .unwrap());
        assert!(!prooftree_decide(
            &db_plus,
            &positive,
            &ground("zero", &["1"]),
            ProofTreeConfig::default()
        )
        .unwrap());
    }

    #[test]
    fn multi_head_normalization_preserves_semantics() {
        let p = parse_program(
            "coauthor(?X, ?Y) -> exists ?Z a_of(?X, ?Z), a_of(?Y, ?Z).\n\
             a_of(?X, ?Z), a_of(?Y, ?Z) -> collab(?X, ?Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("coauthor", &["aho", "ullman"]);
        assert!(prooftree_decide(
            &db,
            &p,
            &ground("collab", &["aho", "ullman"]),
            ProofTreeConfig::default()
        )
        .unwrap());
        assert!(!prooftree_decide(
            &db,
            &p,
            &ground("collab", &["aho", "knuth"]),
            ProofTreeConfig::default()
        )
        .unwrap());
    }

    #[test]
    fn rejects_non_ground_goal_and_negation() {
        let p = parse_program("p(?X), !q(?X) -> r(?X).\n base(?X) -> q(?X).").unwrap();
        let db = Database::new();
        assert!(
            prooftree_decide(&db, &p, &ground("r", &["a"]), ProofTreeConfig::default()).is_err()
        );
    }
}
