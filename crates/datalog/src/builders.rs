//! Builders for the paper's example programs: the k-clique TriQ 1.0 query
//! of Example 4.3 and the fixed warded-with-minimal-interaction program of
//! Theorem 6.15 (ATM simulation), plus direct baselines.

use crate::atm::{Machine, Move, StateKind};
use crate::instance::Database;
use crate::{parse_program, Program, Query};
use triq_common::{intern, Symbol};

// ---------------------------------------------------------------------------
// Example 4.3: does a graph contain a k-clique?
// ---------------------------------------------------------------------------

/// The fixed TriQ 1.0 program of Example 4.3 (Π = Π_aux ∪ Π_clique) as a
/// query with output predicate `yes`. `G` contains a k-clique iff
/// `Q(D) ≠ ∅` on the database produced by [`clique_database`].
pub fn clique_query() -> Query {
    let program = parse_program(
        "# ---- Pi_aux: linear order on [0,k] ----------------------------\n\
         succ0(?X, ?Y) -> less0(?X, ?Y).\n\
         succ0(?X, ?Y), less0(?Y, ?Z) -> less0(?X, ?Z).\n\
         less0(?X, ?Y) -> not_max(?X).\n\
         less0(?X, ?Y) -> not_min(?Y).\n\
         less0(?X, ?Y), !not_min(?X) -> zero0(?X).\n\
         less0(?Y, ?X), !not_max(?X) -> max0(?X).\n\
         # ---- copies into the schema used by Pi_clique -----------------\n\
         node0(?X) -> node(?X).\n\
         edge0(?X, ?Y) -> edge(?X, ?Y).\n\
         succ0(?X, ?Y) -> succ(?X, ?Y).\n\
         less0(?X, ?Y) -> less(?X, ?Y).\n\
         zero0(?X) -> zero(?X).\n\
         max0(?X) -> max(?X).\n\
         # ---- Pi_clique: the tree of mappings --------------------------\n\
         zero(?X) -> exists ?Y ism(?Y, ?X).\n\
         ism(?X, ?Y), succ(?Y, ?Z), node(?W) -> exists ?U \
             next(?X, ?W, ?U), ism(?U, ?Z), map(?U, ?Z, ?W).\n\
         next(?X, ?Y, ?Z), map(?X, ?U, ?V) -> map(?Z, ?U, ?V).\n\
         less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?U), !edge(?W, ?U) -> \
             noclique(?Z).\n\
         less(?X, ?Y), map(?Z, ?X, ?W), map(?Z, ?Y, ?W) -> noclique(?Z).\n\
         ism(?X, ?Y), max(?Y), !noclique(?X) -> yes().",
    )
    .expect("the Example 4.3 program is well-formed");
    Query::new(program, intern("yes")).expect("yes does not occur in a body")
}

/// Encodes an undirected graph `(V, E)` with `|V| = n` (vertices `0..n`)
/// and the integer `k` as the database of Example 4.3:
/// `{node0(v)} ∪ {edge0(v,w)} ∪ {succ0(0,1), …, succ0(k-1,k)}`.
/// Both orientations of each edge are stored, matching the undirected
/// semantics of the example.
pub fn clique_database(n: usize, edges: &[(usize, usize)], k: usize) -> Database {
    assert!(k >= 1, "k must be positive (Example 4.3 assumes k > 0)");
    let mut db = Database::new();
    let name = |i: usize| format!("v{i}");
    for v in 0..n {
        db.add_fact("node0", &[&name(v)]);
    }
    for &(v, w) in edges {
        db.add_fact("edge0", &[&name(v), &name(w)]);
        db.add_fact("edge0", &[&name(w), &name(v)]);
    }
    for i in 0..k {
        db.add_fact("succ0", &[&format!("i{i}"), &format!("i{}", i + 1)]);
    }
    db
}

/// A direct backtracking k-clique checker (the baseline of experiment E1).
pub fn has_clique_direct(n: usize, edges: &[(usize, usize)], k: usize) -> bool {
    if k == 0 {
        return true;
    }
    let mut adj = vec![vec![false; n]; n];
    for &(v, w) in edges {
        if v != w {
            adj[v][w] = true;
            adj[w][v] = true;
        }
    }
    fn extend(adj: &[Vec<bool>], chosen: &mut Vec<usize>, start: usize, k: usize) -> bool {
        if chosen.len() == k {
            return true;
        }
        for v in start..adj.len() {
            if chosen.iter().all(|&c| adj[c][v]) {
                chosen.push(v);
                if extend(adj, chosen, v + 1, k) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    extend(&adj, &mut Vec::new(), 0, k)
}

// ---------------------------------------------------------------------------
// Theorem 6.15: ATM simulation with a fixed warded program with minimal
// interaction.
// ---------------------------------------------------------------------------

/// The fixed program Π of Theorem 6.15 — independent of the machine — as a
/// query with output `accept_out`. It is warded *with minimal interaction*
/// but not warded: the harmful configuration variables `?V, ?V1, ?V2`
/// escape the ward exactly once per rule.
///
/// Because the head `accept(·)` also occurs in rule bodies (the acceptance
/// fixpoint), we add the output rule `accept(?V) -> accept_out(?V)`; the
/// machine accepts on input `I` iff `accept_out(ι)` is derived.
pub fn atm_program() -> Query {
    let mut src = String::from(
        "# configuration tree generator\n\
         config(?V) -> exists ?V1 ?V2 \
            succ(?V, ?V1, ?V2), config(?V1), config(?V2), \
            follows(?V, ?V1), follows(?V, ?V2).\n\
         # state-cursor-symbol auxiliary (keeps rules minimally interacting)\n\
         state(?S, ?V), cursor(?C, ?V) -> sc(?S, ?C, ?V).\n\
         sc(?S, ?C, ?V), symbol(?A, ?C, ?V) -> scs(?S, ?C, ?A, ?V).\n",
    );
    // Transition rules, one per direction pair (m1, m2) ∈ {-1,+1}^2. The
    // cursor target cells C1/C2 are obtained via next_cell in the proper
    // orientation.
    for (m1, m1c) in [("m1", "next_cell(?C1, ?C)"), ("p1", "next_cell(?C, ?C1)")] {
        for (m2, m2c) in [("m1", "next_cell(?C2, ?C)"), ("p1", "next_cell(?C, ?C2)")] {
            src.push_str(&format!(
                "trans(?S, ?A, ?S1, ?A1, {m1}, ?S2, ?A2, {m2}), \
                 succ(?V, ?V1, ?V2), scs(?S, ?C, ?A, ?V), {m1c}, {m2c} -> \
                 state(?S1, ?V1), state(?S2, ?V2), \
                 symbol(?A1, ?C, ?V1), symbol(?A2, ?C, ?V2), \
                 cursor(?C1, ?V1), cursor(?C2, ?V2).\n"
            ));
        }
    }
    src.push_str(
        "# frame rule: untouched cells keep their symbols\n\
         scs(?S, ?C, ?A, ?V), neq(?C, ?C2), symbol(?A2, ?C2, ?V) -> \
            next_symbol(?C2, ?A2, ?V).\n\
         follows(?V, ?V2), next_symbol(?C, ?A, ?V) -> symbol(?A, ?C, ?V2).\n\
         # acceptance\n\
         state(s_accept, ?V) -> accept(?V).\n\
         follows(?V, ?V2), state(?S, ?V) -> previous_state(?S, ?V2).\n\
         succ(?V, ?V1, ?V2), accept(?V2) -> sibling_accept(?V1).\n\
         succ(?V, ?V1, ?V2), accept(?V1) -> sibling_accept(?V2).\n\
         accept(?V), sibling_accept(?V) -> both_siblings_accept(?V).\n\
         previous_state(?S, ?V), exists_state(?S), accept(?V) -> \
            previous_accept(?V).\n\
         previous_state(?S, ?V), forall_state(?S), both_siblings_accept(?V) -> \
            previous_accept(?V).\n\
         follows(?V, ?V2), previous_accept(?V2) -> accept(?V).\n\
         accept(?V) -> accept_out(?V).\n",
    );
    let program = parse_program(&src).expect("the Theorem 6.15 program is well-formed");
    Query::new(program, intern("accept_out")).expect("accept_out does not occur in a body")
}

/// Encodes machine `M` on `input` as the database `D_M` of Theorem 6.15.
/// The machine's accepting state must be named `s_accept`; `ι` (the
/// initial configuration constant) is named `iota`.
pub fn atm_database(machine: &Machine, input: &[&str]) -> Database {
    let mut db = Database::new();
    let n = input.len();
    let cell = |i: usize| format!("c{}", i + 1);
    db.add_fact("config", &["iota"]);
    db.add_fact("state", &[machine.initial.as_str(), "iota"]);
    db.add_fact("cursor", &[&cell(0), "iota"]);
    for (i, a) in input.iter().enumerate() {
        db.add_fact("symbol", &[a, &cell(i), "iota"]);
    }
    for i in 0..n.saturating_sub(1) {
        db.add_fact("next_cell", &[&cell(i), &cell(i + 1)]);
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                db.add_fact("neq", &[&cell(i), &cell(j)]);
            }
        }
    }
    for (&s, &kind) in &machine.kinds {
        match kind {
            StateKind::Exists => db.add_fact("exists_state", &[s.as_str()]),
            StateKind::Forall => db.add_fact("forall_state", &[s.as_str()]),
            StateKind::Accept | StateKind::Reject => {}
        }
    }
    let dir = |m: Move| match m {
        Move::Left => "m1",
        Move::Right => "p1",
    };
    for (&(s, a), &(f, g)) in &machine.delta {
        db.add_fact(
            "trans",
            &[
                s.as_str(),
                a.as_str(),
                f.state.as_str(),
                f.write.as_str(),
                dir(f.dir),
                g.state.as_str(),
                g.write.as_str(),
                dir(g.dir),
            ],
        );
    }
    db
}

/// The constant `ι` naming the initial configuration in [`atm_database`].
pub fn atm_initial_constant() -> Symbol {
    intern("iota")
}

/// Convenience: the §2 recursive transport query (connected city pairs),
/// with output predicate `query`.
pub fn transport_query() -> Query {
    let program = parse_program(
        "triple(?X, partOf, transportService) -> ts(?X).\n\
         triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).\n\
         ts(?T), triple(?X, ?T, ?Y) -> conn(?X, ?Y).\n\
         ts(?T), triple(?X, ?T, ?Z), conn(?Z, ?Y) -> conn(?X, ?Y).\n\
         conn(?X, ?Y) -> query(?X, ?Y).",
    )
    .expect("transport program is well-formed");
    Query::new(program, intern("query")).expect("query does not occur in a body")
}

/// Returns the Example 4.3 program (not wrapped as a query), e.g. for
/// classification.
pub fn clique_program() -> Program {
    clique_query().program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atm::{machine_all_ones, machine_first_cell_one, machine_forall_both};
    use crate::chase::{ChaseConfig, ExistentialStrategy};
    use crate::classify_program;

    fn clique_answer(n: usize, edges: &[(usize, usize)], k: usize) -> bool {
        let q = clique_query();
        let db = clique_database(n, edges, k);
        let config = ChaseConfig {
            max_null_depth: (k + 2) as u32,
            ..ChaseConfig::default()
        };
        let ans = q.evaluate_with(&db, config).unwrap();
        !ans.is_empty()
    }

    #[test]
    fn clique_program_is_triq_1_0_but_not_lite() {
        let c = classify_program(&clique_program());
        assert!(c.is_triq_1_0(), "{:?}", c.violations);
        // The negation !noclique(?X) is over a harmful variable, so the
        // program is not TriQ-Lite 1.0 — consistent with Theorem 4.4's
        // ExpTime-hardness.
        assert!(!c.is_triq_lite_1_0());
    }

    #[test]
    fn triangle_detection() {
        let triangle = [(0, 1), (1, 2), (0, 2)];
        assert!(clique_answer(3, &triangle, 3));
        assert!(has_clique_direct(3, &triangle, 3));
        let path = [(0, 1), (1, 2)];
        assert!(!clique_answer(3, &path, 3));
        assert!(!has_clique_direct(3, &path, 3));
    }

    #[test]
    fn clique_sizes_match_direct_baseline() {
        // K4 minus one edge: has 3-cliques but no 4-clique.
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)];
        for k in 1..=4 {
            assert_eq!(
                clique_answer(4, &edges, k),
                has_clique_direct(4, &edges, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn self_loops_do_not_fake_cliques() {
        // The 5th rule of Π_clique exists precisely to prevent reusing a
        // node (relevant when G has self-loops).
        let edges = [(0, 0), (0, 1)];
        assert!(!clique_answer(2, &edges, 3));
        assert!(!has_clique_direct(2, &edges, 3));
    }

    fn atm_accepts(machine: &Machine, input: &[&str], depth: u32) -> bool {
        let q = atm_program();
        let db = atm_database(machine, input);
        let config = ChaseConfig {
            max_null_depth: depth,
            strategy: ExistentialStrategy::Skolem,
            max_atoms: 2_000_000,
            ..ChaseConfig::default()
        };
        let ans = q.evaluate_with(&db, config).unwrap();
        ans.contains(&["iota"])
    }

    #[test]
    fn atm_program_is_warded_minimal_interaction_not_warded() {
        let c = classify_program(&atm_program().program);
        assert!(
            c.warded_minimal_interaction,
            "Theorem 6.15's program must be warded with minimal interaction: {:?}",
            c.violations
        );
        assert!(!c.warded, "the whole point is that it is NOT warded");
    }

    #[test]
    fn atm_first_cell_machine_cross_validation() {
        let m = machine_first_cell_one();
        for input in [["1", "0"], ["0", "1"]] {
            let direct = m.accepts_input(&input, 3);
            let datalog = atm_accepts(&m, &input, 3);
            assert_eq!(direct, datalog, "input {input:?}");
        }
    }

    #[test]
    fn atm_forall_machine_cross_validation() {
        let m = machine_forall_both();
        for input in [["1", "1", "1"], ["1", "0", "1"]] {
            let direct = m.accepts_input(&input, 4);
            let datalog = atm_accepts(&m, &input, 4);
            assert_eq!(direct, datalog, "input {input:?}");
        }
    }

    #[test]
    fn atm_walker_cross_validation() {
        let m = machine_all_ones();
        for input in [
            vec!["1", "$"],
            vec!["1", "1", "$"],
            vec!["1", "0", "$"],
            vec!["0", "$"],
        ] {
            let direct = m.accepts_input(&input, 4);
            let datalog = atm_accepts(&m, &input, 4);
            assert_eq!(direct, datalog, "input {input:?}");
        }
    }
}
