//! Instances and databases (§3.2) with provenance and join indexes.
//!
//! An *instance* is a set of atoms over constants and labeled nulls; a
//! *database* is a finite instance over constants only. [`Instance`] stores
//! atoms in an append-only arena: every atom gets a stable [`AtomId`] in
//! insertion order, which the semi-naive chase uses for delta windows and
//! the proof-tree machinery uses for provenance.

use crate::Atom;
use std::collections::HashMap;
use std::fmt;
use triq_common::{NullId, Result, Symbol, Term, TriqError};

/// Stable identifier of an atom within an [`Instance`] (insertion order).
pub type AtomId = u32;

/// A variable-free atom as stored in an instance.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundAtom {
    /// The predicate.
    pub pred: Symbol,
    /// The argument tuple (constants and nulls only).
    pub terms: Box<[Term]>,
}

impl GroundAtom {
    /// Builds a ground atom, checking the no-variables invariant.
    pub fn new(pred: Symbol, terms: Box<[Term]>) -> Self {
        debug_assert!(terms.iter().all(|t| !t.is_var()));
        GroundAtom { pred, terms }
    }

    /// True iff the atom mentions only constants (`dom(a) ⊂ U`).
    pub fn is_fully_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_const())
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Provenance of a derived atom: which rule fired on which body atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// Index of the rule in the evaluated program.
    pub rule: usize,
    /// The matched positive body atoms, in body order.
    pub body: Vec<AtomId>,
}

struct Record {
    atom: GroundAtom,
    derivation: Option<Derivation>,
    /// 0 for database atoms and null-free derived atoms; otherwise
    /// 1 + the maximum invention depth of the nulls mentioned.
    depth: u32,
}

/// An append-only instance with hash lookup and per-column indexes.
#[derive(Default)]
pub struct Instance {
    records: Vec<Record>,
    lookup: HashMap<GroundAtom, AtomId>,
    by_pred: HashMap<Symbol, Vec<AtomId>>,
    /// (pred, column, term) → ids of atoms with `term` at `column`.
    column_index: HashMap<(Symbol, u32, Term), Vec<AtomId>>,
    /// Depth at which each null was invented (indexed by `NullId`).
    null_depth: Vec<u32>,
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The atom with the given id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.records[id as usize].atom
    }

    /// The provenance of the atom with the given id (`None` for database
    /// atoms).
    pub fn derivation(&self, id: AtomId) -> Option<&Derivation> {
        self.records[id as usize].derivation.as_ref()
    }

    /// The null-invention depth of the atom (0 if it mentions no nulls).
    pub fn depth(&self, id: AtomId) -> u32 {
        self.records[id as usize].depth
    }

    /// Looks up an atom, returning its id if present.
    pub fn find(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.lookup.get(atom).copied()
    }

    /// Membership test.
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.lookup.contains_key(atom)
    }

    /// Creates a fresh labeled null invented at `depth`.
    pub fn fresh_null(&mut self, depth: u32) -> NullId {
        let id = NullId(self.null_depth.len() as u32);
        self.null_depth.push(depth);
        id
    }

    /// The invention depth of a null.
    pub fn null_depth(&self, null: NullId) -> u32 {
        self.null_depth[null.0 as usize]
    }

    /// Number of nulls invented so far.
    pub fn null_count(&self) -> usize {
        self.null_depth.len()
    }

    /// 1 + the maximum invention depth among the nulls of `terms`
    /// (0 if there are none). This is the depth a *new* null invented from
    /// these frontier values gets.
    pub fn next_depth(&self, terms: &[Term]) -> u32 {
        terms
            .iter()
            .filter_map(|t| t.as_null())
            .map(|n| self.null_depth(n))
            .max()
            .map_or(1, |d| d + 1)
    }

    /// Inserts an atom, returning `(id, inserted)`.
    pub fn insert(&mut self, atom: GroundAtom, derivation: Option<Derivation>) -> (AtomId, bool) {
        if let Some(&id) = self.lookup.get(&atom) {
            return (id, false);
        }
        let depth = atom
            .terms
            .iter()
            .filter_map(|t| t.as_null())
            .map(|n| self.null_depth(n))
            .max()
            .unwrap_or(0);
        let id = self.records.len() as AtomId;
        self.by_pred.entry(atom.pred).or_default().push(id);
        for (i, &t) in atom.terms.iter().enumerate() {
            self.column_index
                .entry((atom.pred, i as u32, t))
                .or_default()
                .push(id);
        }
        self.lookup.insert(atom.clone(), id);
        self.records.push(Record {
            atom,
            derivation,
            depth,
        });
        (id, true)
    }

    /// Inserts a database fact built from constant strings.
    pub fn insert_fact(&mut self, pred: &str, constants: &[&str]) -> AtomId {
        let atom = GroundAtom::new(
            Symbol::new(pred),
            constants.iter().map(|c| Term::constant(c)).collect(),
        );
        self.insert(atom, None).0
    }

    /// Ids of all atoms with predicate `pred`, ascending.
    pub fn ids_by_pred(&self, pred: Symbol) -> &[AtomId] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of atoms with predicate `pred` and `term` at `column`, ascending.
    pub fn ids_by_column(&self, pred: Symbol, column: u32, term: Term) -> &[AtomId] {
        self.column_index
            .get(&(pred, column, term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over all atoms (with ids), in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> + '_ {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (i as AtomId, &r.atom))
    }

    /// All atoms of a predicate.
    pub fn atoms_of(&self, pred: Symbol) -> impl Iterator<Item = &GroundAtom> + '_ {
        self.ids_by_pred(pred).iter().map(move |&id| self.atom(id))
    }

    /// The ground part `Π(D)↓`: all atoms whose terms are constants only
    /// (§6.3, Step 1).
    pub fn ground_part(&self) -> Vec<&GroundAtom> {
        self.records
            .iter()
            .map(|r| &r.atom)
            .filter(|a| a.is_fully_ground())
            .collect()
    }

    /// Checks whether a *non-ground* atom pattern has a match (used by the
    /// restricted chase and tests); see [`crate::ChaseConfig`] for the
    /// full matcher.
    pub fn has_pred(&self, pred: Symbol) -> bool {
        self.by_pred.get(&pred).is_some_and(|v| !v.is_empty())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.records.iter().map(|r| &r.atom))
            .finish()
    }
}

/// A database: a finite instance over constants only (§3.2).
#[derive(Default)]
pub struct Database {
    instance: Instance,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a fact; errors if any term is not a constant.
    pub fn add(&mut self, atom: &Atom) -> Result<()> {
        let terms: Option<Box<[Term]>> = atom
            .terms
            .iter()
            .map(|&t| t.is_const().then_some(t))
            .collect();
        let Some(terms) = terms else {
            return Err(TriqError::InvalidProgram(format!(
                "database fact {atom} contains a non-constant term"
            )));
        };
        self.instance
            .insert(GroundAtom::new(atom.pred, terms), None);
        Ok(())
    }

    /// Adds a fact from strings.
    pub fn add_fact(&mut self, pred: &str, constants: &[&str]) {
        self.instance.insert_fact(pred, constants);
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// True iff the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// The facts as a fresh [`Instance`] seed (cloned).
    pub fn to_instance(&self) -> Instance {
        let mut inst = Instance::new();
        for (_, a) in self.instance.iter() {
            inst.insert(a.clone(), None);
        }
        inst
    }

    /// Iterates over the facts.
    pub fn iter(&self) -> impl Iterator<Item = &GroundAtom> + '_ {
        self.instance.iter().map(|(_, a)| a)
    }

    /// All constants occurring in the database (`dom(D)`).
    pub fn domain(&self) -> std::collections::BTreeSet<Symbol> {
        self.iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| t.as_const())
            .collect()
    }

    /// Membership test for a fully-ground atom.
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.instance.contains(atom)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.instance.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::intern;

    #[test]
    fn insert_and_lookup() {
        let mut inst = Instance::new();
        let id = inst.insert_fact("edge", &["a", "b"]);
        let (id2, fresh) = inst.insert(
            GroundAtom::new(
                intern("edge"),
                vec![Term::constant("a"), Term::constant("b")].into(),
            ),
            None,
        );
        assert_eq!(id, id2);
        assert!(!fresh);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.atom(id).to_string(), "edge(a, b)");
    }

    #[test]
    fn column_index_lookups() {
        let mut inst = Instance::new();
        inst.insert_fact("edge", &["a", "b"]);
        inst.insert_fact("edge", &["a", "c"]);
        inst.insert_fact("edge", &["b", "c"]);
        let a = Term::constant("a");
        assert_eq!(inst.ids_by_column(intern("edge"), 0, a).len(), 2);
        assert_eq!(inst.ids_by_column(intern("edge"), 1, a).len(), 0);
        assert_eq!(inst.ids_by_pred(intern("edge")).len(), 3);
        assert_eq!(inst.ids_by_pred(intern("nothing")).len(), 0);
    }

    #[test]
    fn null_depth_tracking() {
        let mut inst = Instance::new();
        let n0 = inst.fresh_null(1);
        let atom = GroundAtom::new(intern("p"), vec![Term::Null(n0)].into());
        let (id, _) = inst.insert(atom, None);
        assert_eq!(inst.depth(id), 1);
        assert_eq!(inst.next_depth(&[Term::Null(n0)]), 2);
        assert_eq!(inst.next_depth(&[Term::constant("a")]), 1);
        assert_eq!(inst.ground_part().len(), 0);
    }

    #[test]
    fn database_rejects_nulls_and_vars() {
        let mut db = Database::new();
        let bad = Atom::from_parts("p", vec![Term::Var(triq_common::VarId::new("X"))]);
        assert!(db.add(&bad).is_err());
        db.add_fact("p", &["a"]);
        assert_eq!(db.len(), 1);
        assert!(db.domain().contains(&intern("a")));
    }

    #[test]
    fn provenance_round_trip() {
        let mut inst = Instance::new();
        let body = inst.insert_fact("p", &["a"]);
        let atom = GroundAtom::new(intern("q"), vec![Term::constant("a")].into());
        let (id, _) = inst.insert(
            atom,
            Some(Derivation {
                rule: 3,
                body: vec![body],
            }),
        );
        let d = inst.derivation(id).unwrap();
        assert_eq!(d.rule, 3);
        assert_eq!(d.body, vec![body]);
        assert!(inst.derivation(body).is_none());
    }
}
