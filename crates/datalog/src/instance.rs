//! Instances and databases (§3.2) with provenance and join indexes.
//!
//! An *instance* is a set of atoms over constants and labeled nulls; a
//! *database* is a finite instance over constants only. [`Instance`] is a
//! **columnar, fully interned relation store**: each predicate (at each
//! arity) owns a [`Relation`] holding its tuples as per-column
//! `Vec<TermId>` plus incremental per-column hash indexes, and every atom
//! still gets a stable [`AtomId`] in global insertion order — the
//! semi-naive chase uses those ids for delta windows and the proof-tree
//! machinery uses them for provenance, exactly as with the old row store.
//!
//! Membership probes are *borrowed-key*: [`Instance::find_terms`] /
//! [`Instance::contains_ids`] hash the candidate tuple in place and
//! compare column-wise, so the chase's innermost loops allocate nothing
//! (see `tests/probe_alloc.rs` for the enforced guarantee).

use crate::Atom;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use triq_common::{NullId, RelationStats, Result, Symbol, Term, TermId, TriqError};

// ---------------------------------------------------------------------------
// Hashing: the store's keys are small integers (TermId / Symbol / packed
// tuple hashes), where SipHash is pure overhead on the chase hot path.
// ---------------------------------------------------------------------------

/// Fx-style (firefox/rustc) multiply-xor hasher: excellent dispersion for
/// word-sized integer keys at a fraction of SipHash's cost. DoS hardening
/// is irrelevant here — keys are interner indexes, not attacker strings.
#[derive(Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;
type FxHashMap<K, V> = HashMap<K, V, FxBuild>;

/// Incremental Fx hash of an encoded tuple (length-mixed so prefixes of
/// longer tuples do not collide trivially).
#[inline]
fn tuple_hash(key: impl Iterator<Item = TermId>) -> u64 {
    let mut h = FxHasher::default();
    let mut len = 0u64;
    for t in key {
        h.add(t.raw() as u64);
        len += 1;
    }
    h.add(len);
    h.finish()
}

/// Stable identifier of an atom within an [`Instance`] (insertion order).
pub type AtomId = u32;

/// A variable-free atom as a value (decoded row of a [`Relation`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundAtom {
    /// The predicate.
    pub pred: Symbol,
    /// The argument tuple (constants and nulls only).
    pub terms: Box<[Term]>,
}

impl GroundAtom {
    /// Builds a ground atom, checking the no-variables invariant.
    pub fn new(pred: Symbol, terms: Box<[Term]>) -> Self {
        debug_assert!(terms.iter().all(|t| !t.is_var()));
        GroundAtom { pred, terms }
    }

    /// True iff the atom mentions only constants (`dom(a) ⊂ U`).
    pub fn is_fully_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_const())
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Provenance of a derived atom: which rule fired on which body atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// Index of the rule in the evaluated program.
    pub rule: usize,
    /// The matched positive body atoms, in body order.
    pub body: Vec<AtomId>,
}

/// Directory entry: where an atom's row lives, plus provenance.
#[derive(Clone)]
struct Meta {
    rel: u32,
    row: u32,
    derivation: Option<Derivation>,
    /// 0 for database atoms and null-free derived atoms; otherwise
    /// the maximum invention depth of the nulls mentioned.
    depth: u32,
    /// Times this tuple was (re-)asserted: 1 at first insert, +1 per
    /// duplicate insertion attempt (another rule application deriving the
    /// same tuple, or a redundant database add). A diagnostic *upper
    /// bound* on the number of distinct supports — the exact count is
    /// schedule-dependent — used by the incremental subsystem's stats.
    support: u32,
    /// Tombstone: the atom was deleted. Dead atoms keep their id and row
    /// (ids are never reused) but are removed from every index, so joins,
    /// membership probes and iteration no longer see them.
    dead: bool,
}

/// An on-demand hash index over a *subset* of a relation's columns: the
/// encoded values at `cols` hash to the ascending [`AtomId`]s of the rows
/// holding them. The join planner requests one for probe positions whose
/// single-column posting lists have high expected fanout; the probe then
/// lands on the (near-)exact candidate set in one hash lookup instead of
/// scanning the shortest posting list. Collisions are harmless — the join
/// loop verifies every column of every candidate anyway.
#[derive(Clone, Debug)]
struct JointIndex {
    /// Indexed columns, ascending.
    cols: Box<[u8]>,
    /// Hash of the values at `cols` → ascending ids of matching rows.
    map: FxHashMap<u64, Vec<AtomId>>,
}

impl JointIndex {
    #[inline]
    fn key_hash(&self, rel: &Relation, row: u32) -> u64 {
        tuple_hash(
            self.cols
                .iter()
                .map(|&c| rel.cols[c as usize][row as usize]),
        )
    }
}

/// Most joint indexes a relation keeps at once. A request beyond the cap
/// is *refused* (the probe falls back to the per-column path) rather than
/// evicting: eviction would let three wanted column sets rebuild an
/// O(rows) index at every stratum entry, churning forever. Tombstones
/// clear all indexes anyway, so the winners re-race after any deletion.
const MAX_JOINT_INDEXES: usize = 2;

/// Columnar storage of one predicate at one arity.
///
/// Tuples are stored column-major (`cols[c][row]`), deduplicated through a
/// tuple-hash table, and indexed per column (`value → ascending AtomIds`).
/// Rows are append-only, so both `atom_ids` and every posting list stay
/// sorted — the chase's delta windows restrict them by binary search.
#[derive(Clone)]
pub struct Relation {
    pred: Symbol,
    arity: usize,
    cols: Vec<Vec<TermId>>,
    /// Live rows' global [`AtomId`]s (ascending). Tombstoned rows are
    /// removed, so this is the *live* extent, not the row count.
    atom_ids: Vec<AtomId>,
    /// Row → global [`AtomId`], for **all** rows ever stored (tombstoned
    /// rows keep their entry; they are unreachable through the indexes).
    row_id: Vec<AtomId>,
    /// Tuple hash → candidate rows (collisions resolved column-wise).
    row_lookup: FxHashMap<u64, Vec<u32>>,
    /// Per column: value → atoms holding it there (ascending ids).
    col_index: Vec<FxHashMap<TermId, Vec<AtomId>>>,
    /// Planner-requested multi-column hash indexes (built lazily,
    /// maintained on insert, **invalidated wholesale by tombstones** —
    /// correctness never depends on them, so deletion-heavy phases simply
    /// drop them and the planner rebuilds on its next request).
    joint: Vec<JointIndex>,
    /// Insert-monotone planner statistics (row inserts, per-column
    /// distinct-count sketches and value ranges).
    stats: RelationStats,
}

impl Relation {
    fn new(pred: Symbol, arity: usize) -> Relation {
        Relation {
            pred,
            arity,
            cols: vec![Vec::new(); arity],
            atom_ids: Vec::new(),
            row_id: Vec::new(),
            row_lookup: FxHashMap::default(),
            col_index: vec![FxHashMap::default(); arity],
            joint: Vec::new(),
            stats: RelationStats::new(arity),
        }
    }

    /// The predicate.
    pub fn pred(&self) -> Symbol {
        self.pred
    }

    /// The raw column vectors (persistence codec bulk path).
    pub(crate) fn columns(&self) -> &[Vec<TermId>] {
        &self.cols
    }

    /// The tuple width.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.atom_ids.len()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.atom_ids.is_empty()
    }

    /// The value at (`column`, `row`).
    #[inline]
    pub fn value(&self, column: usize, row: u32) -> TermId {
        self.cols[column][row as usize]
    }

    /// Global ids of all tuples, ascending.
    #[inline]
    pub fn atom_ids(&self) -> &[AtomId] {
        &self.atom_ids
    }

    /// Ids of tuples with `value` at `column`, ascending.
    #[inline]
    pub fn ids_by_column(&self, column: usize, value: TermId) -> &[AtomId] {
        self.col_index[column]
            .get(&value)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The relation's insert-monotone planner statistics.
    #[inline]
    pub fn stats(&self) -> &RelationStats {
        &self.stats
    }

    /// One raw column as a contiguous slice — the surface the
    /// [`crate::kernels`] filters scan. Includes tombstoned rows, so
    /// row-range kernel scans must first check [`Relation::is_dense`].
    #[inline]
    pub(crate) fn col(&self, column: usize) -> &[TermId] {
        &self.cols[column]
    }

    /// Row → global [`AtomId`] for every row ever stored, ascending
    /// (rows append in id order). The inverse of [`Instance::row_of`],
    /// as a slice — what maps a kernel selection back to ids.
    #[inline]
    pub(crate) fn row_ids(&self) -> &[AtomId] {
        &self.row_id
    }

    /// True iff every stored row is live (no tombstones): the live
    /// extent and the row space coincide, so an [`AtomId`] range maps to
    /// a contiguous **row** range and a column slice over it contains
    /// only live tuples — the precondition for the vectorized row-window
    /// scans in the chase. Instances mid-deletion are not dense and fall
    /// back to the posting-list path.
    #[inline]
    pub(crate) fn is_dense(&self) -> bool {
        self.atom_ids.len() == self.row_id.len()
    }

    /// True iff a joint hash index over exactly `cols` (ascending) is
    /// currently built.
    #[inline]
    pub fn has_joint_index(&self, cols: &[u8]) -> bool {
        self.joint.iter().any(|j| *j.cols == *cols)
    }

    /// Probes the joint index over `cols` with the given values
    /// (column-aligned with `cols`). Returns the ascending candidate ids
    /// — possibly with hash-collision strays, which callers filter by
    /// comparing columns — or `None` when no such index is built. Never
    /// allocates.
    #[inline]
    pub fn joint_ids(
        &self,
        cols: &[u8],
        values: impl Iterator<Item = TermId>,
    ) -> Option<&[AtomId]> {
        let idx = self.joint.iter().find(|j| *j.cols == *cols)?;
        let hash = tuple_hash(values);
        Some(idx.map.get(&hash).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Builds (or re-builds after invalidation) the joint hash index over
    /// `cols`, walking the live rows once. Returns `false` when the index
    /// already exists — or when the relation is at the
    /// [`MAX_JOINT_INDEXES`] cap (the probe then falls back to the
    /// per-column path; refusing beats evict-and-rebuild churn).
    fn build_joint_index(&mut self, cols: &[u8]) -> bool {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols ascending");
        debug_assert!(cols.iter().all(|&c| (c as usize) < self.arity));
        if self.has_joint_index(cols) || self.joint.len() >= MAX_JOINT_INDEXES {
            return false;
        }
        let mut idx = JointIndex {
            cols: cols.into(),
            map: FxHashMap::default(),
        };
        // `row_id` and `atom_ids` are both ascending; merge-walk them to
        // visit exactly the live rows in O(rows).
        let mut live = self.atom_ids.iter().copied().peekable();
        for (row, &id) in self.row_id.iter().enumerate() {
            while live.peek().is_some_and(|&l| l < id) {
                live.next();
            }
            if live.peek() == Some(&id) {
                let hash = idx.key_hash(self, row as u32);
                idx.map.entry(hash).or_default().push(id);
            }
        }
        self.joint.push(idx);
        true
    }

    /// Borrowed-key point lookup: the row equal to `key`, if any.
    #[inline]
    pub fn find_row(&self, key: &[TermId]) -> Option<u32> {
        debug_assert_eq!(key.len(), self.arity);
        let hash = tuple_hash(key.iter().copied());
        let candidates = self.row_lookup.get(&hash)?;
        candidates
            .iter()
            .copied()
            .find(|&row| (0..self.arity).all(|c| self.cols[c][row as usize] == key[c]))
    }

    /// Point lookup *or* append in one pass — the tuple is hashed exactly
    /// once. Returns `(row, inserted)`; `id` is the [`AtomId`] the row
    /// gets if it is new.
    fn find_or_push(&mut self, key: &[TermId], id: AtomId) -> (u32, bool) {
        debug_assert_eq!(key.len(), self.arity);
        let hash = tuple_hash(key.iter().copied());
        let rows = self.row_lookup.entry(hash).or_default();
        for &row in rows.iter() {
            if key
                .iter()
                .enumerate()
                .all(|(c, &t)| self.cols[c][row as usize] == t)
            {
                return (row, false);
            }
        }
        let row = self.row_id.len() as u32;
        rows.push(row);
        for (c, &t) in key.iter().enumerate() {
            self.cols[c].push(t);
            self.col_index[c].entry(t).or_default().push(id);
        }
        self.atom_ids.push(id);
        self.row_id.push(id);
        self.stats.observe_row(key.iter().map(|t| t.raw()));
        for idx in &mut self.joint {
            let hash = tuple_hash(idx.cols.iter().map(|&c| key[c as usize]));
            idx.map.entry(hash).or_default().push(id);
        }
        (row, true)
    }

    /// Bulk construction from complete columns (persistence decode):
    /// the column vectors are adopted verbatim, `row_ids[row]` is each
    /// row's global [`AtomId`], and the dedup table, posting lists and
    /// stats are rebuilt in one pre-sized pass over the rows — in row
    /// order, which is the original insert order, so the insert-monotone
    /// sketches come out identical. Fails on duplicate rows.
    fn from_columns(
        pred: Symbol,
        arity: usize,
        cols: Vec<Vec<TermId>>,
        row_ids: Vec<AtomId>,
    ) -> std::result::Result<Relation, &'static str> {
        let rows = row_ids.len();
        let mut row_lookup: FxHashMap<u64, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(rows, Default::default());
        let mut col_index: Vec<FxHashMap<TermId, Vec<AtomId>>> = vec![FxHashMap::default(); arity];
        let mut stats = RelationStats::new(arity);
        let mut key: Vec<TermId> = Vec::with_capacity(arity);
        for row in 0..rows {
            key.clear();
            key.extend(cols.iter().map(|col| col[row]));
            let hash = tuple_hash(key.iter().copied());
            let candidates = row_lookup.entry(hash).or_default();
            if candidates.iter().any(|&r| {
                key.iter()
                    .enumerate()
                    .all(|(c, &t)| cols[c][r as usize] == t)
            }) {
                return Err("duplicate row in relation");
            }
            candidates.push(row as u32);
            let id = row_ids[row];
            for (c, &t) in key.iter().enumerate() {
                col_index[c].entry(t).or_default().push(id);
            }
            stats.observe_row(key.iter().map(|t| t.raw()));
        }
        Ok(Relation {
            pred,
            arity,
            cols,
            atom_ids: row_ids.clone(),
            row_id: row_ids,
            row_lookup,
            col_index,
            joint: Vec::new(),
            stats,
        })
    }

    /// The row as an iterator of ids (column order).
    pub fn row(&self, row: u32) -> impl Iterator<Item = TermId> + '_ {
        self.cols.iter().map(move |col| col[row as usize])
    }

    /// The global id of a stored row (dead or alive).
    #[inline]
    pub fn row_to_id(&self, row: u32) -> Option<AtomId> {
        self.row_id.get(row as usize).copied()
    }

    /// Unlinks a row from every index (dedup table, posting lists, the
    /// id directory). The column data stays in place — rows are never
    /// renumbered — so `value`/`row` keep working for the dead atom.
    ///
    /// Each removal is O(list length) (`Vec::remove` keeps the lists
    /// sorted for the binary-searchable delta windows), so deleting a
    /// large DRed cone costs O(cone × relation). If cone deletion ever
    /// dominates a profile, batch the unlinks per relation: collect the
    /// dead ids, then one `retain` pass over `atom_ids` and each touched
    /// posting list.
    fn unlink(&mut self, row: u32, id: AtomId) {
        let hash = tuple_hash(self.cols.iter().map(|col| col[row as usize]));
        if let Some(rows) = self.row_lookup.get_mut(&hash) {
            rows.retain(|&r| r != row);
            if rows.is_empty() {
                self.row_lookup.remove(&hash);
            }
        }
        for (c, col) in self.cols.iter().enumerate() {
            let value = col[row as usize];
            if let Some(ids) = self.col_index[c].get_mut(&value) {
                if let Ok(pos) = ids.binary_search(&id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    self.col_index[c].remove(&value);
                }
            }
        }
        if let Ok(pos) = self.atom_ids.binary_search(&id) {
            self.atom_ids.remove(pos);
        }
        // Tombstones invalidate the planner's joint hash indexes
        // wholesale: they are pure accelerators, rebuilt on the planner's
        // next request (see `Instance::ensure_joint_index`), and a
        // deletion-heavy phase should not pay per-list maintenance for
        // them.
        self.joint.clear();
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("pred", &self.pred)
            .field("arity", &self.arity)
            .field("rows", &self.len())
            .finish()
    }
}

/// An append-only columnar instance with borrowed-key lookup and
/// per-column indexes.
#[derive(Default, Clone)]
pub struct Instance {
    relations: Vec<Relation>,
    /// Predicate → relations of that predicate (one per arity seen; in a
    /// validated program there is exactly one).
    rels_of: FxHashMap<Symbol, Vec<u32>>,
    /// Predicate → all its atom ids, ascending (union across arities).
    by_pred: FxHashMap<Symbol, Vec<AtomId>>,
    meta: Vec<Meta>,
    /// Depth at which each null was invented (indexed by `NullId`).
    null_depth: Vec<u32>,
    /// Number of tombstoned atoms (`meta` entries with `dead` set).
    dead: usize,
    /// Joint hash indexes built over this instance's lifetime (a rebuild
    /// after tombstone invalidation counts again) — the counter-probe the
    /// index-lifecycle tests and [`crate::ChaseStats::index_builds`] read.
    joint_builds: usize,
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Number of atom ids ever issued, **including** tombstoned atoms —
    /// i.e. the id watermark (the next atom gets this id). For the count
    /// of atoms actually present use [`Instance::live_len`]; the two
    /// coincide on instances that never saw a deletion.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Number of live (non-tombstoned) atoms.
    pub fn live_len(&self) -> usize {
        self.meta.len() - self.dead
    }

    /// Number of tombstoned atoms.
    pub fn dead_len(&self) -> usize {
        self.dead
    }

    /// True iff the instance holds no live atoms.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// The relation holding `pred` at `arity`, if any tuples exist.
    #[inline]
    pub fn relation(&self, pred: Symbol, arity: usize) -> Option<&Relation> {
        self.rels_of.get(&pred).and_then(|idxs| {
            idxs.iter()
                .map(|&i| &self.relations[i as usize])
                .find(|r| r.arity == arity)
        })
    }

    fn relation_mut(&mut self, pred: Symbol, arity: usize) -> u32 {
        if let Some(idxs) = self.rels_of.get(&pred) {
            if let Some(&i) = idxs
                .iter()
                .find(|&&i| self.relations[i as usize].arity == arity)
            {
                return i;
            }
        }
        let i = self.relations.len() as u32;
        self.relations.push(Relation::new(pred, arity));
        self.rels_of.entry(pred).or_default().push(i);
        i
    }

    /// All relations (arbitrary order).
    pub fn relations(&self) -> impl Iterator<Item = &Relation> + '_ {
        self.relations.iter()
    }

    /// The relations in creation order (persistence codec: index `i`
    /// here is the `rel` directory index atoms are encoded against).
    pub(crate) fn relations_slice(&self) -> &[Relation] {
        &self.relations
    }

    /// The relation directory index of an atom (persistence codec).
    pub(crate) fn rel_index_of(&self, id: AtomId) -> u32 {
        self.meta[id as usize].rel
    }

    /// Per-null invention depths, indexed by `NullId` (persistence codec).
    pub(crate) fn null_depths(&self) -> &[u32] {
        &self.null_depth
    }

    /// Persistence decode's bulk path: rebuilds an instance from fully
    /// decoded columns and a per-atom directory of
    /// `(relation index, support, provenance)` in global id order,
    /// without routing every row through [`Instance::insert_ids`].
    /// Columns are adopted verbatim and every index, sketch and depth is
    /// reconstructed in pre-sized single passes, producing a state
    /// byte-identical (under re-encoding) to replaying the inserts — the
    /// sketches see each relation's rows in the original insert order.
    /// Errors are structural-corruption messages for the codec to wrap.
    pub(crate) fn bulk_load(
        null_depth: Vec<u32>,
        rels: Vec<(Symbol, usize, Vec<Vec<TermId>>)>,
        directory: Vec<(u32, u32, Option<Derivation>)>,
    ) -> std::result::Result<Instance, &'static str> {
        let mut rels_of: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
        for (i, (pred, arity, _)) in rels.iter().enumerate() {
            let entries = rels_of.entry(*pred).or_default();
            if entries.iter().any(|&j| rels[j as usize].1 == *arity) {
                return Err("duplicate relation in directory");
            }
            entries.push(i as u32);
        }
        // Pass 1 — the atom directory assigns global ids to relation
        // rows in order; depths are recomputed from the null table
        // exactly as the original inserts did.
        let mut row_ids: Vec<Vec<AtomId>> = rels
            .iter()
            .map(|(_, arity, cols)| Vec::with_capacity(if *arity == 0 { 0 } else { cols[0].len() }))
            .collect();
        let mut meta = Vec::with_capacity(directory.len());
        let mut by_pred: FxHashMap<Symbol, Vec<AtomId>> = FxHashMap::default();
        for (id, (rel_idx, support, derivation)) in directory.into_iter().enumerate() {
            let (pred, arity, cols) = rels
                .get(rel_idx as usize)
                .ok_or("atom directory references an unknown relation")?;
            let row = row_ids[rel_idx as usize].len();
            if *arity > 0 && row >= cols[0].len() {
                return Err("atom directory overruns its relation");
            }
            let mut depth = 0;
            for col in cols.iter() {
                if let Some(n) = col[row].as_null() {
                    let d = *null_depth.get(n.0 as usize).ok_or("null id out of range")?;
                    depth = depth.max(d);
                }
            }
            row_ids[rel_idx as usize].push(id as AtomId);
            by_pred.entry(*pred).or_default().push(id as AtomId);
            meta.push(Meta {
                rel: rel_idx,
                row: row as u32,
                derivation,
                depth,
                support,
                dead: false,
            });
        }
        // Pass 2 — per relation, adopt the columns and rebuild the
        // dedup table, posting lists and stats in one sized sweep.
        let mut relations = Vec::with_capacity(rels.len());
        for ((pred, arity, cols), ids) in rels.into_iter().zip(row_ids) {
            let rows = if arity == 0 { ids.len() } else { cols[0].len() };
            if ids.len() != rows {
                return Err("relation rows not covered by atom directory");
            }
            relations.push(Relation::from_columns(pred, arity, cols, ids)?);
        }
        Ok(Instance {
            relations,
            rels_of,
            by_pred,
            meta,
            null_depth,
            dead: 0,
            joint_builds: 0,
        })
    }

    /// Ensures a joint hash index over `cols` (ascending column indexes)
    /// exists on the relation of `pred` at `arity`. Returns `true` when
    /// an index was actually built (a fresh request, or a rebuild after
    /// tombstone/compaction invalidation); `false` when it already
    /// existed or no such relation stores any tuples.
    pub fn ensure_joint_index(&mut self, pred: Symbol, arity: usize, cols: &[u8]) -> bool {
        let Some(idxs) = self.rels_of.get(&pred) else {
            return false;
        };
        let Some(&i) = idxs
            .iter()
            .find(|&&i| self.relations[i as usize].arity == arity)
        else {
            return false;
        };
        let built = self.relations[i as usize].build_joint_index(cols);
        if built {
            self.joint_builds += 1;
        }
        built
    }

    /// Joint hash indexes built over this instance's lifetime (rebuilds
    /// after invalidation count again).
    pub fn joint_builds(&self) -> usize {
        self.joint_builds
    }

    /// Drops every joint index not named in `wanted` (`(pred, arity,
    /// cols)` tuples). The planner calls this after a re-plan: an index
    /// no current plan wants would otherwise hold its relation's index
    /// cap *and* keep paying per-insert maintenance forever (in an
    /// insert-only workload no tombstone ever clears it).
    pub fn retain_joint_indexes(&mut self, wanted: &[(Symbol, usize, Box<[u8]>)]) {
        for rel in &mut self.relations {
            rel.joint.retain(|j| {
                wanted
                    .iter()
                    .any(|(p, a, cols)| *p == rel.pred && *a == rel.arity && **cols == *j.cols)
            });
        }
    }

    /// The atom with the given id, decoded into a value.
    pub fn atom(&self, id: AtomId) -> GroundAtom {
        let m = &self.meta[id as usize];
        let rel = &self.relations[m.rel as usize];
        GroundAtom {
            pred: rel.pred,
            terms: rel.row(m.row).map(TermId::to_term).collect(),
        }
    }

    /// The predicate of the atom with the given id.
    #[inline]
    pub fn pred_of(&self, id: AtomId) -> Symbol {
        self.relations[self.meta[id as usize].rel as usize].pred
    }

    /// The storage row of the atom within its predicate's [`Relation`].
    #[inline]
    pub fn row_of(&self, id: AtomId) -> u32 {
        self.meta[id as usize].row
    }

    /// The atom's encoded argument tuple (column order).
    pub fn key_of(&self, id: AtomId) -> Vec<TermId> {
        let m = &self.meta[id as usize];
        self.relations[m.rel as usize].row(m.row).collect()
    }

    /// Decodes the atom into constants only; `None` if it mentions a null.
    pub fn const_tuple(&self, id: AtomId) -> Option<Vec<Symbol>> {
        let m = &self.meta[id as usize];
        let rel = &self.relations[m.rel as usize];
        rel.row(m.row).map(TermId::as_const).collect()
    }

    /// The provenance of the atom with the given id (`None` for database
    /// atoms).
    pub fn derivation(&self, id: AtomId) -> Option<&Derivation> {
        self.meta[id as usize].derivation.as_ref()
    }

    /// True iff the atom has not been tombstoned.
    #[inline]
    pub fn is_live(&self, id: AtomId) -> bool {
        !self.meta[id as usize].dead
    }

    /// The support count of the atom: 1 + the number of duplicate
    /// insertion attempts observed. A schedule-dependent diagnostic upper
    /// bound on the number of distinct derivations, surfaced by the
    /// incremental-maintenance stats.
    pub fn support(&self, id: AtomId) -> u32 {
        self.meta[id as usize].support
    }

    /// Tombstones an atom: it disappears from every index (joins,
    /// membership probes, posting lists, iteration) while keeping its id
    /// and row slot, so surviving ids never shift. Returns `false` if the
    /// atom was already dead. The caller is responsible for the semantic
    /// side (DRed over-deletion of dependents — see
    /// [`crate::incremental`]).
    pub fn tombstone(&mut self, id: AtomId) -> bool {
        let m = &mut self.meta[id as usize];
        if m.dead {
            return false;
        }
        m.dead = true;
        let (rel_idx, row) = (m.rel, m.row);
        self.relations[rel_idx as usize].unlink(row, id);
        let pred = self.relations[rel_idx as usize].pred;
        if let Some(ids) = self.by_pred.get_mut(&pred) {
            if let Ok(pos) = ids.binary_search(&id) {
                ids.remove(pos);
            }
        }
        self.dead += 1;
        true
    }

    /// A compacted copy: live atoms only, dense fresh ids (in the same
    /// relative order), re-pointed provenance. Returns the copy plus the
    /// id remapping (`old id → new id`, `None` for dead atoms). Null ids
    /// and their depths are preserved verbatim, so `TermId`s (and any
    /// skolem memoization keyed on them) stay valid across compaction.
    pub fn compacted(&self) -> (Instance, Vec<Option<AtomId>>) {
        let mut out = Instance::new();
        out.null_depth = self.null_depth.clone();
        let mut remap: Vec<Option<AtomId>> = vec![None; self.meta.len()];
        let mut key: Vec<TermId> = Vec::new();
        for (id, m) in self.meta.iter().enumerate() {
            if m.dead {
                continue;
            }
            let rel = &self.relations[m.rel as usize];
            key.clear();
            key.extend(rel.row(m.row));
            let derivation = m.derivation.as_ref().map(|d| Derivation {
                rule: d.rule,
                body: d
                    .body
                    .iter()
                    .map(|&b| {
                        remap[b as usize].expect(
                            "a live atom's provenance references live atoms \
                             (dependents are over-deleted before their support)",
                        )
                    })
                    .collect(),
            });
            let (new_id, fresh) = out.insert_ids(rel.pred, &key, derivation);
            debug_assert!(fresh, "live atoms are distinct tuples");
            out.meta[new_id as usize].support = m.support;
            remap[id] = Some(new_id);
        }
        (out, remap)
    }

    /// The null-invention depth of the atom (0 if it mentions no nulls).
    pub fn depth(&self, id: AtomId) -> u32 {
        self.meta[id as usize].depth
    }

    /// Looks up an atom value, returning its id if present.
    pub fn find(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.find_terms(atom.pred, &atom.terms)
    }

    /// Membership test for an atom value.
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.find(atom).is_some()
    }

    /// Borrowed-key lookup: no `GroundAtom` (and no key) is built. Terms
    /// are encoded on the fly; a variable term never matches.
    pub fn find_terms(&self, pred: Symbol, terms: &[Term]) -> Option<AtomId> {
        let rel = self.relation(pred, terms.len())?;
        let hash = tuple_hash(terms.iter().filter_map(|&t| TermId::from_term(t)));
        let candidates = rel.row_lookup.get(&hash)?;
        let row = candidates.iter().copied().find(|&row| {
            terms
                .iter()
                .enumerate()
                .all(|(c, &t)| TermId::from_term(t) == Some(rel.cols[c][row as usize]))
        })?;
        Some(rel.row_id[row as usize])
    }

    /// Borrowed-key membership for a term slice.
    pub fn contains_terms(&self, pred: Symbol, terms: &[Term]) -> bool {
        self.find_terms(pred, terms).is_some()
    }

    /// Borrowed-key lookup over an already-encoded row.
    #[inline]
    pub fn find_ids(&self, pred: Symbol, key: &[TermId]) -> Option<AtomId> {
        let rel = self.relation(pred, key.len())?;
        let row = rel.find_row(key)?;
        Some(rel.row_id[row as usize])
    }

    /// Borrowed-key membership over an already-encoded row.
    #[inline]
    pub fn contains_ids(&self, pred: Symbol, key: &[TermId]) -> bool {
        self.find_ids(pred, key).is_some()
    }

    /// Creates a fresh labeled null invented at `depth`.
    pub fn fresh_null(&mut self, depth: u32) -> NullId {
        let id = NullId(self.null_depth.len() as u32);
        self.null_depth.push(depth);
        id
    }

    /// The invention depth of a null.
    pub fn null_depth(&self, null: NullId) -> u32 {
        self.null_depth[null.0 as usize]
    }

    /// Number of nulls invented so far.
    pub fn null_count(&self) -> usize {
        self.null_depth.len()
    }

    /// 1 + the maximum invention depth among the nulls of `terms`
    /// (1 if there are none). This is the depth a *new* null invented from
    /// these frontier values gets.
    pub fn next_depth(&self, terms: &[Term]) -> u32 {
        terms
            .iter()
            .filter_map(|t| t.as_null())
            .map(|n| self.null_depth(n))
            .max()
            .map_or(1, |d| d + 1)
    }

    /// Like [`Instance::next_depth`] over an encoded row.
    pub fn next_depth_ids(&self, key: &[TermId]) -> u32 {
        key.iter()
            .filter_map(|t| t.as_null())
            .map(|n| self.null_depth(n))
            .max()
            .map_or(1, |d| d + 1)
    }

    /// Inserts an atom value, returning `(id, inserted)`.
    pub fn insert(&mut self, atom: GroundAtom, derivation: Option<Derivation>) -> (AtomId, bool) {
        let key: Vec<TermId> = atom
            .terms
            .iter()
            .map(|&t| TermId::from_term(t).expect("instance atoms are ground"))
            .collect();
        self.insert_ids(atom.pred, &key, derivation)
    }

    /// Inserts an encoded row, returning `(id, inserted)`. This is the
    /// chase's write path: the key is borrowed, so a duplicate insert
    /// allocates nothing.
    pub fn insert_ids(
        &mut self,
        pred: Symbol,
        key: &[TermId],
        derivation: Option<Derivation>,
    ) -> (AtomId, bool) {
        let rel_idx = self.relation_mut(pred, key.len());
        let id = self.meta.len() as AtomId;
        let (row, inserted) = self.relations[rel_idx as usize].find_or_push(key, id);
        if !inserted {
            let existing = self.relations[rel_idx as usize]
                .row_to_id(row)
                .expect("a deduplicated row is live");
            self.meta[existing as usize].support += 1;
            return (existing, false);
        }
        let depth = key
            .iter()
            .filter_map(|t| t.as_null())
            .map(|n| self.null_depth(n))
            .max()
            .unwrap_or(0);
        self.by_pred.entry(pred).or_default().push(id);
        self.meta.push(Meta {
            rel: rel_idx,
            row,
            derivation,
            depth,
            support: 1,
            dead: false,
        });
        (id, true)
    }

    /// Inserts a database fact built from constant strings.
    pub fn insert_fact(&mut self, pred: &str, constants: &[&str]) -> AtomId {
        let key: Vec<TermId> = constants
            .iter()
            .map(|c| TermId::from_const(Symbol::new(c)))
            .collect();
        self.insert_ids(Symbol::new(pred), &key, None).0
    }

    /// Ids of all atoms with predicate `pred`, ascending.
    pub fn ids_by_pred(&self, pred: Symbol) -> &[AtomId] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all live atoms (with ids), in insertion order. Atoms
    /// are decoded on the fly from the columnar store; tombstoned atoms
    /// are skipped.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, GroundAtom)> + '_ {
        (0..self.meta.len() as AtomId)
            .filter(move |&id| !self.meta[id as usize].dead)
            .map(move |id| (id, self.atom(id)))
    }

    /// All atoms of a predicate, decoded.
    pub fn atoms_of(&self, pred: Symbol) -> impl Iterator<Item = GroundAtom> + '_ {
        self.ids_by_pred(pred).iter().map(move |&id| self.atom(id))
    }

    /// The ground part `Π(D)↓`: all atoms whose terms are constants only
    /// (§6.3, Step 1).
    pub fn ground_part(&self) -> Vec<GroundAtom> {
        self.iter()
            .map(|(_, a)| a)
            .filter(GroundAtom::is_fully_ground)
            .collect()
    }

    /// Checks whether any atom of `pred` is stored (used by the
    /// restricted chase and tests); see [`crate::ChaseConfig`] for the
    /// full matcher.
    pub fn has_pred(&self, pred: Symbol) -> bool {
        self.by_pred.get(&pred).is_some_and(|v| !v.is_empty())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|(_, a)| a)).finish()
    }
}

/// A database: a finite instance over constants only (§3.2).
#[derive(Default, Clone)]
pub struct Database {
    instance: Instance,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The backing instance (persistence codec).
    pub(crate) fn instance_ref(&self) -> &Instance {
        &self.instance
    }

    /// Wraps a decoded instance (persistence decode). The caller
    /// guarantees database invariants: constants only, no derivations.
    pub(crate) fn from_instance(instance: Instance) -> Database {
        Database { instance }
    }

    /// Adds a fact; errors if any term is not a constant.
    pub fn add(&mut self, atom: &Atom) -> Result<()> {
        let key: Option<Vec<TermId>> = atom
            .terms
            .iter()
            .map(|&t| t.as_const().map(TermId::from_const))
            .collect();
        let Some(key) = key else {
            return Err(TriqError::InvalidProgram(format!(
                "database fact {atom} contains a non-constant term"
            )));
        };
        self.instance.insert_ids(atom.pred, &key, None);
        Ok(())
    }

    /// Adds a fact from strings.
    pub fn add_fact(&mut self, pred: &str, constants: &[&str]) {
        self.instance.insert_fact(pred, constants);
    }

    /// Adds a fact from already-interned symbols — the fast bridge path
    /// (`τ_db` of §5.1 feeds rows straight from the RDF store without a
    /// string round-trip). Returns `true` if the fact was not already
    /// present.
    pub fn add_row(&mut self, pred: Symbol, constants: &[Symbol]) -> bool {
        let key: Vec<TermId> = constants.iter().copied().map(TermId::from_const).collect();
        self.instance.insert_ids(pred, &key, None).1
    }

    /// Bulk ingest: adopts pre-interned rows of a single predicate
    /// straight into the columnar store, the way the persistence decoder
    /// does — one sized pass per column instead of a per-row
    /// [`Database::add_row`] probe against an ever-growing dedup table.
    /// `columns` is column-major (`columns[c][r]` is row `r`'s term in
    /// position `c`); duplicate rows fold into the first occurrence's
    /// support count, so the result is byte-identical (under re-encoding)
    /// to `add_row`-ing every input row in order. Errors only on ragged
    /// columns.
    pub fn bulk_rows(pred: Symbol, columns: Vec<Vec<Symbol>>) -> Result<Database> {
        let arity = columns.len();
        let rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != rows) {
            return Err(TriqError::InvalidProgram(format!(
                "bulk rows for {pred} have ragged columns"
            )));
        }
        // Dedup in insert order, folding repeats into support counts —
        // exactly what replaying add_row would have produced.
        let mut first_of: FxHashMap<Vec<TermId>, u32> = FxHashMap::default();
        first_of.reserve(rows);
        let mut out: Vec<Vec<TermId>> = (0..arity).map(|_| Vec::with_capacity(rows)).collect();
        let mut supports: Vec<u32> = Vec::with_capacity(rows);
        let mut key: Vec<TermId> = Vec::with_capacity(arity);
        for r in 0..rows {
            key.clear();
            key.extend(columns.iter().map(|c| TermId::from_const(c[r])));
            match first_of.entry(key.clone()) {
                Entry::Occupied(e) => supports[*e.get() as usize] += 1,
                Entry::Vacant(e) => {
                    e.insert(supports.len() as u32);
                    for (c, col) in out.iter_mut().enumerate() {
                        col.push(key[c]);
                    }
                    supports.push(1);
                }
            }
        }
        let directory = supports.iter().map(|&s| (0, s, None)).collect();
        let instance = Instance::bulk_load(Vec::new(), vec![(pred, arity, out)], directory)
            .map_err(|m| TriqError::InvalidProgram(format!("bulk load: {m}")))?;
        Ok(Database { instance })
    }

    /// Removes a fact given as interned symbols; returns `true` if it was
    /// present. Removal tombstones the row — [`Database::to_instance`]
    /// compacts before seeding a chase, so chase ids stay dense.
    pub fn remove_row(&mut self, pred: Symbol, constants: &[Symbol]) -> bool {
        let key: Vec<TermId> = constants.iter().copied().map(TermId::from_const).collect();
        match self.instance.find_ids(pred, &key) {
            Some(id) => self.instance.tombstone(id),
            None => false,
        }
    }

    /// Removes a fact given as strings; returns `true` if it was present.
    pub fn remove_fact(&mut self, pred: &str, constants: &[&str]) -> bool {
        let symbols: Vec<Symbol> = constants.iter().map(|c| Symbol::new(c)).collect();
        self.remove_row(Symbol::new(pred), &symbols)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.instance.live_len()
    }

    /// True iff the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// The facts as a fresh [`Instance`] seed. The columnar store clones
    /// wholesale (columns + indexes), with no per-atom re-hashing; only a
    /// database that has seen removals pays for a compacting copy (the
    /// chase relies on dense, gap-free seed ids).
    pub fn to_instance(&self) -> Instance {
        if self.instance.dead_len() == 0 {
            self.instance.clone()
        } else {
            self.instance.compacted().0
        }
    }

    /// Iterates over the facts.
    pub fn iter(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        self.instance.iter().map(|(_, a)| a)
    }

    /// All constants occurring in the database (`dom(D)`). Streams the
    /// live rows straight out of the columns — no per-fact decoding or
    /// allocation; removed facts no longer contribute.
    pub fn domain(&self) -> std::collections::BTreeSet<Symbol> {
        let inst = &self.instance;
        inst.meta
            .iter()
            .filter(|m| !m.dead)
            .flat_map(|m| inst.relations[m.rel as usize].row(m.row))
            .filter_map(|t| t.as_const())
            .collect()
    }

    /// Membership test for a fully-ground atom.
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.instance.contains(atom)
    }

    /// Borrowed-key membership over an already-encoded row (used by the
    /// incremental maintenance to re-assert base facts whose instance
    /// atom was over-deleted).
    pub fn contains_ids(&self, pred: Symbol, key: &[TermId]) -> bool {
        self.instance.contains_ids(pred, key)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.instance.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::intern;

    #[test]
    fn insert_and_lookup() {
        let mut inst = Instance::new();
        let id = inst.insert_fact("edge", &["a", "b"]);
        let (id2, fresh) = inst.insert(
            GroundAtom::new(
                intern("edge"),
                vec![Term::constant("a"), Term::constant("b")].into(),
            ),
            None,
        );
        assert_eq!(id, id2);
        assert!(!fresh);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.atom(id).to_string(), "edge(a, b)");
    }

    #[test]
    fn column_index_lookups() {
        let mut inst = Instance::new();
        inst.insert_fact("edge", &["a", "b"]);
        inst.insert_fact("edge", &["a", "c"]);
        inst.insert_fact("edge", &["b", "c"]);
        let a = TermId::from_const(intern("a"));
        let rel = inst.relation(intern("edge"), 2).unwrap();
        assert_eq!(rel.ids_by_column(0, a).len(), 2);
        assert_eq!(rel.ids_by_column(1, a).len(), 0);
        assert_eq!(inst.ids_by_pred(intern("edge")).len(), 3);
        assert_eq!(inst.ids_by_pred(intern("nothing")).len(), 0);
    }

    #[test]
    fn relation_layout_is_columnar() {
        let mut inst = Instance::new();
        inst.insert_fact("edge", &["a", "b"]);
        inst.insert_fact("edge", &["b", "c"]);
        let rel = inst.relation(intern("edge"), 2).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.arity(), 2);
        assert_eq!(rel.value(0, 1), TermId::from_const(intern("b")));
        assert_eq!(rel.value(1, 0), TermId::from_const(intern("b")));
        let key = [
            TermId::from_const(intern("b")),
            TermId::from_const(intern("c")),
        ];
        assert_eq!(rel.find_row(&key), Some(1));
        assert!(inst.contains_ids(intern("edge"), &key));
        assert!(inst.relation(intern("edge"), 3).is_none());
    }

    #[test]
    fn borrowed_key_find_terms() {
        let mut inst = Instance::new();
        let id = inst.insert_fact("p", &["a", "b"]);
        let terms = [Term::constant("a"), Term::constant("b")];
        assert_eq!(inst.find_terms(intern("p"), &terms), Some(id));
        assert!(inst.contains_terms(intern("p"), &terms));
        let absent = [Term::constant("b"), Term::constant("a")];
        assert_eq!(inst.find_terms(intern("p"), &absent), None);
        // A variable never matches.
        let with_var = [Term::Var(triq_common::VarId::new("X")), Term::constant("b")];
        assert_eq!(inst.find_terms(intern("p"), &with_var), None);
    }

    #[test]
    fn null_depth_tracking() {
        let mut inst = Instance::new();
        let n0 = inst.fresh_null(1);
        let atom = GroundAtom::new(intern("p"), vec![Term::Null(n0)].into());
        let (id, _) = inst.insert(atom, None);
        assert_eq!(inst.depth(id), 1);
        assert_eq!(inst.next_depth(&[Term::Null(n0)]), 2);
        assert_eq!(inst.next_depth(&[Term::constant("a")]), 1);
        assert_eq!(inst.ground_part().len(), 0);
        assert_eq!(inst.const_tuple(id), None);
    }

    #[test]
    fn database_rejects_nulls_and_vars() {
        let mut db = Database::new();
        let bad = Atom::from_parts("p", vec![Term::Var(triq_common::VarId::new("X"))]);
        assert!(db.add(&bad).is_err());
        db.add_fact("p", &["a"]);
        assert_eq!(db.len(), 1);
        assert!(db.domain().contains(&intern("a")));
    }

    #[test]
    fn provenance_round_trip() {
        let mut inst = Instance::new();
        let body = inst.insert_fact("p", &["a"]);
        let atom = GroundAtom::new(intern("q"), vec![Term::constant("a")].into());
        let (id, _) = inst.insert(
            atom,
            Some(Derivation {
                rule: 3,
                body: vec![body],
            }),
        );
        let d = inst.derivation(id).unwrap();
        assert_eq!(d.rule, 3);
        assert_eq!(d.body, vec![body]);
        assert!(inst.derivation(body).is_none());
    }

    #[test]
    fn tombstone_hides_atom_from_every_index() {
        let mut inst = Instance::new();
        let a = inst.insert_fact("e", &["a", "b"]);
        let b = inst.insert_fact("e", &["b", "c"]);
        assert!(inst.tombstone(a));
        assert!(!inst.tombstone(a), "double tombstone is a no-op");
        assert_eq!(inst.len(), 2, "len stays the id watermark");
        assert_eq!(inst.live_len(), 1);
        assert_eq!(inst.dead_len(), 1);
        assert!(!inst.is_live(a));
        assert!(inst.is_live(b));
        // Probes, posting lists, per-pred ids and iteration all miss it.
        let key = [
            TermId::from_const(intern("a")),
            TermId::from_const(intern("b")),
        ];
        assert!(!inst.contains_ids(intern("e"), &key));
        assert_eq!(inst.ids_by_pred(intern("e")), &[b]);
        assert_eq!(
            inst.relation(intern("e"), 2)
                .unwrap()
                .ids_by_column(0, TermId::from_const(intern("a")))
                .len(),
            0
        );
        assert_eq!(inst.iter().count(), 1);
        let rel = inst.relation(intern("e"), 2).unwrap();
        assert_eq!(rel.atom_ids(), &[b]);
        // The dead atom still decodes (ids are never reused).
        assert_eq!(inst.atom(a).to_string(), "e(a, b)");
        // Re-inserting the tuple issues a fresh id.
        let a2 = inst.insert_fact("e", &["a", "b"]);
        assert_ne!(a2, a);
        assert!(inst.contains_ids(intern("e"), &key));
        assert_eq!(inst.find_ids(intern("e"), &key), Some(a2));
    }

    #[test]
    fn support_counts_duplicate_insertions() {
        let mut inst = Instance::new();
        let id = inst.insert_fact("p", &["a"]);
        assert_eq!(inst.support(id), 1);
        let (again, fresh) = inst.insert(
            GroundAtom::new(intern("p"), vec![Term::constant("a")].into()),
            Some(Derivation {
                rule: 0,
                body: vec![],
            }),
        );
        assert_eq!(again, id);
        assert!(!fresh);
        assert_eq!(inst.support(id), 2);
    }

    #[test]
    fn compaction_renumbers_and_repoints_provenance() {
        let mut inst = Instance::new();
        let e = inst.insert_fact("e", &["a", "b"]);
        let dead = inst.insert_fact("e", &["x", "y"]);
        let atom = GroundAtom::new(intern("t"), vec![Term::constant("a")].into());
        let (t, _) = inst.insert(
            atom.clone(),
            Some(Derivation {
                rule: 7,
                body: vec![e],
            }),
        );
        inst.tombstone(dead);
        let (compact, remap) = inst.compacted();
        assert_eq!(compact.len(), 2);
        assert_eq!(compact.dead_len(), 0);
        assert_eq!(remap[dead as usize], None);
        let new_t = remap[t as usize].unwrap();
        assert_eq!(compact.atom(new_t), atom);
        let d = compact.derivation(new_t).unwrap();
        assert_eq!(d.rule, 7);
        assert_eq!(d.body, vec![remap[e as usize].unwrap()]);
    }

    #[test]
    fn database_removal_and_compacting_seed() {
        let mut db = Database::new();
        db.add_fact("e", &["a", "b"]);
        db.add_fact("e", &["b", "c"]);
        assert!(db.remove_fact("e", &["a", "b"]));
        assert!(!db.remove_fact("e", &["a", "b"]), "absent fact");
        assert_eq!(db.len(), 1);
        assert!(!db.domain().contains(&intern("a")));
        let seed = db.to_instance();
        assert_eq!(seed.len(), 1, "seed is compacted (dense ids)");
        assert_eq!(seed.dead_len(), 0);
        assert!(db.add_row(intern("e"), &[intern("a"), intern("b")]));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn joint_index_builds_probes_and_follows_inserts() {
        let mut inst = Instance::new();
        for i in 0..20 {
            inst.insert_fact(
                "t",
                &[
                    &format!("a{}", i % 4),
                    &format!("b{}", i % 5),
                    &format!("c{i}"),
                ],
            );
        }
        assert_eq!(inst.joint_builds(), 0);
        assert!(inst.ensure_joint_index(intern("t"), 3, &[0, 1]));
        assert!(
            !inst.ensure_joint_index(intern("t"), 3, &[0, 1]),
            "idempotent"
        );
        assert_eq!(inst.joint_builds(), 1);
        // No relation / wrong arity: nothing to build.
        assert!(!inst.ensure_joint_index(intern("absent"), 2, &[0]));
        assert!(!inst.ensure_joint_index(intern("t"), 2, &[0]));
        let key = |s: &str| TermId::from_const(intern(s));
        let rel = inst.relation(intern("t"), 3).unwrap();
        assert!(rel.has_joint_index(&[0, 1]));
        assert!(!rel.has_joint_index(&[0, 2]));
        let ids = rel
            .joint_ids(&[0, 1], [key("a0"), key("b0")].into_iter())
            .unwrap();
        // i ≡ 0 (mod 4) and i ≡ 0 (mod 5) → i = 0 only, within 0..20.
        assert_eq!(ids.len(), 1);
        assert_eq!(inst.atom(ids[0]).to_string(), "t(a0, b0, c0)");
        // The index follows later inserts (i = 20 ≡ 0 mod 4 and mod 5).
        let id20 = inst.insert_fact("t", &["a0", "b0", "c20"]);
        let rel = inst.relation(intern("t"), 3).unwrap();
        let ids = rel
            .joint_ids(&[0, 1], [key("a0"), key("b0")].into_iter())
            .unwrap();
        assert_eq!(ids, &[0, id20], "ascending, freshly inserted row included");
        // An unindexed column set probes as absent.
        assert!(rel
            .joint_ids(&[1, 2], [key("b0"), key("c0")].into_iter())
            .is_none());
    }

    #[test]
    fn tombstone_invalidates_joint_indexes_and_rebuild_counts() {
        // The counter-probe for the index lifecycle (the planner's
        // `index_builds` stat reads the same counter): tombstone →
        // invalidated; next ensure → rebuilt, counted again.
        let mut inst = Instance::new();
        for i in 0..8 {
            inst.insert_fact(
                "e",
                &[
                    &format!("x{}", i % 2),
                    &format!("y{}", i % 2),
                    &format!("z{i}"),
                ],
            );
        }
        assert!(inst.ensure_joint_index(intern("e"), 3, &[0, 1]));
        assert_eq!(inst.joint_builds(), 1);
        let victim = inst
            .find_ids(
                intern("e"),
                &[
                    TermId::from_const(intern("x1")),
                    TermId::from_const(intern("y1")),
                    TermId::from_const(intern("z1")),
                ],
            )
            .unwrap();
        inst.tombstone(victim);
        let rel = inst.relation(intern("e"), 3).unwrap();
        assert!(!rel.has_joint_index(&[0, 1]), "tombstone invalidates");
        // Rebuilding counts again and excludes the dead row.
        assert!(inst.ensure_joint_index(intern("e"), 3, &[0, 1]));
        assert_eq!(inst.joint_builds(), 2, "rebuild after invalidation");
        let rel = inst.relation(intern("e"), 3).unwrap();
        let ids = rel
            .joint_ids(
                &[0, 1],
                [
                    TermId::from_const(intern("x1")),
                    TermId::from_const(intern("y1")),
                ]
                .into_iter(),
            )
            .unwrap();
        assert!(!ids.contains(&victim), "dead rows are not re-indexed");
        assert_eq!(ids.len(), 3, "x1/y1 rows minus the tombstoned one");
        // Compaction produces a fresh store: indexes (and the counter)
        // do not survive — the planner re-requests on its next pass.
        let (compact, _) = inst.compacted();
        assert!(!compact
            .relation(intern("e"), 3)
            .unwrap()
            .has_joint_index(&[0, 1]));
        assert_eq!(compact.joint_builds(), 0);
    }

    #[test]
    fn joint_index_requests_beyond_the_cap_are_refused() {
        let mut inst = Instance::new();
        for i in 0..4 {
            inst.insert_fact("w", &[&format!("a{i}"), &format!("b{i}"), &format!("c{i}")]);
        }
        assert!(inst.ensure_joint_index(intern("w"), 3, &[0, 1]));
        assert!(inst.ensure_joint_index(intern("w"), 3, &[1, 2]));
        // A third column set is refused (cap = 2 per relation): probes
        // for it fall back to the per-column path instead of triggering
        // an evict-and-rebuild cycle at every stratum entry.
        assert!(!inst.ensure_joint_index(intern("w"), 3, &[0, 2]));
        assert_eq!(inst.joint_builds(), 2);
        let rel = inst.relation(intern("w"), 3).unwrap();
        assert!(rel.has_joint_index(&[0, 1]));
        assert!(rel.has_joint_index(&[1, 2]));
        assert!(!rel.has_joint_index(&[0, 2]));
        // Retiring unwanted indexes (what a re-plan does) frees the cap
        // for newly wanted ones.
        inst.retain_joint_indexes(&[(intern("w"), 3, Box::from([1u8, 2]))]);
        let rel = inst.relation(intern("w"), 3).unwrap();
        assert!(!rel.has_joint_index(&[0, 1]), "unwanted index retired");
        assert!(rel.has_joint_index(&[1, 2]));
        assert!(inst.ensure_joint_index(intern("w"), 3, &[0, 2]));
        // Tombstoning clears the slots; the next requests win them back.
        inst.tombstone(0);
        assert!(!inst
            .relation(intern("w"), 3)
            .unwrap()
            .has_joint_index(&[0, 2]));
        assert!(inst.ensure_joint_index(intern("w"), 3, &[0, 2]));
        assert!(inst
            .relation(intern("w"), 3)
            .unwrap()
            .has_joint_index(&[0, 2]));
    }

    #[test]
    fn relation_stats_observe_inserts() {
        let mut inst = Instance::new();
        for i in 0..50 {
            inst.insert_fact("p", &[&format!("k{}", i % 10), "same"]);
        }
        // Duplicates are deduplicated before stats see them: 10 distinct
        // tuples inserted, 40 duplicate attempts invisible.
        let rel = inst.relation(intern("p"), 2).unwrap();
        assert_eq!(rel.stats().rows, 10);
        let d0 = rel.stats().cols[0].distinct();
        assert!((9..=11).contains(&d0), "col 0 distinct ≈ 10, got {d0}");
        assert_eq!(rel.stats().cols[1].distinct(), 1);
        let same = TermId::from_const(intern("same")).raw();
        assert!(!rel.stats().cols[1].excludes(same));
        assert_eq!(rel.stats().cols[1].range(), Some((same, same)));
    }

    #[test]
    fn mixed_arity_predicates_coexist() {
        // A database is not bound by a program's arity coherence; the
        // store keeps one relation per (pred, arity).
        let mut inst = Instance::new();
        inst.insert_fact("p", &["a"]);
        inst.insert_fact("p", &["a", "b"]);
        assert_eq!(inst.ids_by_pred(intern("p")).len(), 2);
        assert_eq!(inst.relation(intern("p"), 1).unwrap().len(), 1);
        assert_eq!(inst.relation(intern("p"), 2).unwrap().len(), 1);
    }
}
