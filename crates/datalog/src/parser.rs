//! Text syntax for Datalog∃,¬s,⊥ programs, mirroring the paper's notation.
//!
//! ```text
//! # §2: recursive transport query
//! triple(?X, partOf, transportService) -> ts(?X).
//! triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).
//! ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).
//! ts(?T), triple(?X, ?T, ?Z), query(?Z, ?Y) -> query(?X, ?Y).
//!
//! # existentials, negation, builtins and constraints:
//! subj(?X) -> exists ?Y bn(?X, ?Y).
//! less(?X, ?Y), !not_min(?X) -> zero(?X).
//! p(?X, ?Y), ?X != ?Y -> q(?X).
//! type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.
//! ```
//!
//! * Variables start with `?`; everything else is a constant (bare word or
//!   `"quoted string"`).
//! * `!atom` is stratified negation; `false` as the head forms a constraint.
//! * `exists ?Y1 ?Y2 ...` before the head lists existential variables.
//! * Rules may have several head atoms separated by commas (footnote 6).
//! * `#` starts a line comment; each rule ends with `.`.

use crate::{Atom, Builtin, Constraint, Program, Rule};
use triq_common::{intern, Result, Term, TriqError, VarId};

fn err(message: impl Into<String>) -> TriqError {
    TriqError::Parse {
        what: "datalog",
        message: message.into(),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Var(String),
    Str(String),
    LParen,
    RParen,
    Comma,
    Bang,
    Arrow,
    Dot,
    Eq,
    Neq,
    Exists,
    False,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            '#' => {
                // A comment runs to the end of the line, where "line"
                // must include CR-only endings: stopping at '\n' alone
                // silently swallowed the rest of a CR-terminated program
                // (the rules after the comment simply vanished).
                for (_, ch) in chars.by_ref() {
                    if ch == '\n' || ch == '\r' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '.' => {
                chars.next();
                toks.push(Tok::Dot);
            }
            '!' => {
                chars.next();
                if matches!(chars.peek(), Some(&(_, '='))) {
                    chars.next();
                    toks.push(Tok::Neq);
                } else {
                    toks.push(Tok::Bang);
                }
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '-' => {
                chars.next();
                match chars.next() {
                    Some((_, '>')) => toks.push(Tok::Arrow),
                    _ => return Err(err(format!("stray '-' at byte {i}"))),
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match chars.next() {
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, other)) => s.push(other),
                            None => return Err(err("dangling escape")),
                        },
                        Some((_, other)) => s.push(other),
                        None => return Err(err("unterminated string literal")),
                    }
                }
                toks.push(Tok::Str(s));
            }
            '?' => {
                chars.next();
                let mut name = String::from("?");
                while let Some(&(_, ch)) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        name.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.len() == 1 {
                    return Err(err(format!("empty variable name at byte {i}")));
                }
                toks.push(Tok::Var(name));
            }
            c if c.is_alphanumeric() || c == '_' || c == '~' => {
                let mut name = String::new();
                while let Some(&(_, ch)) = chars.peek() {
                    // Identifiers may contain ':' (rdf:type), '/', '-' is
                    // excluded (it starts '->'); dots are separators.
                    if ch.is_alphanumeric() || matches!(ch, '_' | ':' | '/' | '\'' | '~') {
                        name.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "exists" => toks.push(Tok::Exists),
                    "false" => toks.push(Tok::False),
                    _ => toks.push(Tok::Ident(name)),
                }
            }
            other => return Err(err(format!("unexpected character {other:?} at byte {i}"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(err(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn term(&mut self) -> Result<Term> {
        match self.next() {
            Some(Tok::Var(name)) => Ok(Term::Var(VarId::new(&name))),
            Some(Tok::Ident(name)) => Ok(Term::Const(intern(&name))),
            Some(Tok::Str(s)) => Ok(Term::Const(intern(&s))),
            other => Err(err(format!("expected a term, found {other:?}"))),
        }
    }

    fn atom_after_name(&mut self, name: String) -> Result<Atom> {
        self.expect(Tok::LParen)?;
        let mut terms = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                terms.push(self.term()?);
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => return Err(err(format!("expected ',' or ')', found {other:?}"))),
                }
            }
        } else {
            self.next();
        }
        Ok(Atom::new(intern(&name), terms))
    }

    /// A body literal: positive atom, negated atom, or builtin.
    fn body_literal(&mut self) -> Result<BodyLit> {
        match self.next() {
            Some(Tok::Bang) => match self.next() {
                Some(Tok::Ident(name)) => Ok(BodyLit::Neg(self.atom_after_name(name)?)),
                other => Err(err(format!("expected atom after '!', found {other:?}"))),
            },
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    Ok(BodyLit::Pos(self.atom_after_name(name)?))
                } else {
                    // A constant on the left of a builtin.
                    self.builtin_rest(Term::Const(intern(&name)))
                }
            }
            Some(Tok::Var(name)) => self.builtin_rest(Term::Var(VarId::new(&name))),
            Some(Tok::Str(s)) => self.builtin_rest(Term::Const(intern(&s))),
            other => Err(err(format!("expected body literal, found {other:?}"))),
        }
    }

    fn builtin_rest(&mut self, lhs: Term) -> Result<BodyLit> {
        let op = self.next();
        let rhs = self.term()?;
        match op {
            Some(Tok::Eq) => Ok(BodyLit::Builtin(Builtin::Eq(lhs, rhs))),
            Some(Tok::Neq) => Ok(BodyLit::Builtin(Builtin::Neq(lhs, rhs))),
            other => Err(err(format!("expected '=' or '!=', found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        let mut body_pos = Vec::new();
        let mut body_neg = Vec::new();
        let mut builtins = Vec::new();
        loop {
            match self.body_literal()? {
                BodyLit::Pos(a) => body_pos.push(a),
                BodyLit::Neg(a) => body_neg.push(a),
                BodyLit::Builtin(b) => builtins.push(b),
            }
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::Arrow) => break,
                other => return Err(err(format!("expected ',' or '->', found {other:?}"))),
            }
        }
        // Head: `false`, or `exists ?Y... atoms`, or atoms.
        if self.peek() == Some(&Tok::False) {
            self.next();
            self.expect(Tok::Dot)?;
            if !body_neg.is_empty() {
                return Err(err(
                    "constraints (rules with head 'false') may not contain \
                     negated atoms (§3.2)",
                ));
            }
            return Ok(Stmt::Constraint(Constraint {
                body: body_pos,
                builtins,
            }));
        }
        let mut exist_vars = Vec::new();
        if self.peek() == Some(&Tok::Exists) {
            self.next();
            while let Some(Tok::Var(_)) = self.peek() {
                if let Some(Tok::Var(name)) = self.next() {
                    exist_vars.push(VarId::new(&name));
                }
            }
            if exist_vars.is_empty() {
                return Err(err("'exists' must be followed by variables"));
            }
        }
        let mut head = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Ident(name)) => head.push(self.atom_after_name(name)?),
                other => return Err(err(format!("expected head atom, found {other:?}"))),
            }
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::Dot) => break,
                other => return Err(err(format!("expected ',' or '.', found {other:?}"))),
            }
        }
        Ok(Stmt::Rule(Rule {
            body_pos,
            body_neg,
            builtins,
            exist_vars,
            head,
        }))
    }
}

enum BodyLit {
    Pos(Atom),
    Neg(Atom),
    Builtin(Builtin),
}

enum Stmt {
    Rule(Rule),
    Constraint(Constraint),
}

/// Parses a full program.
pub fn parse_program(input: &str) -> Result<Program> {
    let mut parser = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let mut program = Program::new();
    while parser.peek().is_some() {
        match parser.statement()? {
            Stmt::Rule(r) => program.rules.push(r),
            Stmt::Constraint(c) => program.constraints.push(c),
        }
    }
    program.validate()?;
    Ok(program)
}

/// Parses a single (possibly non-ground) atom, e.g. `triple(a, ?X, b)`.
pub fn parse_atom(input: &str) -> Result<Atom> {
    let mut parser = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let atom = match parser.next() {
        Some(Tok::Ident(name)) => parser.atom_after_name(name)?,
        other => return Err(err(format!("expected atom, found {other:?}"))),
    };
    if parser.peek().is_some() && parser.peek() != Some(&Tok::Dot) {
        return Err(err("trailing input after atom"));
    }
    Ok(atom)
}

/// Parses a program and wraps it as a query `(Π, p)` with output predicate
/// `output_pred` (§3.2: `p` must not occur in any rule body).
pub fn parse_query(input: &str, output_pred: &str) -> Result<crate::Query> {
    let program = parse_program(input)?;
    crate::Query::new(program, intern(output_pred))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_transport_rules() {
        let p = parse_program(
            "triple(?X, partOf, transportService) -> ts(?X).\n\
             triple(?X, partOf, ?Y), ts(?Y) -> ts(?X).\n\
             ts(?T), triple(?X, ?T, ?Y) -> query(?X, ?Y).\n\
             ts(?T), triple(?X, ?T, ?Z), query(?Z, ?Y) -> query(?X, ?Y).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert_eq!(p.rules[0].body_pos[0].pred.as_str(), "triple");
        assert_eq!(p.rules[0].body_pos[0].terms[1], Term::constant("partOf"));
    }

    #[test]
    fn parses_existential_rule() {
        let p = parse_program(
            "triple(?X, is_coauthor_of, ?Y) -> exists ?Z \
             triple2(?X, is_author_of, ?Z), triple2(?Y, is_author_of, ?Z).",
        )
        .unwrap();
        let r = &p.rules[0];
        assert_eq!(r.exist_vars, vec![VarId::new("Z")]);
        assert_eq!(r.head.len(), 2);
    }

    #[test]
    fn parses_negation_and_constraint() {
        let p = parse_program(
            "less(?X, ?Y), !not_min(?X) -> zero(?X).\n\
             type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false.",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.constraints.len(), 1);
        assert_eq!(p.rules[0].body_neg.len(), 1);
        assert_eq!(p.constraints[0].body.len(), 3);
    }

    #[test]
    fn parses_builtins() {
        let p =
            parse_program("p(?X, ?Y), ?X != ?Y -> q(?X).\n p(?X, ?Y), ?X = a -> r(?X).").unwrap();
        assert_eq!(
            p.rules[0].builtins,
            vec![Builtin::Neq(
                Term::Var(VarId::new("X")),
                Term::Var(VarId::new("Y"))
            )]
        );
        assert_eq!(
            p.rules[1].builtins,
            vec![Builtin::Eq(Term::Var(VarId::new("X")), Term::constant("a"))]
        );
    }

    #[test]
    fn parses_strings_and_comments() {
        let p =
            parse_program("# find Ullman\ntriple(?X, name, \"Jeffrey Ullman\") -> q(?X). # done\n")
                .unwrap();
        assert_eq!(
            p.rules[0].body_pos[0].terms[2],
            Term::constant("Jeffrey Ullman")
        );
    }

    #[test]
    fn roundtrip_display_parse() {
        let src = "p(?X, c), !n(?X), ?X != d -> exists ?Y q(?X, ?Y).";
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("p(?X -> q(?X).").is_err());
        assert!(parse_program("p(?X) -> q(?Y).").is_err()); // unbound head var
        assert!(parse_program("p(?X) q(?X).").is_err());
        assert!(parse_program("-> q(a).").is_err());
        assert!(parse_program("p(?X) -> exists q(?X).").is_err());
    }

    #[test]
    fn parse_atom_works() {
        let a = parse_atom("triple(a, ?X, \"lit\")").unwrap();
        assert_eq!(a.pred.as_str(), "triple");
        assert_eq!(a.terms.len(), 3);
        assert!(parse_atom("p(").is_err());
    }
}
