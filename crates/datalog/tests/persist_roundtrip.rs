//! Property tests for the snapshot codec: randomly built instances
//! (facts, labeled nulls, provenance, support counters, tombstones) and
//! live materialized views round-trip through encode → decode exactly,
//! re-encoding is a byte-level fixpoint, and truncated streams fail
//! cleanly instead of panicking.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use triq_common::codec::{encode_interner, Decoder, Encoder, SymbolRemap};
use triq_common::{intern, Delta, TermId};
use triq_datalog::persist::{
    decode_instance, decode_view, encode_instance, encode_view, plan_fingerprint,
};
use triq_datalog::{
    parse_program, AtomId, ChaseConfig, ChaseRunner, Database, Derivation, Instance,
    MaterializedView,
};

/// Builds an instance the way the chase does: base facts first, then
/// derived atoms (some mentioning fresh nulls, some with provenance over
/// earlier atoms), duplicate inserts to bump support counters, and a few
/// tombstones — never on an atom that backs a live derivation, matching
/// the chase invariant `Instance::compacted` relies on.
fn build_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new();
    let consts = ["a", "b", "c", "d", "e", "f"];
    let preds: Vec<(&str, usize)> = vec![("p", 1), ("q", 2), ("r", 3), ("unit", 0)];

    // Base facts (including an arity-0 predicate and duplicates).
    let mut ids: Vec<AtomId> = Vec::new();
    for _ in 0..rng.gen_range(0..30) {
        let (pred, arity) = preds[rng.gen_range(0..preds.len())];
        let args: Vec<&str> = (0..arity)
            .map(|_| consts[rng.gen_range(0..consts.len())])
            .collect();
        ids.push(inst.insert_fact(pred, &args));
    }

    // Derived atoms: random mixes of constants and fresh nulls, some
    // carrying provenance over already-present atoms.
    let mut used_as_body: HashSet<AtomId> = HashSet::new();
    for rule in 0..rng.gen_range(0..12usize) {
        let (pred, arity) = preds[rng.gen_range(0..preds.len() - 1)];
        let key: Vec<TermId> = (0..arity)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    TermId::from_null(inst.fresh_null(rng.gen_range(1..4)))
                } else {
                    TermId::from_const(intern(consts[rng.gen_range(0..consts.len())]))
                }
            })
            .collect();
        let derivation = if !ids.is_empty() && rng.gen_bool(0.7) {
            let body: Vec<AtomId> = (0..rng.gen_range(1..3))
                .map(|_| ids[rng.gen_range(0..ids.len())])
                .collect();
            used_as_body.extend(body.iter().copied());
            Some(Derivation { rule, body })
        } else {
            None
        };
        let (id, fresh) = inst.insert_ids(intern(pred), &key, derivation);
        if fresh {
            ids.push(id);
        }
    }

    // Tombstone a few atoms nothing derives from.
    let candidates: Vec<AtomId> = ids
        .iter()
        .copied()
        .filter(|id| !used_as_body.contains(id))
        .collect();
    for id in candidates {
        if rng.gen_bool(0.25) {
            inst.tombstone(id);
        }
    }
    inst
}

/// Encodes `inst` behind an interner table and decodes it back.
fn round_trip(inst: &Instance) -> (Vec<u8>, Instance) {
    let mut enc = Encoder::new();
    encode_interner(&mut enc);
    encode_instance(&mut enc, inst);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    let remap = SymbolRemap::decode(&mut dec).unwrap();
    let consumed = bytes.len() - dec.remaining();
    let mut dec = Decoder::new(&bytes[consumed..]);
    let out = decode_instance(&mut dec, &remap).unwrap();
    assert!(dec.is_exhausted());
    (bytes, out)
}

fn check_equal(a: &Instance, b: &Instance) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.live_len(), b.live_len());
    prop_assert_eq!(b.dead_len(), 0, "decoded instances are dense");
    prop_assert_eq!(a.null_count(), b.null_count());
    for (id, atom) in b.iter() {
        let orig = a.find(&atom);
        prop_assert!(orig.is_some(), "decoded atom missing from original: {atom}");
        let orig = orig.unwrap();
        prop_assert_eq!(a.support(orig), b.support(id));
        prop_assert_eq!(a.depth(orig), b.depth(id));
        prop_assert_eq!(a.derivation(orig).is_some(), b.derivation(id).is_some());
    }
    Ok(())
}

const VIEW_PROGRAM: &str = "e(?X, ?Y) -> t(?X, ?Y).\n\
                            e(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z).\n\
                            t(?X, ?Y) -> ex(?X).\n\
                            ex(?X) -> exists ?N holder(?X, ?N).";

fn random_delta(rng: &mut StdRng, nodes: &[&str], present: &mut Vec<(usize, usize)>) -> Delta {
    let mut delta = Delta::new();
    for _ in 0..rng.gen_range(1..5) {
        if !present.is_empty() && rng.gen_bool(0.3) {
            let (x, y) = present.swap_remove(rng.gen_range(0..present.len()));
            delta = delta.delete("e", &[nodes[x], nodes[y]]);
        } else {
            let (x, y) = (rng.gen_range(0..nodes.len()), rng.gen_range(0..nodes.len()));
            present.push((x, y));
            delta = delta.insert("e", &[nodes[x], nodes[y]]);
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random instances — nulls, provenance, supports, tombstones —
    /// survive encode → decode, and re-encoding the decoded (dense)
    /// instance reproduces the original stream byte for byte.
    #[test]
    fn random_instances_round_trip(seed in any::<u64>()) {
        let inst = build_instance(seed);
        let (bytes, out) = round_trip(&inst);
        check_equal(&inst, &out)?;
        let (bytes2, _) = round_trip(&out);
        prop_assert_eq!(bytes, bytes2, "encoding is a fixpoint after decode");
    }

    /// No prefix of a valid stream panics the decoder: every truncation
    /// either decodes (a short prefix can look like an empty instance)
    /// or fails with E-PERSIST.
    #[test]
    fn truncated_streams_never_panic(seed in any::<u64>(), frac in 0..100u32) {
        let inst = build_instance(seed);
        let mut enc = Encoder::new();
        encode_interner(&mut enc);
        encode_instance(&mut enc, &inst);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let remap = SymbolRemap::decode(&mut dec).unwrap();
        let consumed = bytes.len() - dec.remaining();
        let body = &bytes[consumed..];
        let cut = body.len() * frac as usize / 100;
        match decode_instance(&mut Decoder::new(&body[..cut]), &remap) {
            Ok(_) => {}
            Err(e) => prop_assert_eq!(e.code(), "E-PERSIST"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Live views under random insert/delete histories round-trip with
    /// their skolem memos: the restored view matches the original and
    /// both stay in lockstep under further mutation (the memo prevents
    /// re-inventing existential witnesses on re-fire).
    #[test]
    fn random_views_round_trip_and_keep_maintaining(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = ["n0", "n1", "n2", "n3", "n4", "n5"];
        let mut present: Vec<(usize, usize)> = Vec::new();
        let mut db = Database::new();
        for _ in 0..rng.gen_range(1..8) {
            let (x, y) = (rng.gen_range(0..nodes.len()), rng.gen_range(0..nodes.len()));
            present.push((x, y));
            db.add_fact("e", &[nodes[x], nodes[y]]);
        }
        let program = parse_program(VIEW_PROGRAM).unwrap();
        let runner = ChaseRunner::new(program, ChaseConfig::default()).unwrap();
        let mut view = MaterializedView::new(runner, db).unwrap();
        for _ in 0..rng.gen_range(0..3) {
            view.apply(&random_delta(&mut rng, &nodes, &mut present)).unwrap();
        }

        let mut enc = Encoder::new();
        encode_interner(&mut enc);
        encode_view(&mut enc, &view);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let remap = SymbolRemap::decode(&mut dec).unwrap();
        let consumed = bytes.len() - dec.remaining();
        let mut dec = Decoder::new(&bytes[consumed..]);
        let (mut restored, fp) = decode_view(&mut dec, &remap, view.database().clone()).unwrap();
        prop_assert!(dec.is_exhausted());
        prop_assert_eq!(
            fp,
            plan_fingerprint(view.runner().program(), &view.runner().config())
        );
        check_equal(view.instance(), restored.instance())?;

        // Both copies must evolve identically under the same deltas.
        for _ in 0..2 {
            let delta = random_delta(&mut rng, &nodes, &mut present);
            view.apply(&delta).unwrap();
            restored.apply(&delta).unwrap();
            prop_assert_eq!(view.instance().live_len(), restored.instance().live_len());
            for (_, atom) in view.instance().iter() {
                if atom.is_fully_ground() {
                    prop_assert!(restored.instance().contains(&atom), "missing: {atom}");
                }
            }
        }
    }
}
