//! Property test: `Display` for programs is parseable and round-trips
//! (print → parse → print is a fixpoint), over randomly built programs
//! with existentials, negation, builtins and constraints.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triq_common::{intern, Term, VarId};
use triq_datalog::{parse_program, Atom, Builtin, Constraint, Program, Rule};

fn build_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let preds = ["p", "q", "r"];
    let arities: Vec<usize> = preds.iter().map(|_| rng.gen_range(1..4)).collect();
    let vars = ["X", "Y", "Z"];
    let consts = ["a", "b", "rdf:type"];
    let term = |rng: &mut StdRng, allow_const: bool| -> Term {
        if allow_const && rng.gen_bool(0.3) {
            Term::Const(intern(consts[rng.gen_range(0..consts.len())]))
        } else {
            Term::Var(VarId::new(vars[rng.gen_range(0..vars.len())]))
        }
    };
    let atom = |rng: &mut StdRng| -> Atom {
        let i = rng.gen_range(0..preds.len());
        let terms = (0..arities[i]).map(|_| term(rng, true)).collect();
        Atom::new(intern(preds[i]), terms)
    };
    let mut rules = Vec::new();
    let mut constraints = Vec::new();
    for _ in 0..rng.gen_range(1..5) {
        let body: Vec<Atom> = (0..rng.gen_range(1..3)).map(|_| atom(&mut rng)).collect();
        let body_vars: Vec<VarId> = body.iter().flat_map(|a| a.vars()).collect();
        if body_vars.is_empty() {
            continue;
        }
        if rng.gen_bool(0.2) {
            constraints.push(Constraint {
                body,
                builtins: vec![],
            });
            continue;
        }
        let mut body_neg = Vec::new();
        if rng.gen_bool(0.3) {
            // A negated atom over bound variables only (safety).
            let i = rng.gen_range(0..preds.len());
            let terms = (0..arities[i])
                .map(|_| Term::Var(body_vars[rng.gen_range(0..body_vars.len())]))
                .collect();
            body_neg.push(Atom::new(intern(&format!("n{}", preds[i])), terms));
        }
        let builtins = if rng.gen_bool(0.3) {
            vec![Builtin::Neq(
                Term::Var(body_vars[rng.gen_range(0..body_vars.len())]),
                Term::Const(intern("a")),
            )]
        } else {
            vec![]
        };
        let existential = rng.gen_bool(0.4);
        let evar = VarId::new("E");
        let hi = rng.gen_range(0..preds.len());
        let head_terms: Vec<Term> = (0..arities[hi])
            .map(|i| {
                if existential && i == 0 {
                    Term::Var(evar)
                } else {
                    Term::Var(body_vars[rng.gen_range(0..body_vars.len())])
                }
            })
            .collect();
        rules.push(Rule {
            body_pos: body,
            body_neg,
            builtins,
            exist_vars: if existential { vec![evar] } else { vec![] },
            head: vec![Atom::new(intern(preds[hi]), head_terms)],
        });
    }
    Program { rules, constraints }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn display_parse_roundtrip(seed in any::<u64>()) {
        let program = build_program(seed);
        prop_assume!(program.validate().is_ok());
        prop_assume!(!program.rules.is_empty() || !program.constraints.is_empty());
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        prop_assert_eq!(&program, &reparsed, "printed:\n{}", printed);
        // And printing again is a fixpoint.
        prop_assert_eq!(printed, reparsed.to_string());
    }
}
