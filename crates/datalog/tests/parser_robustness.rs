//! Fuzz-style robustness: the parsers must reject garbage with an error,
//! never panic, on arbitrary input — and comments / exotic line endings
//! anywhere in a rule must not change what is parsed.

use proptest::prelude::*;
use triq_datalog::{parse_atom, parse_program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_program_never_panics(input in "\\PC{0,120}") {
        let _ = parse_program(&input);
    }

    #[test]
    fn parse_atom_never_panics(input in "\\PC{0,60}") {
        let _ = parse_atom(&input);
    }

    /// Near-miss inputs built from real tokens.
    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "p(?X)", "->", "exists", "?Y", ",", ".", "!", "false", "(", ")",
            "q(?X, ?Y)", "?X != ?Y", "\"lit\"", "triple(?A, rdf:type, ?B)",
            "# comment", "\r\n", "\r", "\n",
        ]),
        0..12,
    )) {
        let input = tokens.join(" ");
        let _ = parse_program(&input);
    }
}

// ---------------------------------------------------------------------------
// Comments and line endings inside rule bodies.
//
// The reference program, written plainly:
const PLAIN: &str = "p(?X, c), q(?X) -> r(?X).\n q(?X), !r(?X) -> s(?X).";

/// Every variant must parse to exactly the program `PLAIN` parses to.
fn assert_parses_like_plain(variant: &str) {
    let want = parse_program(PLAIN).unwrap();
    let got = parse_program(variant)
        .unwrap_or_else(|e| panic!("variant {variant:?} failed to parse: {e}"));
    assert_eq!(got, want, "variant {variant:?} parsed differently");
}

#[test]
fn comments_inside_rule_bodies() {
    // Between body literals, before the arrow, before the head, and
    // before the terminating dot.
    assert_parses_like_plain("p(?X, c), # joined on X\n q(?X) -> r(?X).\n q(?X), !r(?X) -> s(?X).");
    assert_parses_like_plain("p(?X, c), q(?X) # body done\n -> r(?X).\n q(?X), !r(?X) -> s(?X).");
    assert_parses_like_plain("p(?X, c), q(?X) -> # head next\n r(?X).\n q(?X), !r(?X) -> s(?X).");
    assert_parses_like_plain("p(?X, c), q(?X) -> r(?X) # dot next\n.\n q(?X), !r(?X) -> s(?X).");
}

#[test]
fn crlf_line_endings_everywhere() {
    // The whole program with Windows line endings, including inside a
    // rule body split across lines.
    assert_parses_like_plain("p(?X, c),\r\nq(?X) -> r(?X).\r\nq(?X), !r(?X) -> s(?X).\r\n");
    // CRLF directly after a comment inside a body.
    assert_parses_like_plain("p(?X, c), # note\r\nq(?X) -> r(?X).\r\nq(?X), !r(?X) -> s(?X).\r\n");
}

#[test]
fn cr_only_line_endings_do_not_swallow_rules() {
    // Regression: a comment used to run to the next '\n' only, so with
    // classic-Mac CR-only line endings everything after the first
    // comment was silently *dropped* — the program parsed "successfully"
    // with zero rules. A comment now ends at '\r' too.
    assert_parses_like_plain("# header\rp(?X, c), q(?X) -> r(?X).\rq(?X), !r(?X) -> s(?X).\r");
    assert_parses_like_plain(
        "p(?X, c), # mid-body comment\rq(?X) -> r(?X).\rq(?X), !r(?X) -> s(?X).",
    );
    let p = parse_program("# only a comment\rp(?X) -> q(?X).").unwrap();
    assert_eq!(p.rules.len(), 1, "the rule after a CR-terminated comment");
}

#[test]
fn trailing_comment_without_newline() {
    assert_parses_like_plain("p(?X, c), q(?X) -> r(?X).\n q(?X), !r(?X) -> s(?X). # done");
}

#[test]
fn comments_never_leak_into_string_literals() {
    // '#' inside a quoted literal is content, not a comment.
    let p = parse_program("triple(?X, label, \"#1 hit\") -> q(?X).").unwrap();
    assert_eq!(p.rules.len(), 1);
    let shown = p.to_string();
    assert!(shown.contains("#1 hit"), "literal survived: {shown}");
}
