//! Fuzz-style robustness: the parsers must reject garbage with an error,
//! never panic, on arbitrary input.

use proptest::prelude::*;
use triq_datalog::{parse_atom, parse_program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_program_never_panics(input in "\\PC{0,120}") {
        let _ = parse_program(&input);
    }

    #[test]
    fn parse_atom_never_panics(input in "\\PC{0,60}") {
        let _ = parse_atom(&input);
    }

    /// Near-miss inputs built from real tokens.
    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "p(?X)", "->", "exists", "?Y", ",", ".", "!", "false", "(", ")",
            "q(?X, ?Y)", "?X != ?Y", "\"lit\"", "triple(?A, rdf:type, ?B)",
        ]),
        0..12,
    )) {
        let input = tokens.join(" ");
        let _ = parse_program(&input);
    }
}
