//! Review probe: adversarial incremental-maintenance scenarios.

use triq_common::Delta;
use triq_datalog::{parse_program, ChaseConfig, ChaseRunner, Database, MaterializedView};

fn view(program: &str, facts: &[(&str, &[&str])]) -> MaterializedView {
    let p = parse_program(program).unwrap();
    let runner = ChaseRunner::new(p, ChaseConfig::default()).unwrap();
    let mut db = Database::new();
    for (pred, args) in facts {
        db.add_fact(pred, args);
    }
    MaterializedView::new(runner, db).unwrap()
}

fn assert_matches_scratch(v: &MaterializedView) {
    let scratch = v.runner().run(v.database()).unwrap();
    assert_eq!(scratch.inconsistent, v.outcome().inconsistent);
    let got: std::collections::BTreeSet<String> =
        v.instance().iter().map(|(_, a)| a.to_string()).collect();
    let want: std::collections::BTreeSet<String> = scratch
        .instance
        .iter()
        .map(|(_, a)| a.to_string())
        .collect();
    assert_eq!(got, want);
}

#[test]
fn victim_with_surviving_alternative_binding_same_rule() {
    // r(c)'s recorded derivation is this very rule, but via W=w1 or
    // W=w2; inserting p(w1) pivots a match that victimizes r(c) even
    // though the W=w2 support survives. It must be rederived.
    let program = "a(?X, ?W), !p(?W) -> r(?X).";
    let mut v = view(program, &[("a", &["c", "w1"]), ("a", &["c", "w2"])]);
    assert_matches_scratch(&v);
    let s = v.apply(&Delta::new().insert("p", &["w1"])).unwrap();
    assert!(!s.full_rebuild);
    assert_matches_scratch(&v);
    // And deleting it un-blocks again.
    v.apply(&Delta::new().delete("p", &["w1"])).unwrap();
    assert_matches_scratch(&v);
}

#[test]
fn multihead_victim_cycle_terminates() {
    // Multi-head rule lifted high victimizing a low-stratum pred, plus a
    // higher-stratum multi-head rule negating r that victimizes another
    // low pred — tries to force repeated re-entry through the same
    // strata.
    let program = "base(?X) -> low(?X).\n\
                   a(?X, ?W), !p(?W) -> r(?X), z(?X).\n\
                   w(?X), !r(?X) -> q(?X), low(?X).\n\
                   q(?X), !z(?X) -> out(?X).";
    let mut v = view(
        program,
        &[
            ("base", &["c"]),
            ("a", &["c", "w1"]),
            ("a", &["c", "w2"]),
            ("w", &["c"]),
        ],
    );
    assert_matches_scratch(&v);
    let _ = v.apply(&Delta::new().insert("p", &["w1"])).unwrap();
    assert_matches_scratch(&v);
    let _ = v.apply(&Delta::new().insert("p", &["w2"])).unwrap();
    assert_matches_scratch(&v);
    let _ = v.apply(&Delta::new().delete("p", &["w1"])).unwrap();
    assert_matches_scratch(&v);
}

#[test]
fn chained_negation_delete_and_insert() {
    let program = "b(?X) -> p(?X).\n\
                   a(?X), !p(?X) -> s(?X).\n\
                   c(?X), !s(?X) -> t(?X).";
    let mut v = view(program, &[("b", &["x"]), ("a", &["x"]), ("c", &["x"])]);
    assert_matches_scratch(&v);
    // Delete b(x): p(x) dies, s(x) appears, t(x) dies.
    let s = v.apply(&Delta::new().delete("b", &["x"])).unwrap();
    assert!(!s.full_rebuild);
    assert_matches_scratch(&v);
    // Re-insert: everything flips back.
    let s = v.apply(&Delta::new().insert("b", &["x"])).unwrap();
    assert!(!s.full_rebuild);
    assert_matches_scratch(&v);
}

#[test]
fn delete_unblocks_existential_rule() {
    let program = "person(?X), !blocked(?X) -> exists ?Y parent(?X, ?Y).\n\
                   parent(?X, ?Y) -> haskid(?X).";
    let mut v = view(program, &[("person", &["alice"]), ("blocked", &["alice"])]);
    assert_eq!(v.outcome().stats.nulls, 0);
    let s = v
        .apply(&Delta::new().delete("blocked", &["alice"]))
        .unwrap();
    // Whether incremental or rebuild, the ground part must match.
    let scratch = v.runner().run(v.database()).unwrap();
    assert_eq!(
        v.instance().live_len(),
        scratch.instance.live_len(),
        "full_rebuild={}",
        s.full_rebuild
    );
}
