//! The probe path of the columnar store must not allocate.
//!
//! The chase's innermost loops are membership checks, per-column index
//! probes and (since the morsel refactor) vectorized column-kernel
//! filters; before the columnar refactor each membership check built a
//! throwaway `GroundAtom` (one heap allocation per probe). This test pins
//! the fix with a counting global allocator: borrowed-key lookups —
//! `find_terms` / `contains_terms` / `contains_ids` / `Relation::find_row`
//! / `ids_by_column` — and the [`triq_datalog::kernels`] filters over
//! pre-reserved buffers perform **exactly zero** allocations.
//!
//! The counter is *thread-local* and the measurement runs on a dedicated
//! spawned thread, so allocations made by test-harness machinery on
//! other threads cannot land inside the window: the assertion is exact
//! and deterministic, no retries.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use triq_datalog::kernels;
use triq_datalog::{intern, Instance, Symbol, Term, TermId};

struct CountingAlloc;

thread_local! {
    /// Heap allocations made by *this* thread. `const`-initialized so
    /// the slot itself never allocates lazily inside the allocator.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// This thread's allocation count (0 during TLS teardown).
fn local_allocations() -> usize {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: allocations during TLS teardown must not panic
        // inside the allocator (that would abort the process).
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn candidate_probes_allocate_nothing() {
    std::thread::spawn(|| {
        // Setup (allocates freely): interning, facts, keys, and
        // pre-reserved kernel buffers sized for the worst case.
        let mut inst = Instance::new();
        for i in 0..200u32 {
            inst.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", (i + 1) % 200)]);
        }
        let edge: Symbol = intern("edge");
        let present = [Term::constant("n3"), Term::constant("n4")];
        let absent = [Term::constant("n4"), Term::constant("n3")];
        let present_key = [
            TermId::from_const(intern("n3")),
            TermId::from_const(intern("n4")),
        ];
        let rel = inst.relation(edge, 2).expect("edge relation exists");
        let col_key = TermId::from_const(intern("n7"));
        // Kernel inputs: col_a has 4 distinct values (50 rows each),
        // col_b has 2; the needles select rows `i % 4 == 0`, all of
        // which survive the `i % 2 == 0` refinement.
        let col_a: Vec<TermId> = (0..200)
            .map(|i| TermId::from_const(intern(&format!("k{}", i % 4))))
            .collect();
        let col_b: Vec<TermId> = (0..200)
            .map(|i| TermId::from_const(intern(&format!("j{}", i % 2))))
            .collect();
        let needle_a = TermId::from_const(intern("k0"));
        let needle_b = TermId::from_const(intern("j0"));
        let ids: Vec<u32> = (0..200).collect();
        let mut sel: Vec<u32> = Vec::with_capacity(200);
        let mut gathered: Vec<u32> = Vec::with_capacity(200);

        // Warm every code path once, then measure exactly.
        assert!(inst.contains_terms(edge, &present));
        kernels::filter_eq(&col_a, needle_a, 0, &mut sel);

        let before = local_allocations();
        let mut hits = 0usize;
        for _ in 0..1_000 {
            hits += usize::from(inst.contains_terms(edge, &present));
            hits += usize::from(inst.contains_terms(edge, &absent));
            hits += usize::from(inst.find_terms(edge, &present).is_some());
            hits += usize::from(inst.contains_ids(edge, &present_key));
            hits += usize::from(rel.find_row(&present_key).is_some());
            hits += rel.ids_by_column(0, col_key).len();
            hits += rel.ids_by_column(1, col_key).len();
            // Kernel paths: clear() keeps capacity, so refills of the
            // pre-reserved buffers must not touch the allocator.
            sel.clear();
            kernels::filter_eq(&col_a, needle_a, 0, &mut sel);
            kernels::refine_eq(&col_b, needle_b, 0, &mut sel);
            hits += sel.len();
            gathered.clear();
            kernels::gather(&ids, &sel, &mut gathered);
            hits += gathered.len();
            hits += kernels::count_eq(&col_a, needle_a);
            hits += kernels::count_lt(&ids, 100);
        }
        let after = local_allocations();
        assert_eq!(hits, 256_000, "every probe resolved as expected");
        assert_eq!(
            after - before,
            0,
            "borrowed-key probes and kernel filters must not allocate"
        );
    })
    .join()
    .expect("measurement thread panicked");
}
