//! The probe path of the columnar store must not allocate.
//!
//! The chase's innermost loops are membership checks and per-column index
//! probes; before the columnar refactor each membership check built a
//! throwaway `GroundAtom` (one heap allocation per probe). This test pins
//! the fix with a counting global allocator: borrowed-key lookups —
//! `find_terms` / `contains_terms` / `contains_ids` / `Relation::find_row`
//! / `ids_by_column` — perform **zero** allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use triq_datalog::{intern, Instance, Symbol, Term, TermId};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn candidate_probes_allocate_nothing() {
    // Setup (allocates freely): interning, facts, keys.
    let mut inst = Instance::new();
    for i in 0..200u32 {
        inst.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", (i + 1) % 200)]);
    }
    let edge: Symbol = intern("edge");
    let present = [Term::constant("n3"), Term::constant("n4")];
    let absent = [Term::constant("n4"), Term::constant("n3")];
    let present_key = [
        TermId::from_const(intern("n3")),
        TermId::from_const(intern("n4")),
    ];
    let rel = inst.relation(edge, 2).expect("edge relation exists");
    let col_key = TermId::from_const(intern("n7"));

    // Warm every code path once, then measure. The counter is global,
    // so an allocation on another in-process thread (test-harness
    // machinery) can land inside the window — retry a few times and
    // require at least one clean window: a probe-path allocation would
    // taint EVERY window by at least 6000, never leaving a clean one.
    assert!(inst.contains_terms(edge, &present));
    let mut cleanest = usize::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut hits = 0usize;
        for _ in 0..1_000 {
            hits += usize::from(inst.contains_terms(edge, &present));
            hits += usize::from(inst.contains_terms(edge, &absent));
            hits += usize::from(inst.find_terms(edge, &present).is_some());
            hits += usize::from(inst.contains_ids(edge, &present_key));
            hits += usize::from(rel.find_row(&present_key).is_some());
            hits += rel.ids_by_column(0, col_key).len();
            hits += rel.ids_by_column(1, col_key).len();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(hits, 6_000, "every probe resolved as expected");
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "borrowed-key probes must not allocate (got {cleanest} allocations in the cleanest of 5 windows)",
    );
}
