//! OWL 2 QL core ontologies (§5.2): vocabulary, basic classes/properties
//! and the six axiom forms of Table 1.

use std::collections::BTreeSet;
use std::fmt;
use triq_common::Symbol;

/// A basic property over a vocabulary Σ: `p` or `p⁻`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum BasicProperty {
    /// A named property `p`.
    Named(Symbol),
    /// The inverse `p⁻`.
    Inverse(Symbol),
}

impl BasicProperty {
    /// The underlying property name.
    pub fn name(self) -> Symbol {
        match self {
            BasicProperty::Named(p) | BasicProperty::Inverse(p) => p,
        }
    }

    /// The inverse of this basic property.
    pub fn inverse(self) -> BasicProperty {
        match self {
            BasicProperty::Named(p) => BasicProperty::Inverse(p),
            BasicProperty::Inverse(p) => BasicProperty::Named(p),
        }
    }
}

impl fmt::Display for BasicProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicProperty::Named(p) => write!(f, "{p}"),
            BasicProperty::Inverse(p) => write!(f, "{p}^-"),
        }
    }
}

/// A basic class over Σ: a named class `a` or an existential restriction
/// `∃r` for a basic property `r`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum BasicClass {
    /// A named class.
    Named(Symbol),
    /// `∃r`.
    Some(BasicProperty),
}

impl fmt::Display for BasicClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicClass::Named(a) => write!(f, "{a}"),
            BasicClass::Some(r) => write!(f, "∃{r}"),
        }
    }
}

/// The OWL 2 QL core axioms of Table 1 (functional-style syntax, §5.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Axiom {
    /// `SubClassOf(b₁, b₂)`.
    SubClassOf(BasicClass, BasicClass),
    /// `SubObjectPropertyOf(r₁, r₂)`.
    SubObjectPropertyOf(BasicProperty, BasicProperty),
    /// `DisjointClasses(b₁, b₂)`.
    DisjointClasses(BasicClass, BasicClass),
    /// `DisjointObjectProperties(r₁, r₂)`.
    DisjointObjectProperties(BasicProperty, BasicProperty),
    /// `ClassAssertion(b, a)`.
    ClassAssertion(BasicClass, Symbol),
    /// `ObjectPropertyAssertion(p, a₁, a₂)` — `p` is a *named* property
    /// per Table 1.
    ObjectPropertyAssertion(Symbol, Symbol, Symbol),
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom::SubClassOf(a, b) => write!(f, "SubClassOf({a}, {b})"),
            Axiom::SubObjectPropertyOf(a, b) => write!(f, "SubObjectPropertyOf({a}, {b})"),
            Axiom::DisjointClasses(a, b) => write!(f, "DisjointClasses({a}, {b})"),
            Axiom::DisjointObjectProperties(a, b) => {
                write!(f, "DisjointObjectProperties({a}, {b})")
            }
            Axiom::ClassAssertion(b, a) => write!(f, "ClassAssertion({b}, {a})"),
            Axiom::ObjectPropertyAssertion(p, a1, a2) => {
                write!(f, "ObjectPropertyAssertion({p}, {a1}, {a2})")
            }
        }
    }
}

/// An OWL 2 QL core ontology: a vocabulary Σ (classes and properties) plus
/// axioms over it.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Ontology {
    /// The named classes of Σ.
    pub classes: BTreeSet<Symbol>,
    /// The named properties of Σ.
    pub properties: BTreeSet<Symbol>,
    /// The axioms.
    pub axioms: BTreeSet<Axiom>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Declares a class.
    pub fn declare_class(&mut self, name: &str) -> Symbol {
        let s = Symbol::new(name);
        self.classes.insert(s);
        s
    }

    /// Declares a property.
    pub fn declare_property(&mut self, name: &str) -> Symbol {
        let s = Symbol::new(name);
        self.properties.insert(s);
        s
    }

    /// Adds an axiom, auto-declaring any vocabulary it mentions.
    pub fn add(&mut self, axiom: Axiom) {
        let touch_class =
            |b: BasicClass, classes: &mut BTreeSet<Symbol>, props: &mut BTreeSet<Symbol>| match b {
                BasicClass::Named(a) => {
                    classes.insert(a);
                }
                BasicClass::Some(r) => {
                    props.insert(r.name());
                }
            };
        match axiom {
            Axiom::SubClassOf(a, b) | Axiom::DisjointClasses(a, b) => {
                touch_class(a, &mut self.classes, &mut self.properties);
                touch_class(b, &mut self.classes, &mut self.properties);
            }
            Axiom::SubObjectPropertyOf(r1, r2) | Axiom::DisjointObjectProperties(r1, r2) => {
                self.properties.insert(r1.name());
                self.properties.insert(r2.name());
            }
            Axiom::ClassAssertion(b, _) => {
                touch_class(b, &mut self.classes, &mut self.properties);
            }
            Axiom::ObjectPropertyAssertion(p, _, _) => {
                self.properties.insert(p);
            }
        }
        self.axioms.insert(axiom);
    }

    /// True iff the ontology contains no `DisjointClasses` /
    /// `DisjointObjectProperties` axioms — the "positive" ontologies of
    /// Definition 6.3.
    pub fn is_positive(&self) -> bool {
        !self.axioms.iter().any(|a| {
            matches!(
                a,
                Axiom::DisjointClasses(..) | Axiom::DisjointObjectProperties(..)
            )
        })
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// True iff there are no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::intern;

    #[test]
    fn add_auto_declares() {
        let mut o = Ontology::new();
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("dog")),
            BasicClass::Some(BasicProperty::Named(intern("eats"))),
        ));
        assert!(o.classes.contains(&intern("dog")));
        assert!(o.properties.contains(&intern("eats")));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn positivity() {
        let mut o = Ontology::new();
        o.add(Axiom::ClassAssertion(
            BasicClass::Named(intern("a0")),
            intern("c"),
        ));
        assert!(o.is_positive());
        o.add(Axiom::DisjointClasses(
            BasicClass::Named(intern("a")),
            BasicClass::Named(intern("b")),
        ));
        assert!(!o.is_positive());
    }

    #[test]
    fn inverse_involution() {
        let p = BasicProperty::Named(intern("p"));
        assert_eq!(p.inverse().inverse(), p);
        assert_eq!(p.inverse().to_string(), "p^-");
        assert_eq!(BasicClass::Some(p.inverse()).to_string(), "∃p^-");
    }
}
