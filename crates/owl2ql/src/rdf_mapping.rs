//! Table 1: storing OWL 2 QL core ontologies as RDF graphs, and reading
//! them back.
//!
//! Following §5.2, the representation of an ontology over Σ contains
//! vocabulary-declaration triples (each class is typed `owl:Class`, each
//! property `p` introduces the four URIs `p`, `p⁻`, `∃p`, `∃p⁻` with their
//! `owl:inverseOf` / `owl:Restriction` scaffolding) plus one triple per
//! axiom, exactly as in Table 1.

use crate::ontology::{Axiom, BasicClass, BasicProperty, Ontology};
use std::collections::{HashMap, HashSet};
use triq_common::{intern, Result, Symbol, TriqError};
use triq_rdf::{vocab, Graph, Triple};

/// The URI chosen for a basic property: `p` itself, or the distinct URI
/// `p⁻` (spelled `p~inv`).
pub fn basic_property_uri(r: BasicProperty) -> Symbol {
    match r {
        BasicProperty::Named(p) => p,
        BasicProperty::Inverse(p) => intern(&format!("{}~inv", p.as_str())),
    }
}

/// The URI chosen for a basic class: the class name itself, or the
/// distinct restriction URI `∃r` (spelled `some~r`).
pub fn basic_class_uri(b: BasicClass) -> Symbol {
    match b {
        BasicClass::Named(a) => a,
        BasicClass::Some(r) => intern(&format!("some~{}", basic_property_uri(r).as_str())),
    }
}

/// Serializes an ontology to its RDF graph representation (§5.2/Table 1).
pub fn ontology_to_graph(ontology: &Ontology) -> Graph {
    let mut g = Graph::new();
    let rdf_type = vocab::rdf_type();
    // Class declarations.
    for &a in &ontology.classes {
        g.insert(Triple::new(a, rdf_type, vocab::owl_class()));
    }
    // Property declarations: p, p⁻, ∃p, ∃p⁻.
    for &p in &ontology.properties {
        let p_inv = basic_property_uri(BasicProperty::Inverse(p));
        g.insert(Triple::new(p, rdf_type, vocab::owl_object_property()));
        g.insert(Triple::new(p_inv, rdf_type, vocab::owl_object_property()));
        g.insert(Triple::new(p, vocab::owl_inverse_of(), p_inv));
        g.insert(Triple::new(p_inv, vocab::owl_inverse_of(), p));
        for r in [BasicProperty::Named(p), BasicProperty::Inverse(p)] {
            let some_r = basic_class_uri(BasicClass::Some(r));
            let r_uri = basic_property_uri(r);
            g.insert(Triple::new(some_r, rdf_type, vocab::owl_restriction()));
            g.insert(Triple::new(some_r, vocab::owl_on_property(), r_uri));
            g.insert(Triple::new(
                some_r,
                vocab::owl_some_values_from(),
                vocab::owl_thing(),
            ));
            g.insert(Triple::new(some_r, rdf_type, vocab::owl_class()));
        }
    }
    // Axioms per Table 1.
    for &axiom in &ontology.axioms {
        let triple = match axiom {
            Axiom::SubClassOf(b1, b2) => Triple::new(
                basic_class_uri(b1),
                vocab::rdfs_sub_class_of(),
                basic_class_uri(b2),
            ),
            Axiom::SubObjectPropertyOf(r1, r2) => Triple::new(
                basic_property_uri(r1),
                vocab::rdfs_sub_property_of(),
                basic_property_uri(r2),
            ),
            Axiom::DisjointClasses(b1, b2) => Triple::new(
                basic_class_uri(b1),
                vocab::owl_disjoint_with(),
                basic_class_uri(b2),
            ),
            Axiom::DisjointObjectProperties(r1, r2) => Triple::new(
                basic_property_uri(r1),
                vocab::owl_property_disjoint_with(),
                basic_property_uri(r2),
            ),
            Axiom::ClassAssertion(b, a) => Triple::new(a, rdf_type, basic_class_uri(b)),
            Axiom::ObjectPropertyAssertion(p, a1, a2) => Triple::new(a1, p, a2),
        };
        g.insert(triple);
    }
    g
}

/// Reads an ontology back from its RDF representation (the inverse of
/// [`ontology_to_graph`]); errors if the graph is not the representation
/// of any OWL 2 QL core ontology.
pub fn ontology_from_graph(graph: &Graph) -> Result<Ontology> {
    let rdf_type = vocab::rdf_type();
    let mut ontology = Ontology::new();
    // Pass 1: vocabulary. Properties are the subjects typed
    // owl:ObjectProperty that are not `~inv` URIs; restrictions map their
    // URI to the basic class they stand for.
    let mut restriction_of: HashMap<Symbol, BasicProperty> = HashMap::new();
    let mut inverses: HashMap<Symbol, Symbol> = HashMap::new();
    for t in graph.iter() {
        if t.p == vocab::owl_inverse_of() {
            inverses.insert(t.s, t.o);
        }
    }
    let mut property_uris: HashSet<Symbol> = HashSet::new();
    for t in graph.iter() {
        if t.p == rdf_type && t.o == vocab::owl_object_property() {
            property_uris.insert(t.s);
            if !t.s.as_str().ends_with("~inv") {
                ontology.properties.insert(t.s);
            }
        }
    }
    let as_basic_property = |uri: Symbol| -> BasicProperty {
        match uri.as_str().strip_suffix("~inv") {
            Some(base) => BasicProperty::Inverse(intern(base)),
            None => BasicProperty::Named(uri),
        }
    };
    for t in graph.iter() {
        if t.p == vocab::owl_on_property() {
            restriction_of.insert(t.s, as_basic_property(t.o));
        }
    }
    let as_basic_class = |uri: Symbol| -> BasicClass {
        match restriction_of.get(&uri) {
            Some(&r) => BasicClass::Some(r),
            None => BasicClass::Named(uri),
        }
    };
    for t in graph.iter() {
        if t.p == rdf_type && t.o == vocab::owl_class() && !restriction_of.contains_key(&t.s) {
            ontology.classes.insert(t.s);
        }
    }
    // Pass 2: axioms.
    let scaffolding = |t: &Triple| -> bool {
        (t.p == rdf_type
            && (t.o == vocab::owl_class()
                || t.o == vocab::owl_object_property()
                || t.o == vocab::owl_restriction()))
            || t.p == vocab::owl_inverse_of()
            || t.p == vocab::owl_on_property()
            || t.p == vocab::owl_some_values_from()
    };
    for t in graph.iter() {
        if scaffolding(t) {
            continue;
        }
        let axiom = if t.p == vocab::rdfs_sub_class_of() {
            Axiom::SubClassOf(as_basic_class(t.s), as_basic_class(t.o))
        } else if t.p == vocab::rdfs_sub_property_of() {
            Axiom::SubObjectPropertyOf(as_basic_property(t.s), as_basic_property(t.o))
        } else if t.p == vocab::owl_disjoint_with() {
            Axiom::DisjointClasses(as_basic_class(t.s), as_basic_class(t.o))
        } else if t.p == vocab::owl_property_disjoint_with() {
            Axiom::DisjointObjectProperties(as_basic_property(t.s), as_basic_property(t.o))
        } else if t.p == rdf_type {
            Axiom::ClassAssertion(as_basic_class(t.o), t.s)
        } else if property_uris.contains(&t.p) || !t.p.as_str().contains(':') {
            Axiom::ObjectPropertyAssertion(t.p, t.s, t.o)
        } else {
            return Err(TriqError::Parse {
                what: "owl2ql",
                message: format!("triple {t} is not an OWL 2 QL core axiom"),
            });
        };
        ontology.add(axiom);
    }
    Ok(ontology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triq_common::intern;

    fn sample() -> Ontology {
        let mut o = Ontology::new();
        let eats = BasicProperty::Named(intern("eats"));
        o.add(Axiom::ClassAssertion(
            BasicClass::Named(intern("animal")),
            intern("dog"),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("animal")),
            BasicClass::Some(eats),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Some(eats.inverse()),
            BasicClass::Named(intern("plant_material")),
        ));
        o.add(Axiom::SubObjectPropertyOf(
            BasicProperty::Named(intern("devours")),
            eats,
        ));
        o.add(Axiom::DisjointClasses(
            BasicClass::Named(intern("plant_material")),
            BasicClass::Named(intern("animal")),
        ));
        o.add(Axiom::DisjointObjectProperties(
            BasicProperty::Named(intern("eats")),
            BasicProperty::Named(intern("avoids")),
        ));
        o.add(Axiom::ObjectPropertyAssertion(
            intern("eats"),
            intern("dog"),
            intern("kibble"),
        ));
        o
    }

    /// Table 1 round-trip: every axiom form survives RDF encoding.
    #[test]
    fn table_1_round_trip() {
        let o = sample();
        let g = ontology_to_graph(&o);
        let o2 = ontology_from_graph(&g).unwrap();
        assert_eq!(o.axioms, o2.axioms);
        assert!(o2.classes.contains(&intern("animal")));
        assert!(o2.properties.contains(&intern("eats")));
        assert!(!o2.properties.contains(&intern("eats~inv")));
    }

    /// The §5.2 example: G3's restriction triples appear in the encoding.
    #[test]
    fn restriction_scaffolding_matches_paper() {
        let mut o = Ontology::new();
        o.declare_property("is_author_of");
        let g = ontology_to_graph(&o);
        assert!(g.contains(&Triple::from_strs(
            "some~is_author_of",
            "rdf:type",
            "owl:Restriction"
        )));
        assert!(g.contains(&Triple::from_strs(
            "some~is_author_of",
            "owl:onProperty",
            "is_author_of"
        )));
        assert!(g.contains(&Triple::from_strs(
            "some~is_author_of",
            "owl:someValuesFrom",
            "owl:Thing"
        )));
        assert!(g.contains(&Triple::from_strs(
            "is_author_of",
            "owl:inverseOf",
            "is_author_of~inv"
        )));
    }

    #[test]
    fn graph_size_is_linear_in_vocabulary() {
        let mut o = Ontology::new();
        o.declare_class("c1");
        o.declare_property("p1");
        let g = ontology_to_graph(&o);
        // 1 class triple + 4 property triples + 2×4 restriction triples.
        assert_eq!(g.len(), 1 + 4 + 8);
    }
}
