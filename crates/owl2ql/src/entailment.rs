//! The entailment relation `G |= t` of §5.2 (DL-Lite_R entailment over the
//! RDF representation), realized via the chase of `τ_owl2ql_core`.

use crate::rules::{tau_db, tau_owl2ql_core, triple1_pred};
use triq_common::{Result, Symbol, Term};
use triq_datalog::{
    chase, proof_tree, render_proof_tree, ChaseConfig, ChaseOutcome, GroundAtom, Program, ProofTree,
};
use triq_rdf::{Graph, Triple};

/// A saturated graph: the chase of `τ_owl2ql_core` over `τ_db(G)`, ready
/// to answer many entailment queries.
pub struct EntailmentOracle {
    outcome: ChaseOutcome,
    program: Program,
}

impl EntailmentOracle {
    /// Saturates `graph` with the *restricted* chase, which terminates on
    /// DL-Lite_R ontologies (the skolem chase does not: inverse axioms
    /// make it ping-pong new nulls forever even though witnesses exist).
    /// Ground consequences are identical under both strategies.
    pub fn new(graph: &Graph) -> Result<EntailmentOracle> {
        Self::with_config(
            graph,
            ChaseConfig {
                strategy: triq_datalog::ExistentialStrategy::Restricted,
                max_null_depth: 6,
                ..ChaseConfig::default()
            },
        )
    }

    /// Saturates `graph` with an explicit chase configuration.
    pub fn with_config(graph: &Graph, config: ChaseConfig) -> Result<EntailmentOracle> {
        let db = tau_db(graph);
        let program = tau_owl2ql_core();
        let outcome = chase(&db, &program, config)?;
        Ok(EntailmentOracle { outcome, program })
    }

    /// Whether the graph is consistent w.r.t. the OWL 2 QL core semantics
    /// (no disjointness constraint fires).
    pub fn is_consistent(&self) -> bool {
        !self.outcome.inconsistent
    }

    /// `G |= (s, p, o)` for constants. On an inconsistent graph every
    /// triple is entailed.
    pub fn entails(&self, t: &Triple) -> bool {
        if self.outcome.inconsistent {
            return true;
        }
        let atom = GroundAtom::new(
            triple1_pred(),
            vec![Term::Const(t.s), Term::Const(t.p), Term::Const(t.o)].into(),
        );
        self.outcome.instance.contains(&atom)
    }

    /// All entailed triples over constants (the saturation of `G`).
    pub fn entailed_triples(&self) -> Vec<Triple> {
        self.outcome
            .instance
            .atoms_of(triple1_pred())
            .filter_map(|a| {
                match (
                    a.terms[0].as_const(),
                    a.terms[1].as_const(),
                    a.terms[2].as_const(),
                ) {
                    (Some(s), Some(p), Some(o)) => Some(Triple::new(s, p, o)),
                    _ => None,
                }
            })
            .collect()
    }

    /// All constants `x` with `G |= (x, rdf:type, class_uri)`.
    pub fn instances_of(&self, class_uri: Symbol) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .entailed_triples()
            .into_iter()
            .filter(|t| t.p == triq_rdf::vocab::rdf_type() && t.o == class_uri)
            .map(|t| t.s)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Access to the underlying chase outcome (instance + stats).
    pub fn outcome(&self) -> &ChaseOutcome {
        &self.outcome
    }

    /// A proof tree (Definition 6.11) explaining why `t` is entailed —
    /// the chase provenance of `triple1(s, p, o)` — or `None` if `t` is
    /// not entailed (or the graph is inconsistent, where entailment is
    /// trivial and has no meaningful proof).
    pub fn explain(&self, t: &Triple) -> Option<ProofTree> {
        if self.outcome.inconsistent {
            return None;
        }
        let atom = GroundAtom::new(
            triple1_pred(),
            vec![Term::Const(t.s), Term::Const(t.p), Term::Const(t.o)].into(),
        );
        let id = self.outcome.instance.find(&atom)?;
        Some(proof_tree(&self.outcome.instance, id))
    }

    /// [`EntailmentOracle::explain`], rendered as ASCII.
    pub fn explain_text(&self, t: &Triple) -> Option<String> {
        self.explain(t)
            .map(|tree| render_proof_tree(&tree, &self.program))
    }
}

/// One-shot entailment check (prefer [`EntailmentOracle`] for repeated
/// queries against the same graph).
pub fn entails(graph: &Graph, t: &Triple) -> Result<bool> {
    Ok(EntailmentOracle::new(graph)?.entails(t))
}

/// One-shot consistency check.
pub fn is_consistent(graph: &Graph) -> Result<bool> {
    Ok(EntailmentOracle::new(graph)?.is_consistent())
}

/// Saturates a graph: returns `G` extended with every entailed triple over
/// constants (a materialization useful as a baseline in the experiments).
pub fn saturate(graph: &Graph) -> Result<Graph> {
    let oracle = EntailmentOracle::new(graph)?;
    let mut out = graph.clone();
    for t in oracle.entailed_triples() {
        out.insert(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{Axiom, BasicClass, BasicProperty};
    use crate::rdf_mapping::ontology_to_graph;
    use crate::Ontology;
    use triq_common::intern;

    /// §5.2's animal example: G = {(dog, rdf:type, animal),
    /// (animal, rdfs:subClassOf, ∃eats)}.
    fn animal_graph() -> Graph {
        let mut o = Ontology::new();
        o.add(Axiom::ClassAssertion(
            BasicClass::Named(intern("animal")),
            intern("dog"),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("animal")),
            BasicClass::Some(BasicProperty::Named(intern("eats"))),
        ));
        ontology_to_graph(&o)
    }

    #[test]
    fn dog_is_typed_exists_eats() {
        let g = animal_graph();
        let oracle = EntailmentOracle::new(&g).unwrap();
        assert!(oracle.is_consistent());
        // (dog, rdf:type, ∃eats) is entailed — the paper's point about the
        // active-domain workaround pattern (?X, rdf:type, ∃eats).
        assert!(oracle.entails(&Triple::from_strs("dog", "rdf:type", "some~eats")));
        // But no concrete (dog, eats, b) for any constant b.
        for c in ["dog", "animal", "some~eats"] {
            assert!(!oracle.entails(&Triple::from_strs("dog", "eats", c)));
        }
        assert_eq!(
            oracle.instances_of(intern("some~eats")),
            vec![intern("dog")]
        );
    }

    #[test]
    fn subproperty_and_inverse_reasoning() {
        let mut o = Ontology::new();
        o.add(Axiom::SubObjectPropertyOf(
            BasicProperty::Named(intern("advises")),
            BasicProperty::Named(intern("worksWith")),
        ));
        o.add(Axiom::ObjectPropertyAssertion(
            intern("advises"),
            intern("alice"),
            intern("bob"),
        ));
        let g = ontology_to_graph(&o);
        let oracle = EntailmentOracle::new(&g).unwrap();
        assert!(oracle.entails(&Triple::from_strs("alice", "worksWith", "bob")));
        // Inverses: (bob, advises⁻, alice).
        assert!(oracle.entails(&Triple::from_strs("bob", "advises~inv", "alice")));
        assert!(oracle.entails(&Triple::from_strs("bob", "worksWith~inv", "alice")));
        assert!(!oracle.entails(&Triple::from_strs("bob", "worksWith", "alice")));
    }

    #[test]
    fn subclass_chain_reasoning() {
        let mut o = Ontology::new();
        o.add(Axiom::ClassAssertion(
            BasicClass::Named(intern("professor")),
            intern("knuth"),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("professor")),
            BasicClass::Named(intern("faculty")),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("faculty")),
            BasicClass::Named(intern("person")),
        ));
        let g = ontology_to_graph(&o);
        let oracle = EntailmentOracle::new(&g).unwrap();
        assert!(oracle.entails(&Triple::from_strs("knuth", "rdf:type", "person")));
        assert!(!oracle.entails(&Triple::from_strs("knuth", "rdf:type", "student")));
    }

    /// ∃eats⁻ ⊑ plant_material: the herbivore scenario of §5.3. Anything
    /// eaten by a constant is plant material.
    #[test]
    fn inverse_restriction_typing() {
        let mut o = Ontology::new();
        let eats = BasicProperty::Named(intern("eats"));
        o.add(Axiom::SubClassOf(
            BasicClass::Some(eats.inverse()),
            BasicClass::Named(intern("plant_material")),
        ));
        o.add(Axiom::ObjectPropertyAssertion(
            intern("eats"),
            intern("cow"),
            intern("grass"),
        ));
        let g = ontology_to_graph(&o);
        let oracle = EntailmentOracle::new(&g).unwrap();
        assert!(oracle.entails(&Triple::from_strs("grass", "rdf:type", "plant_material")));
        assert!(!oracle.entails(&Triple::from_strs("cow", "rdf:type", "plant_material")));
    }

    #[test]
    fn disjointness_inconsistency() {
        let mut o = Ontology::new();
        o.add(Axiom::DisjointClasses(
            BasicClass::Named(intern("cat")),
            BasicClass::Named(intern("dog")),
        ));
        o.add(Axiom::ClassAssertion(
            BasicClass::Named(intern("cat")),
            intern("felix"),
        ));
        let mut g = ontology_to_graph(&o);
        assert!(is_consistent(&g).unwrap());
        g.insert(Triple::from_strs("felix", "rdf:type", "dog"));
        let oracle = EntailmentOracle::new(&g).unwrap();
        assert!(!oracle.is_consistent());
        // ⊤ entails everything.
        assert!(oracle.entails(&Triple::from_strs("x", "y", "z")));
    }

    #[test]
    fn disjointness_propagates_down_subclasses() {
        let mut o = Ontology::new();
        o.add(Axiom::DisjointClasses(
            BasicClass::Named(intern("plant")),
            BasicClass::Named(intern("animal")),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("dog")),
            BasicClass::Named(intern("animal")),
        ));
        o.add(Axiom::SubClassOf(
            BasicClass::Named(intern("tree")),
            BasicClass::Named(intern("plant")),
        ));
        o.add(Axiom::ClassAssertion(
            BasicClass::Named(intern("dog")),
            intern("rex"),
        ));
        let mut g = ontology_to_graph(&o);
        assert!(is_consistent(&g).unwrap());
        g.insert(Triple::from_strs("rex", "rdf:type", "tree"));
        assert!(!is_consistent(&g).unwrap());
    }

    #[test]
    fn explain_produces_a_proof_tree() {
        let g = animal_graph();
        let oracle = EntailmentOracle::new(&g).unwrap();
        let t = Triple::from_strs("dog", "rdf:type", "some~eats");
        let tree = oracle.explain(&t).expect("entailed, so explainable");
        // The proof bottoms out in asserted triples.
        for leaf in tree.root.leaves() {
            assert_eq!(leaf.pred.as_str(), "triple");
        }
        let text = oracle.explain_text(&t).unwrap();
        assert!(text.contains("triple1(dog, rdf:type, some~eats)"));
        // Non-entailed triples have no proof.
        assert!(oracle
            .explain(&Triple::from_strs("dog", "rdf:type", "robot"))
            .is_none());
    }

    #[test]
    fn paper_spelling_some_value_from_is_accepted() {
        // §5.2 writes owl:someValueFrom (no 's'); the fixed program
        // accepts both spellings.
        let mut g = Graph::new();
        g.insert_strs("dog", "rdf:type", "animal");
        g.insert_strs("animal", "rdfs:subClassOf", "r2");
        g.insert_strs("r2", "rdf:type", "owl:Restriction");
        g.insert_strs("r2", "owl:onProperty", "eats");
        g.insert_strs("r2", "owl:someValueFrom", "owl:Thing");
        let oracle = EntailmentOracle::new(&g).unwrap();
        assert!(oracle.entails(&Triple::from_strs("dog", "rdf:type", "r2")));
    }

    #[test]
    fn saturate_materializes() {
        let g = animal_graph();
        let s = saturate(&g).unwrap();
        assert!(s.len() > g.len());
        assert!(s.contains(&Triple::from_strs("dog", "rdf:type", "some~eats")));
    }

    /// owl:sameAs is NOT part of OWL 2 QL core — §2's sameAs rules are a
    /// user-supplied library. Check the regime alone does not merge URIs.
    #[test]
    fn same_as_is_not_built_in() {
        let mut g = Graph::new();
        g.insert_strs("a", "owl:sameAs", "b");
        g.insert_strs("a", "p", "c");
        let oracle = EntailmentOracle::new(&g).unwrap();
        assert!(!oracle.entails(&Triple::from_strs("b", "p", "c")));
    }
}
